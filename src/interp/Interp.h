//===- interp/Interp.h - Reference operational semantics -------*- C++ -*-===//
///
/// \file
/// A reference interpreter for the IR, playing the role of the Vellvm
/// semantics in the paper. It produces a trace of observable events (calls
/// to external functions and the final return value); behaviour refinement
/// over these traces is the correctness notion the checker certifies and
/// the notion differential testing approximates (paper §1.2).
///
/// External calls are resolved by a deterministic seeded oracle so that a
/// source and target run observe identical environments.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_INTERP_INTERP_H
#define CRELLVM_INTERP_INTERP_H

#include "interp/RtValue.h"
#include "ir/Module.h"
#include "support/RNG.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace crellvm {
namespace interp {

/// One observable event: an external call with its argument values and the
/// value the environment returned.
struct Event {
  std::string Callee;
  std::vector<RtValue> Args;
  RtValue Ret;

  std::string str() const;
};

/// How a run ended.
enum class Outcome : uint8_t {
  Returned,    ///< normal termination
  UndefBehav,  ///< undefined behavior (trap, OOB access, branch on undef...)
  OutOfFuel,   ///< step budget exhausted (treated as "still running")
};

/// The result of interpreting one function call tree.
struct RunResult {
  Outcome End = Outcome::Returned;
  RtValue ReturnValue;
  std::vector<Event> Trace;
  std::string UbReason; ///< diagnostic when End == UndefBehav
  uint64_t Steps = 0;
};

/// Interpreter options.
struct InterpOptions {
  uint64_t Fuel = 200000;  ///< maximum number of instruction steps
  uint64_t OracleSeed = 1; ///< seed for external-call results
  /// When true, every external call also writes an oracle-chosen value into
  /// an oracle-chosen global cell, exercising the checker's alias pruning.
  bool ExternalsWriteGlobals = true;
};

/// Runs @\p FuncName of \p M with integer arguments \p Args (pointer and
/// vector parameters receive oracle-chosen globals / lane values).
RunResult run(const ir::Module &M, const std::string &FuncName,
              const std::vector<int64_t> &Args, const InterpOptions &Opts);

/// True if the target run refines the source run: identical traces and
/// return value, except that a source undef/poison value matches anything
/// (undef may be refined to any value), and a source UB run is refined by
/// anything with a matching trace prefix. OutOfFuel matches OutOfFuel with
/// a matching trace prefix on either side.
bool refines(const RunResult &Src, const RunResult &Tgt);

} // namespace interp
} // namespace crellvm

#endif // CRELLVM_INTERP_INTERP_H
