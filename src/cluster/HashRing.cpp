//===- cluster/HashRing.cpp -------------------------------------*- C++ -*-===//

#include "cluster/HashRing.h"

#include "cache/Fingerprint.h"

using namespace crellvm;
using namespace crellvm::cluster;

namespace {

/// A member's I-th virtual node point. The dual-lane fingerprint hash is
/// reused so vnode placement gets the same mixing quality as cache keys;
/// folding both lanes keeps all 128 bits contributing to the point.
uint64_t vnodePoint(const std::string &MemberId, unsigned I) {
  cache::FingerprintBuilder B;
  B.str(MemberId).u64(I);
  cache::Fingerprint FP = B.digest();
  return FP.Hi ^ (FP.Lo * 0x9e3779b97f4a7c15ull);
}

} // namespace

void HashRing::addMember(const std::string &MemberId) {
  if (Members.count(MemberId))
    return;
  std::vector<uint64_t> Points;
  Points.reserve(VNodes);
  for (unsigned I = 0; I != VNodes; ++I) {
    uint64_t P = vnodePoint(MemberId, I);
    // Collisions across members are ~2^-64 per pair but would silently
    // drop a vnode on insert; perturb deterministically until free.
    while (Ring.count(P))
      ++P;
    Ring.emplace(P, MemberId);
    Points.push_back(P);
  }
  Members.emplace(MemberId, std::move(Points));
}

void HashRing::removeMember(const std::string &MemberId) {
  auto It = Members.find(MemberId);
  if (It == Members.end())
    return;
  for (uint64_t P : It->second)
    Ring.erase(P);
  Members.erase(It);
}

bool HashRing::contains(const std::string &MemberId) const {
  return Members.count(MemberId) != 0;
}

std::string HashRing::route(uint64_t Point) const {
  if (Ring.empty())
    return {};
  auto It = Ring.lower_bound(Point);
  if (It == Ring.end())
    It = Ring.begin(); // wrap: the ring is circular
  return It->second;
}

std::vector<std::string> HashRing::routeN(uint64_t Point, size_t N) const {
  std::vector<std::string> Out;
  if (Ring.empty() || N == 0)
    return Out;
  auto It = Ring.lower_bound(Point);
  for (size_t Steps = 0; Steps != Ring.size() && Out.size() < N; ++Steps) {
    if (It == Ring.end())
      It = Ring.begin();
    bool Seen = false;
    for (const std::string &M : Out)
      if (M == It->second) {
        Seen = true;
        break;
      }
    if (!Seen)
      Out.push_back(It->second);
    ++It;
  }
  return Out;
}

std::vector<std::string> HashRing::members() const {
  std::vector<std::string> Out;
  Out.reserve(Members.size());
  for (const auto &KV : Members)
    Out.push_back(KV.first);
  return Out;
}
