//===- cluster/MemberLink.h - One router->member connection -----*- C++ -*-===//
///
/// \file
/// The router's side of one member daemon: a Unix-socket connection
/// speaking the standard wire protocol (server/Protocol.h), a reader
/// thread matching out-of-order responses back to their requests, and a
/// bounded in-flight pipeline.
///
/// Wire-id translation is the core mechanism: the router forwards many
/// clients' requests down one member connection, so client-chosen ids
/// would collide. send() rewrites the id to a link-unique wire id and
/// remembers {original request, original id, callback}; the reader
/// restores the original id before completing the callback. The original
/// *request* is kept, not just the id, because it is the failover
/// currency — when the member dies, every unanswered in-flight request is
/// handed back to the router verbatim for re-routing.
///
/// Death detection is edge-triggered: the first failed read or write
/// flips the link to dead exactly once (a connection generation counter
/// arbitrates racing detectors), collects the orphaned in-flight entries,
/// and reports them through the death hook with no internal locks held.
/// connect() may then be called again (the router's reattach loop does,
/// with seeded backoff) to start a fresh generation.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CLUSTER_MEMBERLINK_H
#define CRELLVM_CLUSTER_MEMBERLINK_H

#include "server/Protocol.h"
#include "server/RequestHandler.h"

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace crellvm {
namespace cluster {

struct MemberConfig {
  std::string Id;         ///< stats member_id; stable across reconnects
  std::string SocketPath; ///< the member daemon's Unix socket
  /// Codec connect() negotiates for this member hop — independent of
  /// whatever the router's own clients speak on the front socket. Both
  /// ends of the hop ship together, so the default is the binary codec;
  /// a member that answers the hello with an error keeps the hop on
  /// json (negotiation never fails a connect, only degrades it).
  server::WireCodec Codec = server::WireCodec::Cbj1;
};

class MemberLink {
public:
  using Callback = server::RequestHandler::Callback;

  /// A forwarded request the member never answered.
  struct Orphan {
    server::Request R; ///< original request, original id
    Callback Done;
  };

  /// Invoked once per connection death, without internal locks held, and
  /// never during close() (shutdown teardown is not a death).
  using DeathHook = std::function<void(MemberLink &, std::vector<Orphan>)>;

  MemberLink(MemberConfig Cfg, size_t MaxInflight, DeathHook OnDeath);
  ~MemberLink();

  MemberLink(const MemberLink &) = delete;
  MemberLink &operator=(const MemberLink &) = delete;

  const std::string &id() const { return Cfg.Id; }
  const std::string &socketPath() const { return Cfg.SocketPath; }

  /// Connects (or reconnects after a death) and starts the reader.
  /// False when the member's socket does not answer.
  bool connect();

  bool alive() const;
  size_t inflight() const;

  enum class SendResult {
    Sent,       ///< forwarded; the callback will fire exactly once
    AtCapacity, ///< bounded pipeline full — caller picks another member
    Dead,       ///< no live connection
  };

  /// Forwards \p R under a fresh wire id. On Sent the callback fires
  /// with the member's response (original id restored) or, after a
  /// death, via the death hook's failover path. On AtCapacity/Dead the
  /// callback was NOT consumed.
  SendResult send(const server::Request &R, Callback Done);

  /// Tears the connection down silently (no death hook) and joins the
  /// reader. The link stays dead afterwards; connect() revives it.
  void close();

private:
  void readerLoop(int ReadFd, uint64_t ReadGen, server::WireCodec Codec);
  /// Flips generation \p DeadGen to dead (idempotent per generation) and
  /// fires the death hook with its orphans unless \p Silent.
  void die(uint64_t DeadGen, bool Silent);

  MemberConfig Cfg;
  size_t MaxInflight;
  DeathHook OnDeath;

  mutable std::mutex M;  ///< guards all connection state below
  std::mutex WriteM;     ///< serializes frame writes + encoder session
  /// Outbound codec session, one per connection generation. EncGen tags
  /// which generation it belongs to: a send that raced a reconnect must
  /// not encode into the *new* session's intern table (it would desync
  /// the member's decoder), so send() re-checks the tag under WriteM.
  server::WireEncoder Enc;
  uint64_t EncGen = 0;
  int Fd = -1;
  bool Alive = false;
  uint64_t Gen = 0;      ///< bumped by every connect()
  int64_t NextWireId = 1;
  std::map<int64_t, Orphan> InFlight; ///< wire id -> original
  std::thread Reader;
};

} // namespace cluster
} // namespace crellvm

#endif // CRELLVM_CLUSTER_MEMBERLINK_H
