//===- cluster/Router.h - Consistent-hash validation router -----*- C++ -*-===//
///
/// \file
/// The cluster front end behind `crellvm-cluster`: a server::RequestHandler
/// that owns N MemberLinks to `crellvm-served` daemons and routes every
/// validate request by consistent-hashing its cache-identity fingerprint
/// (seed or module text, plus the bugs preset — exactly the inputs that
/// determine the member-local validation-cache key), so repeat requests
/// keep hitting the member whose MemCache is warm for them.
///
/// The router adds scheduling and availability, never semantics: a
/// verdict is only ever produced by a member's driver + checker stack, so
/// verdicts through the router are bit-identical to standalone
/// `runBatchValidated` on the same units (ClusterTest pins this). On a
/// member death the dead member leaves the ring (quarantined until the
/// seeded-backoff reattach loop revives it), its unanswered in-flight
/// requests fail over to the ring successors, and only when no live
/// member can take a request is it answered with a *retryable*
/// `queue_full` rejection — an accepted request is never silently lost.
/// Member-issued `queue_full` (+ retry_after_ms) passes through
/// untouched.
///
/// Stats aggregate across members: summed counters, exact histogram
/// merges from the per-bucket counts each member publishes, and a
/// `cluster` section with the router's own accounting plus every member
/// document. The aggregator refuses members whose stats schema_version
/// differs (server/Protocol.h) with an error naming the member. At
/// shutdown the cluster-level drain equation gates the exit code:
/// Σ accepted == Σ (completed + deadline_exceeded + internal_errors)
/// across live members, on top of the router's own zero-loss equation
/// (every received request answered).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CLUSTER_ROUTER_H
#define CRELLVM_CLUSTER_ROUTER_H

#include "cluster/HashRing.h"
#include "cluster/MemberLink.h"
#include "server/RequestHandler.h"
#include "support/Histogram.h"

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>

namespace crellvm {
namespace cluster {

struct ClusterOptions {
  std::vector<MemberConfig> Members;
  /// Virtual nodes per member on the hash ring.
  unsigned VNodes = 64;
  /// Bounded pipeline per member link; beyond it the router tries the
  /// ring successors, and a cluster-wide full answers retryable
  /// queue_full.
  size_t MaxInflightPerMember = 128;
  /// Reattach backoff for dead members: seeded exponential from Base,
  /// capped at Max, jittered so a cluster of routers never thunders.
  uint64_t ReattachBaseMs = 50;
  uint64_t ReattachMaxMs = 2000;
  uint64_t Seed = 1;
  /// retry_after_ms floor for router-generated queue_full answers
  /// (clamped up to server::MinRetryAfterMs like the service's own hint).
  uint64_t RetryAfterMsFloor = 10;
  /// Wire codec negotiated on every member hop (MemberConfig::Codec);
  /// independent of what front-socket clients negotiate for themselves.
  server::WireCodec MemberCodec = server::WireCodec::Cbj1;
  /// Identity stamped into the aggregated stats document.
  std::string RouterId;
  /// Optional admission gate (the member supervisor, src/supervise/): a
  /// member whose id it refuses is skipped by start() and the reattach
  /// loop entirely — off the ring until admitted (ready, un-quarantined)
  /// again. Called with the router lock held; must not block or call
  /// back into the router.
  std::function<bool(const std::string &Id)> AdmissionGate;
  /// Optional augmentation of the aggregated stats root — the
  /// supervisor attaches its "supervisor" section here, after member
  /// aggregation (router-local, so no StatsSchemaVersion bump).
  std::function<void(json::Value &Root)> StatsAugment;
};

/// Monotone router-side counters. The router's zero-loss equation is
/// Received == Σ Answered* once drained (every request got exactly one
/// answer — ok, pass-through or router-generated rejection, deadline,
/// internal, or error — never silence).
struct RouterCounters {
  uint64_t Received = 0;   ///< every submit(), any kind
  uint64_t Forwarded = 0;  ///< validate requests handed to a member
  uint64_t Failovers = 0;  ///< orphaned requests re-routed after a death
  uint64_t MemberDeaths = 0;
  uint64_t Reattaches = 0;
  /// Work passes of the reattach loop (a pass with at least one dead
  /// admitted member to consider). An idle all-healthy cluster makes
  /// exactly zero — the loop parks on its condition variable instead of
  /// polling (ClusterTest pins this).
  uint64_t ReattachWakeups = 0;
  uint64_t AnsweredOk = 0;
  uint64_t AnsweredRejected = 0;
  uint64_t AnsweredDeadline = 0;
  uint64_t AnsweredInternal = 0;
  uint64_t AnsweredError = 0;
  uint64_t StatsRequests = 0;

  uint64_t answered() const {
    return AnsweredOk + AnsweredRejected + AnsweredDeadline +
           AnsweredInternal + AnsweredError;
  }
};

/// The routing point for \p R: a 64-bit fold of the fingerprint over the
/// request's cache identity (module text or seed, plus bugs preset).
/// Exposed for the stickiness tests.
uint64_t routePointOf(const server::Request &R);

/// Pure aggregation over member stats documents, unit-testable without
/// any socket. Sums the integer counters of the "requests", "verdicts"
/// and "cache" sections, merges latency/batch histograms exactly from
/// their per-bucket counts, and folds the "server" gauges. Returns
/// std::nullopt with \p Err naming the offending member when a document
/// is missing a schema stamp or carries a version other than
/// server::StatsSchemaVersion.
std::optional<json::Value>
aggregateMemberStats(const std::vector<json::Value> &Docs, std::string *Err);

/// One-shot stats scrape of \p SocketPath on a short-lived connection.
std::optional<json::Value> scrapeMemberStats(const std::string &SocketPath,
                                             std::string *Err);

class ClusterRouter : public server::RequestHandler {
public:
  explicit ClusterRouter(ClusterOptions Opts);
  ~ClusterRouter() override;

  ClusterRouter(const ClusterRouter &) = delete;
  ClusterRouter &operator=(const ClusterRouter &) = delete;

  /// Connects every member and starts the reattach loop. False with
  /// \p Err when no member is reachable (members that fail to connect
  /// while at least one succeeds are left to the reattach loop).
  bool start(std::string *Err);

  void submit(const server::Request &R, Callback Done) override;
  void beginShutdown() override;
  /// Blocks until every forwarded request has been answered.
  void drain() override;

  std::vector<std::string> liveMembers() const;
  size_t numMembers() const { return Links.size(); }
  RouterCounters counters() const;

  /// Clears \p Id's reattach backoff and wakes the reattach loop now:
  /// the supervisor's readiness nudge, so a restarted member rejoins the
  /// ring immediately instead of waiting out a stale backoff expiry.
  void nudgeReattach(const std::string &Id);

  /// Records one supervisor health-ping round trip for \p Id, surfaced
  /// as `ping_rtt_us` in that member's cluster stats entry.
  void notePingRtt(const std::string &Id, uint64_t RttUs);

  /// Deep ping (Protocol.h): probes every configured member once on a
  /// short-lived connection, all in parallel so a hung member costs the
  /// deadline once, and returns the per-member liveness document that
  /// rides the ping response's `stats` field. \p DeadlineMs 0 means 1 s.
  json::Value deepPing(uint64_t DeadlineMs);

  /// The aggregated cluster stats document (see file comment).
  json::Value statsJson();

  /// Post-drain gate: scrapes every live member once and checks
  /// Σ accepted == Σ (completed + deadline_exceeded + internal_errors).
  /// \p Detail receives the summed counters (and the failure, if any) in
  /// the drained-line format.
  bool clusterDrainEquationHolds(std::string *Detail);

private:
  void onMemberDeath(MemberLink &L, std::vector<MemberLink::Orphan> Orphans);
  /// Routes \p R to the first live candidate in ring order; \p Done must
  /// already be the accounting-wrapped callback. Answers a retryable
  /// queue_full itself when the whole cluster is full or dead.
  void routeForwarded(const server::Request &R, const Callback &Done,
                      bool IsFailover);
  void reattachLoop();
  void noteAnswered(server::ResponseStatus S);
  MemberLink *linkById(const std::string &Id);

  ClusterOptions Opts;
  /// Stable storage: links are created once and never destroyed until
  /// the router dies, so MemberLink* snapshots stay valid outside RM.
  std::vector<std::unique_ptr<MemberLink>> Links;

  mutable std::mutex RM;
  std::condition_variable DrainCv;
  std::condition_variable ReattachCv;
  HashRing Ring;
  RouterCounters C;
  size_t Outstanding = 0; ///< forwarded (or failing-over) requests owed
  bool Draining = false;
  bool Stopping = false;
  /// Reattach-loop wake reasons beyond Stopping: set by onMemberDeath
  /// and nudgeReattach so the loop can park indefinitely when every
  /// admitted member is attached (the predicate never misses an event).
  bool ReattachDirty = false;
  /// Members whose backoff state the loop must forget on next wake.
  std::set<std::string> ReattachResets;
  /// Supervisor health-ping RTTs per member (node-stable map: Histogram
  /// is atomic-based and pinned in place).
  std::map<std::string, Histogram> PingRtts;
  std::thread Reattacher;
};

} // namespace cluster
} // namespace crellvm

#endif // CRELLVM_CLUSTER_ROUTER_H
