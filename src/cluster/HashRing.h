//===- cluster/HashRing.h - Consistent-hash member ring ---------*- C++ -*-===//
///
/// \file
/// The routing table of the validation cluster: a consistent-hash ring
/// mapping a 64-bit point (derived from a request's validation-cache
/// fingerprint, cache/Fingerprint.h) to a member id. Each member owns
/// VNodes pseudo-random points on the ring — enough virtual nodes that
/// load spreads evenly and removing one member redistributes only that
/// member's arc to its ring successors, never reshuffling the rest.
///
/// That stability is the whole reason for consistent hashing here: a
/// member's MemCache is warm exactly for the fingerprints routed to it,
/// so (a) repeat requests must keep landing on the same member and (b) a
/// member death must not cold-start everyone else's cache. Both are
/// pinned by ClusterTest.
///
/// Not thread-safe; ClusterRouter guards it with its own mutex.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_CLUSTER_HASHRING_H
#define CRELLVM_CLUSTER_HASHRING_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace crellvm {
namespace cluster {

class HashRing {
public:
  explicit HashRing(unsigned VNodes = 64) : VNodes(VNodes ? VNodes : 1) {}

  /// Inserts \p MemberId's virtual nodes. Re-adding is idempotent.
  void addMember(const std::string &MemberId);

  /// Removes every virtual node of \p MemberId (no-op if absent).
  void removeMember(const std::string &MemberId);

  bool contains(const std::string &MemberId) const;
  size_t numMembers() const { return Members.size(); }
  bool empty() const { return Ring.empty(); }

  /// The member owning \p Point: the first virtual node clockwise from
  /// it (wrapping). Empty string on an empty ring.
  std::string route(uint64_t Point) const;

  /// Up to \p N *distinct* members in ring order from \p Point — the
  /// owner first, then the failover candidates a death would promote.
  std::vector<std::string> routeN(uint64_t Point, size_t N) const;

  std::vector<std::string> members() const;

private:
  unsigned VNodes;
  std::map<uint64_t, std::string> Ring; ///< vnode point -> member id
  std::map<std::string, std::vector<uint64_t>> Members;
};

} // namespace cluster
} // namespace crellvm

#endif // CRELLVM_CLUSTER_HASHRING_H
