//===- cluster/MemberLink.cpp -----------------------------------*- C++ -*-===//

#include "cluster/MemberLink.h"

#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::cluster;

namespace {

int connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (Path.size() + 1 > sizeof(Addr.sun_path))
    return -1;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Blocking hello exchange on a fresh connection (no reader is running
/// yet, so plain request/response). False only on transport failure; a
/// member that rejects the hello keeps the hop on json.
bool negotiateHop(int Fd, server::WireCodec Want, server::WireCodec &Hop) {
  Hop = server::WireCodec::Json;
  if (Want == server::WireCodec::Json)
    return true;
  if (!server::writeFrame(Fd,
                          server::requestToJson(server::helloRequest(Want))))
    return false;
  std::string Frame, Err;
  if (!server::readFrame(Fd, Frame, &Err))
    return false;
  auto Rsp = server::responseFromJson(Frame, &Err);
  if (!Rsp)
    return false;
  if (Rsp->Status != server::ResponseStatus::Ok)
    return true; // member predates negotiation: degrade, don't die
  if (auto C = server::codecByName(Rsp->Codec))
    Hop = *C;
  return true;
}

} // namespace

MemberLink::MemberLink(MemberConfig Config, size_t MaxInflight,
                       DeathHook OnDeath)
    : Cfg(std::move(Config)), MaxInflight(MaxInflight ? MaxInflight : 1),
      OnDeath(std::move(OnDeath)) {}

MemberLink::~MemberLink() { close(); }

bool MemberLink::alive() const {
  std::lock_guard<std::mutex> L(M);
  return Alive;
}

size_t MemberLink::inflight() const {
  std::lock_guard<std::mutex> L(M);
  return InFlight.size();
}

// connect() and close() are externally serialized (the router calls
// connect() from start() and then only from its single reattach thread);
// send() and the reader run concurrently with both.
bool MemberLink::connect() {
  {
    std::lock_guard<std::mutex> L(M);
    if (Alive)
      return true;
  }
  // The previous generation's reader (if any) has been unblocked by
  // die()'s shutdown(2) and exits promptly; reap it before replacing it.
  if (Reader.joinable())
    Reader.join();
  int NewFd = connectUnix(Cfg.SocketPath);
  if (NewFd < 0)
    return false;
  // Negotiate the hop codec before the reader exists: the hello and its
  // ack are an ordinary blocking exchange on the fresh connection, and
  // every frame after the ack — in both directions — is the pick.
  server::WireCodec Hop;
  if (!negotiateHop(NewFd, Cfg.Codec, Hop)) {
    ::close(NewFd);
    return false;
  }
  uint64_t MyGen;
  {
    std::lock_guard<std::mutex> L(M);
    if (Fd >= 0)
      ::close(Fd);
    Fd = NewFd;
    MyGen = ++Gen;
  }
  {
    // Fresh outbound session for this generation, installed before
    // Alive flips so no send can use the old session against the new fd.
    std::lock_guard<std::mutex> L(WriteM);
    Enc.use(Hop);
    EncGen = MyGen;
  }
  {
    std::lock_guard<std::mutex> L(M);
    Alive = true;
  }
  Reader =
      std::thread([this, NewFd, MyGen, Hop] { readerLoop(NewFd, MyGen, Hop); });
  return true;
}

MemberLink::SendResult MemberLink::send(const server::Request &R,
                                        Callback Done) {
  int64_t WireId;
  int SendFd;
  uint64_t SendGen;
  {
    std::lock_guard<std::mutex> L(M);
    if (!Alive)
      return SendResult::Dead;
    if (InFlight.size() >= MaxInflight)
      return SendResult::AtCapacity;
    WireId = NextWireId++;
    SendFd = Fd;
    SendGen = Gen;
    InFlight.emplace(WireId, Orphan{R, std::move(Done)});
  }
  server::Request Wire = R;
  Wire.Id = WireId;
  bool WriteOk;
  {
    std::lock_guard<std::mutex> L(WriteM);
    if (EncGen != SendGen) {
      // A reconnect swapped sessions while this send was in flight; the
      // captured fd is gone and encoding with the new session's intern
      // table would desync it. Treat as a failed write on our generation.
      WriteOk = false;
    } else {
      auto Payload = Enc.encode(server::requestToValue(Wire));
      WriteOk = Payload && server::writeFrame(SendFd, *Payload);
    }
  }
  if (WriteOk)
    return SendResult::Sent;
  // Write failure: the connection is gone. Reclaim our own entry if the
  // concurrent death path has not already orphaned it — if it has, the
  // callback's ownership moved to the failover path and the caller must
  // NOT resubmit (two sends of one request would answer the client
  // twice), so report Sent in that case.
  bool IOwn = false;
  {
    std::lock_guard<std::mutex> L(M);
    auto It = InFlight.find(WireId);
    if (Gen == SendGen && It != InFlight.end()) {
      InFlight.erase(It);
      IOwn = true;
    }
  }
  die(SendGen, /*Silent=*/false);
  return IOwn ? SendResult::Dead : SendResult::Sent;
}

void MemberLink::readerLoop(int ReadFd, uint64_t ReadGen,
                            server::WireCodec Codec) {
  std::string Frame, Err;
  server::WireDecoder Dec(Codec); // this generation's inbound session
  while (server::readFrame(ReadFd, Frame, &Err)) {
    auto V = Dec.decode(Frame, &Err);
    std::optional<server::Response> Rsp;
    if (V)
      Rsp = server::responseFromValue(*V, &Err);
    if (!Rsp)
      break; // protocol garbage: treat the connection as dead
    Callback Done;
    int64_t OrigId = 0;
    bool Have = false;
    {
      std::lock_guard<std::mutex> L(M);
      if (Gen != ReadGen)
        return; // superseded by a reconnect; new reader owns the map
      auto It = InFlight.find(Rsp->Id);
      if (It != InFlight.end()) {
        OrigId = It->second.R.Id;
        Done = std::move(It->second.Done);
        InFlight.erase(It);
        Have = true;
      }
    }
    if (Have) {
      Rsp->Id = OrigId; // restore the client's id
      Done(std::move(*Rsp));
    }
  }
  die(ReadGen, /*Silent=*/false);
}

void MemberLink::die(uint64_t DeadGen, bool Silent) {
  std::vector<Orphan> Orphans;
  {
    std::lock_guard<std::mutex> L(M);
    if (Gen != DeadGen || !Alive)
      return; // another detector won, or already reconnected
    Alive = false;
    if (Fd >= 0)
      ::shutdown(Fd, SHUT_RDWR); // unblock the reader; fd closed on reuse
    for (auto &KV : InFlight)
      Orphans.push_back(std::move(KV.second));
    InFlight.clear();
  }
  if (Silent) {
    // Teardown, not a death: no failover, but silence is still not an
    // option — every orphan gets an explicit rejection.
    for (Orphan &O : Orphans) {
      server::Response Rsp;
      Rsp.Id = O.R.Id;
      Rsp.Status = server::ResponseStatus::Rejected;
      Rsp.Reason = "shutting_down";
      O.Done(std::move(Rsp));
    }
    return;
  }
  if (OnDeath)
    OnDeath(*this, std::move(Orphans));
}

void MemberLink::close() {
  uint64_t G;
  {
    std::lock_guard<std::mutex> L(M);
    G = Gen;
  }
  die(G, /*Silent=*/true);
  if (Reader.joinable())
    Reader.join();
  std::lock_guard<std::mutex> L(M);
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}
