//===- cluster/ClusterMain.cpp - The crellvm-cluster router -----*- C++ -*-===//
//
// Cluster front end: listens on one Unix-domain socket speaking the same
// length-prefixed JSON protocol as crellvm-served, and consistent-hash
// routes every validate request to one of N member daemons so repeat
// requests land on the member whose cache is warm for them. Members that
// die are quarantined off the ring (their in-flight requests fail over)
// and reattached with seeded backoff. SIGTERM drains: every forwarded
// request is answered, then the exit code gates on the router's zero-loss
// equation AND the cluster-wide drain equation across members.
//
// With --supervise N the router owns its fleet: it fork/execs N
// crellvm-served members (sockets derived from the router socket),
// gates ring admission on a readiness ping, health-probes them, kills
// hung members, respawns dead ones with backoff, and flap-quarantines
// members that burn their restart budget (DESIGN.md section 18).
//
//   crellvm-cluster --socket PATH --member ID=SOCKET [--member ID=SOCKET...]
//                   [--vnodes N] [--max-inflight N] [--seed N]
//                   [--router-id ID] [--plan=off|shadow|on]
//                   [--version] [--help]
//   crellvm-cluster --socket PATH --supervise N [--served BIN]
//                   [--probe-interval-ms N] [--probe-deadline-ms N]
//                   [--hang-after N] [--restart-budget N]
//                   [--restart-window-ms N] [--ready-timeout-ms N]
//                   [-- MEMBER-ARGS...]
//
//===----------------------------------------------------------------------===//

#include "checker/Version.h"
#include "cluster/Router.h"
#include "plan/PlanManager.h"
#include "server/SocketServer.h"
#include "supervise/Supervisor.h"

#include <csignal>
#include <cstring>
#include <iostream>

#include <unistd.h>

using namespace crellvm;

namespace {

struct CliOptions {
  std::string Socket;
  cluster::ClusterOptions Cluster;
  /// Accepted for CLI symmetry with crellvm-validate/-served and
  /// validated strictly, but otherwise unused: checker plans are
  /// member-local (each crellvm-served owns its plan runtime and mode;
  /// nothing about plans crosses the member protocol), so there is
  /// nothing for the router to negotiate. The aggregated stats document
  /// still sums every member's plan counters.
  plan::PlanMode Plan = plan::PlanMode::Off;
  /// --supervise N: fork/exec and supervise N members instead of
  /// attaching to externally managed --member daemons.
  uint64_t Supervise = 0;
  /// Member binary for --supervise; empty = derived from argv[0].
  std::string ServedBin;
  /// Supervisor tuning (probe cadence, flap budget...).
  supervise::SupervisorOptions Sup;
  /// Everything after `--`: appended verbatim to each supervised
  /// member's command line (e.g. --jobs 2 --cache=rw --plan=on).
  std::vector<std::string> MemberArgs;
};

void printUsage(std::ostream &OS, const char *Argv0) {
  OS << "usage: " << Argv0
     << " --socket PATH --member ID=SOCKET [--member ID=SOCKET ...]\n"
     << "\n"
     << "Sharded validation cluster router: fronts N crellvm-served\n"
     << "members behind one socket, consistent-hashing each validate\n"
     << "request by its cache-identity fingerprint so repeat requests\n"
     << "stay on the member whose cache is warm. Dead members leave the\n"
     << "ring (in-flight requests fail over, zero accepted requests\n"
     << "lost) and reattach with seeded backoff. Stats aggregate across\n"
     << "members; shutdown gates on the cluster drain equation.\n"
     << "\n"
     << "options:\n"
     << "  --socket PATH       Unix-domain socket to listen on (required)\n"
     << "  --member ID=SOCKET  a member daemon: stats id and its socket\n"
     << "                      (repeat once per member; at least one,\n"
     << "                      unless --supervise runs the fleet)\n"
     << "  --supervise N       self-healing mode: fork/exec N\n"
     << "                      crellvm-served members (ids s0..sN-1,\n"
     << "                      sockets PATH.s0..), gate ring admission on\n"
     << "                      a readiness ping, health-probe them, kill\n"
     << "                      hung members, respawn dead ones with\n"
     << "                      backoff, and flap-quarantine members that\n"
     << "                      exceed the restart budget. Conflicts with\n"
     << "                      --member. Args after `--` pass through to\n"
     << "                      every member (e.g. -- --jobs 2 --plan=on)\n"
     << "  --served BIN        crellvm-served binary for --supervise\n"
     << "                      (default: found next to this binary)\n"
     << "  --probe-interval-ms N  supervisor health-ping cadence\n"
     << "                      (default 200)\n"
     << "  --probe-deadline-ms N  per-ping deadline; a slower answer is a\n"
     << "                      missed ping (default 250)\n"
     << "  --hang-after N      consecutive missed pings that convict a\n"
     << "                      member of hanging -> SIGKILL + restart\n"
     << "                      (default 3)\n"
     << "  --restart-budget N  restarts allowed per sliding window before\n"
     << "                      permanent flap quarantine (default 5)\n"
     << "  --restart-window-ms N  the sliding flap window (default 60000)\n"
     << "  --ready-timeout-ms N   a spawned member must answer a ready\n"
     << "                      ping within this budget (default 5000)\n"
     << "  --vnodes N          virtual nodes per member on the hash ring\n"
     << "                      (default 64)\n"
     << "  --max-inflight N    bounded pipeline per member; beyond it the\n"
     << "                      ring successors are tried (default 128)\n"
     << "  --seed N            seed for the reattach backoff jitter\n"
     << "                      (default 1)\n"
     << "  --router-id ID      identity stamped into the aggregated stats\n"
     << "                      document (default router:pid:<pid>)\n"
     << "  --codec NAME        wire codec negotiated on the member hops:\n"
     << "                      cbj1 (default) or json. Independent of what\n"
     << "                      clients negotiate on the front socket.\n"
     << "  --plan=MODE         accepted for symmetry with the other tools\n"
     << "                      (off | shadow | on) but informational only:\n"
     << "                      checker plans are member-local — pass --plan\n"
     << "                      to each crellvm-served member instead. The\n"
     << "                      aggregated stats sum member plan counters.\n"
     << "  --version           print version and exit\n"
     << "  --help, -h          print this help and exit\n";
}

bool WantHelp = false;
bool WantVersion = false;
std::string BadArg;

/// Parses "ID=SOCKET". Both halves must be non-empty.
bool parseMemberSpec(const std::string &Spec, cluster::MemberConfig &Out) {
  size_t Eq = Spec.find('=');
  if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Spec.size())
    return false;
  Out.Id = Spec.substr(0, Eq);
  Out.SocketPath = Spec.substr(Eq + 1);
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    BadArg = A;
    auto NextNum = [&](uint64_t &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    uint64_t N = 0;
    if (A == "--help" || A == "-h") {
      WantHelp = true;
      return true;
    } else if (A == "--version") {
      WantVersion = true;
      return true;
    } else if (A == "--socket" && I + 1 < Argc)
      O.Socket = Argv[++I];
    else if (A == "--member" && I + 1 < Argc) {
      std::string Spec = Argv[++I];
      cluster::MemberConfig MC;
      if (!parseMemberSpec(Spec, MC)) {
        BadArg = "--member " + Spec;
        return false;
      }
      for (const cluster::MemberConfig &Prev : O.Cluster.Members)
        if (Prev.Id == MC.Id) {
          BadArg = "--member " + Spec + " (duplicate id '" + MC.Id + "')";
          return false;
        }
      O.Cluster.Members.push_back(std::move(MC));
    } else if (A == "--supervise" && I + 1 < Argc) {
      std::string V = Argv[++I];
      char *End = nullptr;
      uint64_t Count = std::strtoull(V.c_str(), &End, 10);
      // Strict: trailing junk, zero, or an absurd fleet all name the
      // flag in the error instead of silently spawning nothing.
      if (End == V.c_str() || *End != '\0' || Count == 0 || Count > 256) {
        BadArg = "--supervise " + V;
        return false;
      }
      O.Supervise = Count;
    } else if (A == "--served" && I + 1 < Argc)
      O.ServedBin = Argv[++I];
    else if (A == "--probe-interval-ms" && NextNum(N))
      O.Sup.ProbeIntervalMs = N ? N : 1;
    else if (A == "--probe-deadline-ms" && NextNum(N))
      O.Sup.ProbeDeadlineMs = N ? N : 1;
    else if (A == "--hang-after" && NextNum(N))
      O.Sup.HangAfterMissedPings = static_cast<unsigned>(N ? N : 1);
    else if (A == "--restart-budget" && NextNum(N))
      O.Sup.RestartBudget = static_cast<unsigned>(N);
    else if (A == "--restart-window-ms" && NextNum(N))
      O.Sup.RestartWindowMs = N ? N : 1;
    else if (A == "--ready-timeout-ms" && NextNum(N))
      O.Sup.ReadyTimeoutMs = N ? N : 1;
    else if (A == "--") {
      for (int J = I + 1; J < Argc; ++J)
        O.MemberArgs.push_back(Argv[J]);
      return true;
    } else if (A == "--vnodes" && NextNum(N))
      O.Cluster.VNodes = static_cast<unsigned>(N ? N : 1);
    else if (A == "--max-inflight" && NextNum(N))
      O.Cluster.MaxInflightPerMember = static_cast<size_t>(N);
    else if (A == "--seed" && NextNum(N))
      O.Cluster.Seed = N;
    else if (A == "--router-id" && I + 1 < Argc)
      O.Cluster.RouterId = Argv[++I];
    else if (A == "--codec" && I + 1 < Argc) {
      auto C = server::codecByName(Argv[++I]);
      if (!C) {
        BadArg = A + " " + Argv[I];
        return false;
      }
      O.Cluster.MemberCodec = *C;
    } else if (A.rfind("--plan=", 0) == 0) {
      auto P = plan::parsePlanMode(A.substr(std::strlen("--plan=")));
      if (!P)
        return false;
      O.Plan = *P;
    } else if (A == "--plan" && I + 1 < Argc) {
      auto P = plan::parsePlanMode(Argv[++I]);
      if (!P)
        return false;
      O.Plan = *P;
    } else
      return false;
  }
  return true;
}

/// Default --served: crellvm-served in the same directory as this
/// binary, or in the sibling server/ directory of a build tree.
std::string findServedBinary(const char *Argv0) {
  std::string Self = Argv0;
  size_t Slash = Self.rfind('/');
  std::string Dir = Slash == std::string::npos ? "." : Self.substr(0, Slash);
  for (const std::string &Cand :
       {Dir + "/crellvm-served", Dir + "/../server/crellvm-served"})
    if (::access(Cand.c_str(), X_OK) == 0)
      return Cand;
  return "";
}

volatile int SignalStopFd = -1;

void onTerminate(int) {
  int Fd = SignalStopFd;
  if (Fd >= 0) {
    char B = 1;
    [[maybe_unused]] ssize_t W = ::write(Fd, &B, 1);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    std::cerr << "error: unknown or malformed option '" << BadArg << "'\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }
  if (WantHelp) {
    printUsage(std::cout, Argv[0]);
    return 0;
  }
  if (WantVersion) {
    std::cout << checker::versionLine("crellvm-cluster") << "\n";
    return 0;
  }
  if (Cli.Socket.empty()) {
    std::cerr << "error: --socket PATH is required\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }
  if (Cli.Supervise > 0 && !Cli.Cluster.Members.empty()) {
    std::cerr << "error: --supervise conflicts with --member (the "
                 "supervisor owns the whole fleet)\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }
  if (Cli.Supervise == 0 && Cli.Cluster.Members.empty()) {
    std::cerr << "error: at least one --member ID=SOCKET (or --supervise N) "
                 "is required\n\n";
    printUsage(std::cerr, Argv[0]);
    return 2;
  }
  if (Cli.Supervise > 0 && Cli.ServedBin.empty()) {
    Cli.ServedBin = findServedBinary(Argv[0]);
    if (Cli.ServedBin.empty()) {
      std::cerr << "error: cannot find crellvm-served next to " << Argv[0]
                << "; pass --served BIN\n";
      return 2;
    }
  }

  if (Cli.Plan != plan::PlanMode::Off)
    std::cerr << "note: --plan=" << plan::planModeName(Cli.Plan)
              << " is member-local; pass it to each crellvm-served member "
                 "(the router only aggregates their plan counters)\n";

  // Self-healing mode: build the fleet specs, wire the supervisor's
  // admission gate / nudge / RTT sink into the router, spawn everyone,
  // and only then let the router connect (readiness gates admission).
  std::unique_ptr<supervise::MemberSupervisor> Sup;
  cluster::ClusterRouter *RouterPtr = nullptr; // set before Sup starts
  if (Cli.Supervise > 0) {
    for (uint64_t I = 0; I != Cli.Supervise; ++I) {
      supervise::MemberSpec Spec;
      Spec.Id = "s" + std::to_string(I);
      Spec.SocketPath = Cli.Socket + "." + Spec.Id;
      Spec.Argv = {Cli.ServedBin, "--socket", Spec.SocketPath, "--member-id",
                   Spec.Id};
      Spec.Argv.insert(Spec.Argv.end(), Cli.MemberArgs.begin(),
                       Cli.MemberArgs.end());
      Cli.Sup.Members.push_back(Spec);
      cluster::MemberConfig MC;
      MC.Id = Spec.Id;
      MC.SocketPath = Spec.SocketPath;
      Cli.Cluster.Members.push_back(std::move(MC));
    }
    Cli.Sup.Seed = Cli.Cluster.Seed;
    Cli.Sup.Log = [](const std::string &Line) {
      std::cout << Line << std::endl;
    };
    Cli.Sup.Nudge = [&RouterPtr](const std::string &Id) {
      if (RouterPtr)
        RouterPtr->nudgeReattach(Id);
    };
    Cli.Sup.RttSink = [&RouterPtr](const std::string &Id, uint64_t Us) {
      if (RouterPtr)
        RouterPtr->notePingRtt(Id, Us);
    };
    Sup = std::make_unique<supervise::MemberSupervisor>(Cli.Sup);
    Cli.Cluster.AdmissionGate = [&Sup](const std::string &Id) {
      return Sup->admitted(Id);
    };
    Cli.Cluster.StatsAugment = [&Sup](json::Value &Root) {
      Root.set("supervisor", Sup->statsJson());
    };
  }

  cluster::ClusterRouter Router(Cli.Cluster);
  RouterPtr = &Router;
  std::string Err;
  if (Sup && !Sup->start(&Err)) {
    std::cerr << "error: " << Err << "\n";
    return 1;
  }
  if (!Router.start(&Err)) {
    std::cerr << "error: " << Err << "\n";
    return 1;
  }

  server::SocketServer Server(Router, {Cli.Socket, /*Backlog=*/64});
  if (!Server.start(&Err)) {
    std::cerr << "error: " << Err << "\n";
    return 1;
  }

  SignalStopFd = Server.stopFdForSignals();
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onTerminate;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  ::signal(SIGPIPE, SIG_IGN); // a vanished client/member write must not kill

  // The readiness line CI and scripts wait for.
  std::cout << "crellvm-cluster listening on " << Cli.Socket << " (members="
            << Router.numMembers() << " live=" << Router.liveMembers().size()
            << ")" << std::endl;

  Server.run(); // returns after the graceful drain

  cluster::RouterCounters C = Router.counters();
  std::cout << "crellvm-cluster drained: received=" << C.Received
            << " answered=" << C.answered() << " forwarded=" << C.Forwarded
            << " failovers=" << C.Failovers << " member_deaths="
            << C.MemberDeaths << " reattaches=" << C.Reattaches << std::endl;

  std::string Detail;
  bool ClusterOk = Router.clusterDrainEquationHolds(&Detail);
  std::cout << "crellvm-cluster members " << (ClusterOk ? "drained" : "FAILED")
            << ": " << Detail << std::endl;

  if (Sup) {
    // Summary first (the CI smoke gates on these counters), then the
    // fleet teardown: SIGTERM so every member drains, bounded, SIGKILL
    // stragglers. The drain equation above was scraped while members
    // were still alive.
    supervise::SupervisorCounters SC = Sup->counters();
    std::cout << "crellvm-cluster supervisor: spawns=" << SC.Spawns
              << " restarts=" << SC.Restarts << " process_deaths="
              << SC.ProcessDeaths << " hung_kills=" << SC.HungKills
              << " missed_pings=" << SC.MissedPings << " flap_quarantines="
              << SC.FlapQuarantines << std::endl;
    Sup->stop();
  }

  // Zero loss at the router (every received request answered) AND the
  // aggregated member drain equation — both must hold for exit 0.
  bool RouterOk = C.Received == C.answered();
  if (!RouterOk)
    std::cout << "crellvm-cluster FAILED: " << (C.Received - C.answered())
              << " request(s) unanswered" << std::endl;
  return RouterOk && ClusterOk ? 0 : 1;
}
