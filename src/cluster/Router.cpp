//===- cluster/Router.cpp ---------------------------------------*- C++ -*-===//

#include "cluster/Router.h"

#include "cache/Fingerprint.h"
#include "server/HealthProbe.h"
#include "support/Backoff.h"
#include "support/Histogram.h"
#include "support/RNG.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::cluster;
using server::Request;
using server::RequestKind;
using server::Response;
using server::ResponseStatus;

namespace {

int connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (Path.size() + 1 > sizeof(Addr.sun_path))
    return -1;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

uint64_t intField(const json::Value *Obj, const char *Key) {
  const json::Value *V = Obj ? Obj->find(Key) : nullptr;
  return V && V->kind() == json::Value::Kind::Int
             ? static_cast<uint64_t>(V->getInt())
             : 0;
}

/// Sums every integer field of \p Section across \p Docs, preserving the
/// first-seen field order so the aggregated document diffs stably.
json::Value sumIntSection(const std::vector<json::Value> &Docs,
                          const char *Section) {
  std::vector<std::string> Order;
  std::map<std::string, uint64_t> Sums;
  for (const json::Value &D : Docs) {
    const json::Value *S =
        D.kind() == json::Value::Kind::Object ? D.find(Section) : nullptr;
    if (!S || S->kind() != json::Value::Kind::Object)
      continue;
    for (const auto &KV : S->members()) {
      if (KV.second.kind() != json::Value::Kind::Int)
        continue;
      if (!Sums.count(KV.first))
        Order.push_back(KV.first);
      Sums[KV.first] += static_cast<uint64_t>(KV.second.getInt());
    }
  }
  json::Value Out = json::Value::object();
  for (const std::string &Key : Order)
    Out.set(Key, json::Value(Sums[Key]));
  return Out;
}

/// Exact histogram merge: member documents carry raw log2 bucket counts
/// (Service.cpp histJson), which sum exactly — unlike quantiles, which
/// cannot be combined — so cluster-wide p50/p95/p99 are true quantiles
/// of the union, not averages of averages.
json::Value mergeHists(const std::vector<const json::Value *> &Hists) {
  Histogram::Snapshot S{};
  for (const json::Value *H : Hists) {
    if (!H || H->kind() != json::Value::Kind::Object)
      continue;
    const json::Value *B = H->find("buckets");
    if (B && B->kind() == json::Value::Kind::Array) {
      size_t N = std::min<size_t>(B->size(), Histogram::NumBuckets);
      for (size_t I = 0; I != N; ++I)
        if (B->at(I).kind() == json::Value::Kind::Int)
          S.Buckets[I] += static_cast<uint64_t>(B->at(I).getInt());
    }
    S.Sum += intField(H, "sum");
    S.Max = std::max(S.Max, intField(H, "max"));
  }
  for (uint64_t Bk : S.Buckets)
    S.Count += Bk;
  json::Value O = json::Value::object();
  O.set("count", json::Value(S.Count));
  O.set("sum", json::Value(S.Sum));
  O.set("mean", json::Value(static_cast<uint64_t>(S.mean() + 0.5)));
  O.set("p50", json::Value(S.quantile(0.50)));
  O.set("p95", json::Value(S.quantile(0.95)));
  O.set("p99", json::Value(S.quantile(0.99)));
  O.set("max", json::Value(S.Max));
  json::Value Buckets = json::Value::array();
  unsigned Last = Histogram::NumBuckets;
  while (Last > 0 && S.Buckets[Last - 1] == 0)
    --Last;
  for (unsigned I = 0; I != Last; ++I)
    Buckets.push(json::Value(S.Buckets[I]));
  O.set("buckets", std::move(Buckets));
  return O;
}

/// Renders one live Histogram snapshot (the router's own ping RTTs) in
/// the same shape the merged member histograms use, minus the raw
/// buckets nobody re-aggregates above the router.
json::Value histSnapshotJson(const Histogram::Snapshot &S) {
  json::Value O = json::Value::object();
  O.set("count", json::Value(S.Count));
  O.set("sum", json::Value(S.Sum));
  O.set("mean", json::Value(static_cast<uint64_t>(S.mean() + 0.5)));
  O.set("p50", json::Value(S.quantile(0.50)));
  O.set("p95", json::Value(S.quantile(0.95)));
  O.set("p99", json::Value(S.quantile(0.99)));
  O.set("max", json::Value(S.Max));
  return O;
}

const json::Value *histAt(const json::Value &Doc, const char *Section,
                          const char *Name) {
  const json::Value *S =
      Doc.kind() == json::Value::Kind::Object ? Doc.find(Section) : nullptr;
  if (!Name)
    return S;
  return S && S->kind() == json::Value::Kind::Object ? S->find(Name) : nullptr;
}

} // namespace

uint64_t crellvm::cluster::routePointOf(const Request &R) {
  // The member-local cache key covers (src, tgt, proof, pass, version,
  // bugs) — more than the router can see — but every one of those is a
  // deterministic function of what it CAN see: the unit (module text or
  // generation seed) and the bugs preset. Hashing exactly those keeps
  // equal units on one member, where their cache entries live.
  cache::FingerprintBuilder B;
  if (!R.ModuleText.empty())
    B.str(R.ModuleText);
  else
    B.u64(R.Seed);
  B.str(R.Bugs);
  cache::Fingerprint FP = B.digest();
  return FP.Hi ^ FP.Lo;
}

std::optional<json::Value>
crellvm::cluster::scrapeMemberStats(const std::string &SocketPath,
                                    std::string *Err) {
  int Fd = connectUnix(SocketPath);
  if (Fd < 0) {
    if (Err)
      *Err = "cannot connect to " + SocketPath;
    return std::nullopt;
  }
  Request R;
  R.Kind = RequestKind::Stats;
  R.Id = -1;
  std::string Frame, E;
  bool Ok = server::writeFrame(Fd, server::requestToJson(R)) &&
            server::readFrame(Fd, Frame, &E);
  ::close(Fd);
  if (!Ok) {
    if (Err)
      *Err = "stats scrape of " + SocketPath + " failed" +
             (E.empty() ? "" : ": " + E);
    return std::nullopt;
  }
  auto Rsp = server::responseFromJson(Frame, &E);
  if (!Rsp || Rsp->Status != ResponseStatus::Ok || Rsp->Stats.isNull()) {
    if (Err)
      *Err = "bad stats response from " + SocketPath +
             (E.empty() ? "" : ": " + E);
    return std::nullopt;
  }
  return Rsp->Stats;
}

std::optional<json::Value>
crellvm::cluster::aggregateMemberStats(const std::vector<json::Value> &Docs,
                                       std::string *Err) {
  // Schema gate first: merging counters across incompatible schemas
  // would produce plausible-looking nonsense, the one failure mode an
  // aggregator must refuse loudly.
  for (size_t I = 0; I != Docs.size(); ++I) {
    const json::Value &D = Docs[I];
    std::string Who = "member #" + std::to_string(I);
    if (D.kind() == json::Value::Kind::Object) {
      const json::Value *Id = D.find("member_id");
      if (Id && Id->kind() == json::Value::Kind::String)
        Who = "member " + Id->getString();
    }
    const json::Value *Ver =
        D.kind() == json::Value::Kind::Object ? D.find("schema_version")
                                              : nullptr;
    if (!Ver || Ver->kind() != json::Value::Kind::Int) {
      if (Err)
        *Err = Who + ": stats document carries no schema_version";
      return std::nullopt;
    }
    if (static_cast<uint64_t>(Ver->getInt()) != server::StatsSchemaVersion) {
      if (Err)
        *Err = Who + ": stats schema_version " +
               std::to_string(Ver->getInt()) + " != " +
               std::to_string(server::StatsSchemaVersion);
      return std::nullopt;
    }
  }

  json::Value Root = json::Value::object();
  Root.set("requests", sumIntSection(Docs, "requests"));
  Root.set("verdicts", sumIntSection(Docs, "verdicts"));
  // Per-codec frame/byte counters from each member's socket front end;
  // the router's own SocketServer adds its client-facing traffic to this
  // section as the response passes through it.
  Root.set("wire", sumIntSection(Docs, "wire"));

  json::Value CacheV = sumIntSection(Docs, "cache");
  uint64_t Hits = intField(&CacheV, "hits"),
           Misses = intField(&CacheV, "misses");
  uint64_t Lookups = Hits + Misses;
  // A summed ratio is meaningless; recompute it from the summed parts.
  CacheV.set("hit_rate_ppm",
             json::Value(Lookups ? static_cast<uint64_t>(
                                       Hits * 1000000.0 / Lookups + 0.5)
                                 : 0));
  Root.set("cache", std::move(CacheV));

  // Micro-batching: flat counters sum (the nested per_preset detail is
  // per-member and skipped); the mean is recomputed from the sums, like
  // the cache hit rate above.
  json::Value BatchV = sumIntSection(Docs, "batching");
  uint64_t Batches = intField(&BatchV, "batches_formed"),
           Units = intField(&BatchV, "batched_units");
  BatchV.set("mean_batch_size_ppm",
             json::Value(Batches ? static_cast<uint64_t>(
                                       Units * 1000000.0 / Batches + 0.5)
                                 : 0));
  Root.set("batching", std::move(BatchV));

  // Checker plans: specialized/fallback/divergence totals sum; a nonzero
  // cluster-wide `divergences` (or `demotions`) is the alarm the shadow
  // ladder exists to ring. Mode strings are per-member and skipped.
  Root.set("plan", sumIntSection(Docs, "plan"));

  auto Collect = [&Docs](const char *Section, const char *Name) {
    std::vector<const json::Value *> Hs;
    for (const json::Value &D : Docs)
      Hs.push_back(histAt(D, Section, Name));
    return Hs;
  };
  json::Value Lat = json::Value::object();
  Lat.set("queue", mergeHists(Collect("latency_us", "queue")));
  Lat.set("total", mergeHists(Collect("latency_us", "total")));
  Root.set("latency_us", std::move(Lat));
  Root.set("batch_size", mergeHists(Collect("batch_size", nullptr)));

  // Gauges: capacities sum; oracle is only claimable cluster-wide when
  // EVERY member runs it (a bug-hunt through the router must not trust
  // a cluster where one member would skip the differential oracle).
  json::Value Server = json::Value::object();
  uint64_t Jobs = 0, Depth = 0, QueueMax = 0;
  bool Oracle = !Docs.empty(), AnyDraining = false;
  for (const json::Value &D : Docs) {
    const json::Value *S = histAt(D, "server", nullptr);
    Jobs += intField(S, "jobs");
    Depth += intField(S, "queue_depth");
    QueueMax += intField(S, "queue_max");
    const json::Value *O = S ? S->find("oracle") : nullptr;
    Oracle = Oracle && O && O->kind() == json::Value::Kind::Bool &&
             O->getBool();
    const json::Value *Dr = S ? S->find("draining") : nullptr;
    AnyDraining = AnyDraining || (Dr && Dr->kind() == json::Value::Kind::Bool &&
                                  Dr->getBool());
  }
  Server.set("jobs", json::Value(Jobs));
  Server.set("queue_depth", json::Value(Depth));
  Server.set("queue_max", json::Value(QueueMax));
  Server.set("oracle", json::Value(Oracle));
  Server.set("draining", json::Value(AnyDraining));
  Root.set("server", std::move(Server));
  Root.set("members_aggregated",
           json::Value(static_cast<uint64_t>(Docs.size())));
  return Root;
}

// --- ClusterRouter -----------------------------------------------------------

ClusterRouter::ClusterRouter(ClusterOptions Options)
    : Opts(std::move(Options)), Ring(Opts.VNodes) {
  if (Opts.RouterId.empty())
    Opts.RouterId =
        "router:pid:" + std::to_string(static_cast<uint64_t>(::getpid()));
  for (MemberConfig MC : Opts.Members) {
    MC.Codec = Opts.MemberCodec;
    Links.push_back(std::make_unique<MemberLink>(
        std::move(MC), Opts.MaxInflightPerMember,
        [this](MemberLink &L, std::vector<MemberLink::Orphan> Orphans) {
          onMemberDeath(L, std::move(Orphans));
        }));
  }
}

ClusterRouter::~ClusterRouter() {
  {
    std::lock_guard<std::mutex> L(RM);
    Stopping = true;
    Draining = true;
  }
  ReattachCv.notify_all();
  if (Reattacher.joinable())
    Reattacher.join();
  for (auto &Up : Links)
    Up->close(); // silent: orphans (none after a proper drain) answered
}

bool ClusterRouter::start(std::string *Err) {
  size_t Live = 0;
  for (auto &Up : Links) {
    // A gated-out member (not yet ready, or flap-quarantined) is not an
    // error: it stays off the ring until the supervisor's readiness
    // nudge, exactly like a member the reattach loop hasn't revived yet.
    {
      std::lock_guard<std::mutex> L(RM);
      if (Opts.AdmissionGate && !Opts.AdmissionGate(Up->id()))
        continue;
    }
    if (Up->connect()) {
      std::lock_guard<std::mutex> L(RM);
      Ring.addMember(Up->id());
      ++Live;
    }
  }
  if (Live == 0) {
    if (Err)
      *Err = "no cluster member reachable (" +
             std::to_string(Links.size()) + " configured)";
    return false;
  }
  Reattacher = std::thread([this] { reattachLoop(); });
  return true;
}

MemberLink *ClusterRouter::linkById(const std::string &Id) {
  for (auto &Up : Links)
    if (Up->id() == Id)
      return Up.get();
  return nullptr;
}

std::vector<std::string> ClusterRouter::liveMembers() const {
  std::vector<std::string> Out;
  for (const auto &Up : Links)
    if (Up->alive())
      Out.push_back(Up->id());
  return Out;
}

RouterCounters ClusterRouter::counters() const {
  std::lock_guard<std::mutex> L(RM);
  return C;
}

void ClusterRouter::noteAnswered(ResponseStatus S) {
  std::lock_guard<std::mutex> L(RM);
  switch (S) {
  case ResponseStatus::Ok:
    ++C.AnsweredOk;
    break;
  case ResponseStatus::Rejected:
    ++C.AnsweredRejected;
    break;
  case ResponseStatus::DeadlineExceeded:
    ++C.AnsweredDeadline;
    break;
  case ResponseStatus::InternalError:
    ++C.AnsweredInternal;
    break;
  case ResponseStatus::Error:
    ++C.AnsweredError;
    break;
  }
  if (--Outstanding == 0)
    DrainCv.notify_all();
}

void ClusterRouter::submit(const Request &R, Callback Done) {
  Response Rsp;
  Rsp.Id = R.Id;
  switch (R.Kind) {
  case RequestKind::Ping: {
    {
      std::lock_guard<std::mutex> L(RM);
      ++C.Received;
    }
    Rsp.Status = ResponseStatus::Ok;
    if (R.Deep)
      // Probes members; synchronous on purpose, like Stats below.
      Rsp.Stats = deepPing(R.DeadlineMs);
    {
      std::lock_guard<std::mutex> L(RM);
      ++C.AnsweredOk;
      // Same liveness-vs-readiness contract as a member (Protocol.h): a
      // draining router still answers, but is not ready for admission.
      if (Draining)
        Rsp.Reason = "draining";
    }
    Done(std::move(Rsp));
    return;
  }
  case RequestKind::Stats: {
    {
      std::lock_guard<std::mutex> L(RM);
      ++C.Received;
      ++C.StatsRequests;
    }
    Rsp.Status = ResponseStatus::Ok;
    Rsp.Stats = statsJson(); // scrapes members; synchronous on purpose
    {
      std::lock_guard<std::mutex> L(RM);
      ++C.AnsweredOk;
    }
    Done(std::move(Rsp));
    return;
  }
  case RequestKind::Shutdown: {
    {
      std::lock_guard<std::mutex> L(RM);
      ++C.Received;
      ++C.AnsweredOk;
    }
    beginShutdown();
    Rsp.Status = ResponseStatus::Ok;
    Rsp.Reason = "draining";
    Done(std::move(Rsp));
    return;
  }
  case RequestKind::Validate:
    break;
  }

  {
    std::lock_guard<std::mutex> L(RM);
    ++C.Received;
    if (Draining) {
      ++C.AnsweredRejected;
      Rsp.Status = ResponseStatus::Rejected;
      Rsp.Reason = "shutting_down";
    } else {
      // Counted before the first send so a racing drain() cannot observe
      // zero while this request is between admission and forwarding.
      ++Outstanding;
    }
  }
  if (Rsp.Status == ResponseStatus::Rejected) {
    Done(std::move(Rsp));
    return;
  }
  // Every path out of routeForwarded — a member's response, a failover
  // answer, or the router's own rejection — funnels through this wrapper,
  // which settles the Outstanding accounting exactly once.
  Callback Wrapped = [this, Done = std::move(Done)](Response MemberRsp) {
    noteAnswered(MemberRsp.Status);
    Done(std::move(MemberRsp));
  };
  routeForwarded(R, Wrapped, /*IsFailover=*/false);
}

void ClusterRouter::routeForwarded(const Request &R, const Callback &Done,
                                   bool IsFailover) {
  uint64_t Point = routePointOf(R);
  std::vector<MemberLink *> Cands;
  {
    std::lock_guard<std::mutex> L(RM);
    if (IsFailover)
      ++C.Failovers;
    // Owner first, then its ring successors: only capacity exhaustion or
    // death moves a request off its warm member.
    for (const std::string &Id : Ring.routeN(Point, Links.size()))
      if (MemberLink *ML = linkById(Id))
        Cands.push_back(ML);
  }
  for (MemberLink *ML : Cands) {
    if (ML->send(R, Done) == MemberLink::SendResult::Sent) {
      std::lock_guard<std::mutex> L(RM);
      ++C.Forwarded;
      return;
    }
  }
  // Cluster-wide full (or everyone dead): a *retryable* rejection, shaped
  // exactly like a member's own backpressure so existing client/campaign
  // retry loops ride it out unchanged.
  Response Rsp;
  Rsp.Id = R.Id;
  Rsp.Status = ResponseStatus::Rejected;
  Rsp.Reason = "queue_full";
  // Same hard minimum as the service's own hint: a floor configured to 0
  // must not turn cluster-wide backpressure into client hot-spin.
  Rsp.RetryAfterMs = std::max(Opts.RetryAfterMsFloor, server::MinRetryAfterMs);
  Done(std::move(Rsp));
}

void ClusterRouter::onMemberDeath(MemberLink &L,
                                  std::vector<MemberLink::Orphan> Orphans) {
  {
    std::lock_guard<std::mutex> G(RM);
    ++C.MemberDeaths;
    // Quarantine: off the ring until the reattach loop revives it. Its
    // arc redistributes to ring successors; everyone else's arcs — and
    // warm caches — are untouched (consistent hashing's whole point).
    Ring.removeMember(L.id());
    // The reattach loop parks indefinitely while everything is healthy;
    // the dirty flag is what its wait predicate sees (a bare notify can
    // race the predicate evaluation and be lost).
    ReattachDirty = true;
  }
  ReattachCv.notify_all();
  // The dead member accepted these but never answered; their callbacks
  // are already accounting-wrapped, so re-routing (or the rejection
  // fallback inside) keeps the zero-loss equation intact.
  for (MemberLink::Orphan &O : Orphans)
    routeForwarded(O.R, O.Done, /*IsFailover=*/true);
}

void ClusterRouter::reattachLoop() {
  using Clock = std::chrono::steady_clock;
  RNG Rng(Opts.Seed * 0x9e3779b97f4a7c15ull + 0xc1a5ull);
  std::map<std::string, uint64_t> FailedTries;
  std::map<std::string, Clock::time_point> NextTry;
  std::unique_lock<std::mutex> L(RM);
  while (!Stopping) {
    // Event-driven sleep, not a poll: with every admitted member
    // attached the loop parks indefinitely (an idle healthy cluster's
    // reattach thread makes zero wakeups — RouterCounters pins this);
    // with dead members pending it sleeps only until the earliest
    // backoff expiry. A death or a supervisor nudge sets ReattachDirty
    // under RM before notifying, so the predicate cannot miss it.
    bool AnyDead = false;
    Clock::time_point Earliest = Clock::time_point::max();
    for (auto &Up : Links) {
      if (Up->alive())
        continue;
      if (Opts.AdmissionGate && !Opts.AdmissionGate(Up->id()))
        continue; // not admitted: reattach when the nudge says so
      AnyDead = true;
      auto ItN = NextTry.find(Up->id());
      Earliest = std::min(Earliest, ItN == NextTry.end()
                                        ? Clock::time_point::min()
                                        : ItN->second);
    }
    if (!AnyDead)
      ReattachCv.wait(L, [this] { return Stopping || ReattachDirty; });
    else if (Earliest > Clock::now())
      ReattachCv.wait_until(L, Earliest,
                            [this] { return Stopping || ReattachDirty; });
    ReattachDirty = false;
    for (const std::string &Id : ReattachResets) {
      FailedTries.erase(Id);
      NextTry.erase(Id);
    }
    ReattachResets.clear();
    if (Stopping)
      return;
    std::vector<MemberLink *> Dead;
    for (auto &Up : Links)
      if (!Up->alive() &&
          (!Opts.AdmissionGate || Opts.AdmissionGate(Up->id())))
        Dead.push_back(Up.get());
    if (Dead.empty())
      continue;
    ++C.ReattachWakeups;
    L.unlock();
    Clock::time_point Now = Clock::now();
    for (MemberLink *D : Dead) {
      auto ItN = NextTry.find(D->id());
      if (ItN != NextTry.end() && Now < ItN->second)
        continue;
      if (D->connect()) {
        std::lock_guard<std::mutex> G(RM);
        if (!Stopping)
          Ring.addMember(D->id());
        ++C.Reattaches;
        FailedTries.erase(D->id());
        NextTry.erase(D->id());
      } else {
        // Seeded exponential backoff + jitter: a member that stays dead
        // costs one cheap connect attempt per backoff period, and
        // routers sharing a seed schedule still decorrelate per member.
        // delayMs is overflow-proof however long the member stays dead.
        uint64_t B = backoff::delayMs(Opts.ReattachBaseMs,
                                      FailedTries[D->id()]++,
                                      Opts.ReattachMaxMs);
        NextTry[D->id()] =
            Now + std::chrono::milliseconds(B + Rng.below(B / 2 + 1));
      }
    }
    L.lock();
  }
}

void ClusterRouter::nudgeReattach(const std::string &Id) {
  {
    std::lock_guard<std::mutex> L(RM);
    ReattachResets.insert(Id);
    ReattachDirty = true;
  }
  ReattachCv.notify_all();
}

void ClusterRouter::notePingRtt(const std::string &Id, uint64_t RttUs) {
  Histogram *H;
  {
    std::lock_guard<std::mutex> L(RM);
    H = &PingRtts[Id]; // node-stable; record() itself is lock-free
  }
  H->record(RttUs);
}

json::Value ClusterRouter::deepPing(uint64_t DeadlineMs) {
  if (DeadlineMs == 0)
    DeadlineMs = 1000;
  struct Snap {
    std::string Id, Path;
    bool Linked;
  };
  std::vector<Snap> Snaps;
  for (const auto &Up : Links)
    Snaps.push_back({Up->id(), Up->socketPath(), Up->alive()});
  // All members probed concurrently: one hung member costs the deadline
  // once, not once per member behind it in the list.
  std::vector<server::ProbeResult> Results(Snaps.size());
  std::vector<std::thread> Probers;
  Probers.reserve(Snaps.size());
  for (size_t I = 0; I != Snaps.size(); ++I)
    Probers.emplace_back([&, I] {
      Results[I] = server::probePing(Snaps[I].Path, DeadlineMs);
    });
  for (std::thread &T : Probers)
    T.join();

  json::Value O = json::Value::object();
  O.set("deep", json::Value(true));
  json::Value Arr = json::Value::array();
  size_t Live = 0;
  for (size_t I = 0; I != Snaps.size(); ++I) {
    const server::ProbeResult &PR = Results[I];
    json::Value MV = json::Value::object();
    MV.set("member_id", json::Value(Snaps[I].Id));
    MV.set("socket", json::Value(Snaps[I].Path));
    MV.set("linked", json::Value(Snaps[I].Linked));
    MV.set("reachable", json::Value(PR.Reachable));
    MV.set("ready", json::Value(PR.Ready));
    MV.set("rtt_us", json::Value(PR.RttUs));
    if (!PR.Reachable)
      MV.set("error", json::Value(PR.Error));
    else
      notePingRtt(Snaps[I].Id, PR.RttUs);
    Live += PR.Reachable ? 1 : 0;
    Arr.push(std::move(MV));
  }
  O.set("size", json::Value(static_cast<uint64_t>(Snaps.size())));
  O.set("live", json::Value(static_cast<uint64_t>(Live)));
  O.set("members", std::move(Arr));
  return O;
}

void ClusterRouter::beginShutdown() {
  {
    std::lock_guard<std::mutex> L(RM);
    Draining = true;
  }
  ReattachCv.notify_all();
}

void ClusterRouter::drain() {
  std::unique_lock<std::mutex> L(RM);
  DrainCv.wait(L, [this] { return Outstanding == 0; });
}

json::Value ClusterRouter::statsJson() {
  struct Snap {
    std::string Id, Path;
    bool Live;
  };
  std::vector<Snap> Snaps;
  RouterCounters Cnt;
  size_t Out;
  bool Drn;
  {
    std::lock_guard<std::mutex> L(RM);
    Cnt = C;
    Out = Outstanding;
    Drn = Draining;
  }
  for (const auto &Up : Links)
    Snaps.push_back({Up->id(), Up->socketPath(), Up->alive()});

  // Aggregation sums LIVE members only: a dead member's last-seen
  // counters cannot advance, and freezing them into the sums would break
  // the drain equality the campaign gates on once its requests fail over
  // (they complete on — and are counted by — a different member).
  std::vector<json::Value> Docs;
  json::Value MembersArr = json::Value::array();
  size_t LiveN = 0;
  for (const Snap &S : Snaps) {
    json::Value MV = json::Value::object();
    MV.set("member_id", json::Value(S.Id));
    MV.set("socket", json::Value(S.Path));
    {
      // Supervisor health-ping RTTs, when any were recorded for this
      // member (empty map entries are never created by rendering).
      std::lock_guard<std::mutex> L(RM);
      auto It = PingRtts.find(S.Id);
      if (It != PingRtts.end())
        MV.set("ping_rtt_us", histSnapshotJson(It->second.snapshot()));
    }
    bool Usable = S.Live;
    if (S.Live) {
      std::string E;
      auto Doc = scrapeMemberStats(S.Path, &E);
      if (Doc) {
        Docs.push_back(*Doc);
        MV.set("stats", std::move(*Doc));
      } else {
        Usable = false;
        MV.set("scrape_error", json::Value(E));
      }
    }
    MV.set("live", json::Value(Usable));
    LiveN += Usable ? 1 : 0;
    MembersArr.push(std::move(MV));
  }

  std::string AggErr;
  auto Agg = aggregateMemberStats(Docs, &AggErr);
  json::Value Root;
  if (Agg) {
    Root = std::move(*Agg);
  } else {
    Root = json::Value::object();
    Root.set("aggregation_error", json::Value(AggErr));
  }
  Root.set("schema_version", json::Value(server::StatsSchemaVersion));
  Root.set("member_id", json::Value(Opts.RouterId));

  json::Value Cluster = json::Value::object();
  Cluster.set("size", json::Value(static_cast<uint64_t>(Snaps.size())));
  Cluster.set("live", json::Value(static_cast<uint64_t>(LiveN)));
  json::Value RouterV = json::Value::object();
  RouterV.set("received", json::Value(Cnt.Received));
  RouterV.set("forwarded", json::Value(Cnt.Forwarded));
  RouterV.set("failovers", json::Value(Cnt.Failovers));
  RouterV.set("member_deaths", json::Value(Cnt.MemberDeaths));
  RouterV.set("reattaches", json::Value(Cnt.Reattaches));
  RouterV.set("answered_ok", json::Value(Cnt.AnsweredOk));
  RouterV.set("answered_rejected", json::Value(Cnt.AnsweredRejected));
  RouterV.set("answered_deadline_exceeded", json::Value(Cnt.AnsweredDeadline));
  RouterV.set("answered_internal_errors", json::Value(Cnt.AnsweredInternal));
  RouterV.set("answered_errors", json::Value(Cnt.AnsweredError));
  RouterV.set("stats_requests", json::Value(Cnt.StatsRequests));
  RouterV.set("outstanding", json::Value(static_cast<uint64_t>(Out)));
  RouterV.set("draining", json::Value(Drn));
  RouterV.set("reattach_wakeups", json::Value(Cnt.ReattachWakeups));
  Cluster.set("router", std::move(RouterV));
  Cluster.set("members", std::move(MembersArr));
  Root.set("cluster", std::move(Cluster));
  // The supervisor's section (spawns/restarts/hung kills/quarantines)
  // attaches here, outside the member aggregation and its schema gate.
  if (Opts.StatsAugment)
    Opts.StatsAugment(Root);
  return Root;
}

bool ClusterRouter::clusterDrainEquationHolds(std::string *Detail) {
  std::vector<std::pair<std::string, std::string>> LiveSnap;
  for (const auto &Up : Links)
    if (Up->alive())
      LiveSnap.push_back({Up->id(), Up->socketPath()});
  uint64_t Accepted = 0, Completed = 0, Deadline = 0, Internal = 0;
  std::string Problems;
  for (const auto &[Id, Path] : LiveSnap) {
    std::string E;
    auto Doc = scrapeMemberStats(Path, &E);
    if (!Doc) {
      Problems += " [" + Id + ": " + E + "]";
      continue;
    }
    const json::Value *Req = Doc->find("requests");
    Accepted += intField(Req, "accepted");
    Completed += intField(Req, "completed");
    Deadline += intField(Req, "deadline_exceeded");
    Internal += intField(Req, "internal_errors");
  }
  bool Ok =
      Problems.empty() && Accepted == Completed + Deadline + Internal;
  if (Detail)
    *Detail = "accepted=" + std::to_string(Accepted) +
              " completed=" + std::to_string(Completed) +
              " deadline_exceeded=" + std::to_string(Deadline) +
              " internal_errors=" + std::to_string(Internal) +
              " (live_members=" + std::to_string(LiveSnap.size()) + ")" +
              Problems;
  return Ok;
}
