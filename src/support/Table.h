//===- support/Table.h - Plain-text table printer --------------*- C++ -*-===//
///
/// \file
/// A small column-aligned table printer used by every bench binary to print
/// the paper's tables (Fig. 5-14). The first column is left-aligned, all
/// others right-aligned, matching the paper's layout.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SUPPORT_TABLE_H
#define CRELLVM_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace crellvm {

/// Column-aligned text table.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a data row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Appends a horizontal separator row.
  void addSeparator();

  /// Renders the table to \p OS.
  void print(std::ostream &OS) const;

private:
  std::vector<std::string> Header;
  /// Separator rows are represented as empty vectors.
  std::vector<std::vector<std::string>> Rows;
};

} // namespace crellvm

#endif // CRELLVM_SUPPORT_TABLE_H
