//===- support/FaultInjection.h - Deterministic chaos harness ---*- C++ -*-===//
///
/// \file
/// A process-global, seeded, deterministic fault-injection registry: the
/// layer that lets the validation stack be tested against failure, not
/// just success (DESIGN.md §13). Every I/O and concurrency boundary that
/// can misbehave in production names a **fault site** and probes it with
/// shouldFail() immediately before the risky operation; a scripted
/// schedule decides, per site and per hit index, whether to inject the
/// corresponding fault.
///
/// **Sites** (the full catalog; configure() rejects unknown names):
///
///   disk.read     cache/DiskStore::load: the object read fails (EIO)
///   disk.write    cache/DiskStore writes: the write fails (ENOSPC)
///   disk.short    cache/DiskStore writes: a torn write — only half the
///                 bytes land, but the write "succeeds" (crash mid-write)
///   disk.rename   cache/DiskStore atomic rename(2) fails
///   disk.corrupt  cache/DiskStore::load: the bytes read back corrupted
///   sock.read     server/Protocol reads: hard failure mid-frame
///                 (ECONNRESET — the peer vanished)
///   sock.write    server/Protocol writes: hard failure mid-frame
///   sock.short    server/Protocol transfers: the kernel moves only one
///                 byte per call (exercises the partial-I/O retry loops;
///                 never itself an error)
///   sock.eintr    server/Protocol transfers: the call is interrupted by
///                 a signal before moving any bytes (EINTR; the retry
///                 loop must re-issue it). Never schedule `every=1`: an
///                 EINTR on *every* attempt can make no progress.
///   pool.submit   support/ThreadPool::submit: the task runs inline on
///                 the submitting thread instead of a worker (degraded
///                 but correct — capacity loss, never work loss)
///   queue.admit   server/ValidationService admission: the request is
///                 shed with queue_full + retry_after_ms despite free
///                 capacity (forces the client retry path)
///   unit.run      driver::runBatchValidated unit body throws (a checker
///                 or pass crash; the watchdog converts it into a
///                 structured internal_error verdict)
///   unit.hang     driver::runBatchValidated unit body stalls for `ms`
///                 milliseconds (default 100) — long enough to trip a
///                 per-unit watchdog deadline, short enough to terminate
///   plan.apply    plan/PlanManager::validate: the specialized dispatch
///                 is skipped for this call as if the applicability guard
///                 failed mid-batch; the general checker answers, so
///                 verdicts must stay bit-identical to --plan=off
///   sup.spawn     supervise/MemberSupervisor spawn: the fork/exec of a
///                 member is failed before the fork (as if the exec
///                 target vanished); counts as a failed spawn attempt,
///                 feeding the restart-budget flap ladder
///
/// **Schedules** are comma- or semicolon-separated clauses; within a
/// clause, `site` is followed by colon-separated `key=value` params:
///
///   seed=S                 global seed for the ppm mode (default 0)
///   site:every=N           fire on hits N, 2N, 3N, ... (1-based)
///   site:after=N           fire on every hit strictly past the Nth
///   site:at=N              fire on exactly the Nth hit
///   site:ppm=P             fire with probability P/1e6 per hit, decided
///                          by a deterministic hash of (seed, site, hit)
///   site:ms=N              argument for sites that take one (unit.hang)
///
/// e.g.  CRELLVM_CHAOS="seed=42;disk.write:every=7;sock.read:after=3"
///       crellvm-served --chaos 'unit.hang:every=5:ms=50;disk.corrupt:every=2'
///
/// Modes combine within a clause (fire if any matches). Hit indices are
/// per-site atomic counters, so a schedule is deterministic in *which
/// hit numbers* fire; under concurrency the thread that draws a firing
/// hit varies, which is exactly the nondeterminism a chaos suite wants —
/// while assertions (no verdict lost, no verdict changed) stay exact.
///
/// **Cost when disarmed:** one relaxed atomic load per probe — the whole
/// registry is behind the `armed()` flag, so compiling the machinery in
/// is free on the hot path (gated ≤5% by bench/chaos_overhead even when
/// armed with a never-firing schedule).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SUPPORT_FAULTINJECTION_H
#define CRELLVM_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace crellvm {
namespace fault {

namespace detail {
/// True while a schedule is configured. The one word every probe reads.
extern std::atomic<bool> Armed;
/// The slow path: schedule lookup + hit accounting. Defined in the .cpp.
bool probeSlow(const char *Site, uint64_t *ArgOut);
} // namespace detail

/// True when a chaos schedule is active.
inline bool armed() { return detail::Armed.load(std::memory_order_relaxed); }

/// Probes fault site \p Site: advances its hit counter and returns true
/// when the active schedule injects a fault at this hit. Disarmed cost is
/// a single relaxed atomic load. \p ArgOut, when non-null and the site
/// fires, receives the schedule's `ms` argument (0 if unset).
inline bool shouldFail(const char *Site, uint64_t *ArgOut = nullptr) {
  if (!armed())
    return false;
  return detail::probeSlow(Site, ArgOut);
}

/// Installs the schedule described by \p Spec (see the file comment),
/// replacing any previous one, and arms the registry. An empty spec
/// disarms. On a parse error returns false, reports it via \p Err, and
/// leaves the previous schedule untouched.
bool configure(const std::string &Spec, std::string *Err = nullptr);

/// configure() from the CRELLVM_CHAOS environment variable. Returns true
/// when the variable is unset (nothing to do) or parsed cleanly.
bool configureFromEnv(std::string *Err = nullptr);

/// Clears the schedule and disarms. Probes return to the one-load path.
void disarm();

/// The spec string configure() accepted; empty when disarmed.
std::string activeSpec();

/// Per-site accounting, for operator visibility and test assertions.
struct SiteCounters {
  uint64_t Hits = 0;     ///< probes reaching a scheduled site
  uint64_t Injected = 0; ///< probes that fired
};

/// Snapshot of every scheduled site's counters (empty when disarmed).
std::map<std::string, SiteCounters> counters();

/// Total faults injected across all sites since the last configure().
uint64_t totalInjected();

} // namespace fault
} // namespace crellvm

#endif // CRELLVM_SUPPORT_FAULTINJECTION_H
