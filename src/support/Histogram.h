//===- support/Histogram.h - Concurrent latency histogram ------*- C++ -*-===//
///
/// \file
/// A fixed-shape log2-bucketed histogram for latency metrics: 64 buckets,
/// bucket B holding samples whose value has bit-width B (value 0 lands in
/// bucket 0, values in [2^(B-1), 2^B) in bucket B). record() is a handful
/// of relaxed atomic increments, so hot paths (the validation service's
/// per-request accounting) can call it without a lock; quantile() reads a
/// snapshot and answers p50/p95/p99 with bucket-upper-bound resolution —
/// exact enough for operational metrics, deliberately not for the paper's
/// timing tables (those use support/Timer.h and exact sums).
///
/// Log buckets keep relative error bounded (< 2x) across nine decades,
/// which is the right trade for latencies that span microseconds (cache
/// hits) to seconds (cold full-pipeline validations).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SUPPORT_HISTOGRAM_H
#define CRELLVM_SUPPORT_HISTOGRAM_H

#include <array>
#include <atomic>
#include <cstdint>

namespace crellvm {

class Histogram {
public:
  static constexpr unsigned NumBuckets = 64;

  /// Adds one sample. Thread-safe, lock-free (relaxed atomics): counters
  /// may be observed mid-update by snapshots, which is fine for metrics.
  void record(uint64_t Value);

  /// A consistent-enough copy for reporting.
  struct Snapshot {
    std::array<uint64_t, NumBuckets> Buckets{};
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Max = 0;

    /// Value bound such that at least \p Q (0..1) of samples are <= it.
    /// Returns the matched bucket's inclusive upper bound; 0 when empty.
    uint64_t quantile(double Q) const;
    double mean() const { return Count ? double(Sum) / double(Count) : 0; }
  };
  Snapshot snapshot() const;

private:
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

} // namespace crellvm

#endif // CRELLVM_SUPPORT_HISTOGRAM_H
