//===- support/RNG.h - Deterministic random number generator ---*- C++ -*-===//
///
/// \file
/// A small, fast, deterministic PRNG (splitmix64 seeded xorshift128+) used by
/// the random program generator and the rule-soundness tester. We avoid
/// <random> so that every experiment is reproducible across standard library
/// implementations.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SUPPORT_RNG_H
#define CRELLVM_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace crellvm {

/// Deterministic PRNG with a stable cross-platform sequence.
class RNG {
public:
  explicit RNG(uint64_t Seed) {
    // splitmix64 expands the seed into two state words; xorshift128+ needs
    // at least one of them to be nonzero.
    State0 = splitMix(Seed);
    State1 = splitMix(Seed);
    if (State0 == 0 && State1 == 0)
      State1 = 0x9e3779b97f4a7c15ull;
  }

  /// Returns the next 64 random bits.
  uint64_t next() {
    uint64_t S1 = State0;
    const uint64_t S0 = State1;
    State0 = S0;
    S1 ^= S1 << 23;
    State1 = S1 ^ S0 ^ (S1 >> 17) ^ (S0 >> 26);
    return State1 + S0;
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "bound must be nonzero");
    return next() % Bound;
  }

  /// Returns a uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  /// One splitmix64 step; advances \p X and returns the mixed output.
  static uint64_t splitMix(uint64_t &X) {
    X += 0x9e3779b97f4a7c15ull;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  uint64_t State0;
  uint64_t State1;
};

} // namespace crellvm

#endif // CRELLVM_SUPPORT_RNG_H
