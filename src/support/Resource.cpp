//===- support/Resource.cpp -------------------------------------*- C++ -*-===//

#include "support/Resource.h"

#include <cstdio>
#include <cstring>

#include <sys/resource.h>

using namespace crellvm;

namespace {

/// Reads one "Key:  N kB" line from /proc/self/status; 0 when absent
/// (non-Linux, or a hardened procfs).
uint64_t procStatusKb(const char *Key) {
  FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  char Line[256];
  size_t KeyLen = std::strlen(Key);
  uint64_t Kb = 0;
  while (std::fgets(Line, sizeof(Line), F)) {
    if (std::strncmp(Line, Key, KeyLen) != 0 || Line[KeyLen] != ':')
      continue;
    unsigned long long V = 0;
    if (std::sscanf(Line + KeyLen + 1, "%llu", &V) == 1)
      Kb = V;
    break;
  }
  std::fclose(F);
  return Kb;
}

} // namespace

uint64_t support::peakRssBytes() {
  if (uint64_t Kb = procStatusKb("VmHWM"))
    return Kb << 10;
  struct rusage RU;
  if (::getrusage(RUSAGE_SELF, &RU) != 0)
    return 0;
  // ru_maxrss is kilobytes on Linux (and BSDs); bytes only on macOS.
#ifdef __APPLE__
  return static_cast<uint64_t>(RU.ru_maxrss);
#else
  return static_cast<uint64_t>(RU.ru_maxrss) << 10;
#endif
}

uint64_t support::currentRssBytes() {
  if (uint64_t Kb = procStatusKb("VmRSS"))
    return Kb << 10;
  return peakRssBytes();
}
