//===- support/Format.h - Small string formatting helpers ------*- C++ -*-===//
///
/// \file
/// String helpers shared across the project: number formatting in the style
/// the paper's tables use (e.g. "76.79K"), joining, and padding.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SUPPORT_FORMAT_H
#define CRELLVM_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

namespace crellvm {

/// Formats \p N the way the paper's result tables do: values of at least
/// 1000 are printed with a "K" suffix and two decimals (e.g. 76790 ->
/// "76.79K"), smaller values verbatim.
std::string formatCountK(uint64_t N);

/// Formats \p Seconds with two decimals; values of at least 1000 use the
/// paper's "K" convention (e.g. 13160.0 -> "13.16K"), and very small values
/// print as "<0.01".
std::string formatSeconds(double Seconds);

/// Formats \p Ratio as a percentage with one decimal, e.g. 0.740 -> "74.0%".
std::string formatPercent(double Ratio);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Returns \p S left-padded with spaces to \p Width.
std::string padLeft(const std::string &S, size_t Width);

/// Returns \p S right-padded with spaces to \p Width.
std::string padRight(const std::string &S, size_t Width);

} // namespace crellvm

#endif // CRELLVM_SUPPORT_FORMAT_H
