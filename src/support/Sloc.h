//===- support/Sloc.h - Significant-lines-of-code counting -----*- C++ -*-===//
///
/// \file
/// SLOC counting in the paper's sense (footnote 1: "ignoring spaces and
/// comments"), used by the Fig. 5 reproduction. Pass sources mark their
/// proof-generation regions with "// PROOFGEN-BEGIN" / "// PROOFGEN-END"
/// markers so the bench can split compiler code from proof-generation code
/// the way the paper reports them.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SUPPORT_SLOC_H
#define CRELLVM_SUPPORT_SLOC_H

#include <cstdint>
#include <string>

namespace crellvm {

/// SLOC of a source file split by PROOFGEN region markers.
struct SlocCounts {
  uint64_t Compiler = 0;  ///< Significant lines outside PROOFGEN regions.
  uint64_t ProofGen = 0;  ///< Significant lines inside PROOFGEN regions.

  uint64_t total() const { return Compiler + ProofGen; }
  SlocCounts &operator+=(const SlocCounts &O) {
    Compiler += O.Compiler;
    ProofGen += O.ProofGen;
    return *this;
  }
};

/// Counts significant lines in the source text \p Text. Blank lines, pure
/// comment lines, and the region marker lines themselves are not counted.
SlocCounts countSloc(const std::string &Text);

/// Reads \p Path and counts its SLOC; returns zero counts if unreadable.
SlocCounts countSlocFile(const std::string &Path);

} // namespace crellvm

#endif // CRELLVM_SUPPORT_SLOC_H
