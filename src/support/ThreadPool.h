//===- support/ThreadPool.h - Work-stealing thread pool --------*- C++ -*-===//
///
/// \file
/// A small work-stealing thread pool used to run independent validation
/// units (module -> pass -> proofgen -> check cycles) concurrently. Each
/// worker owns a deque: it pushes and pops work at the back (LIFO, cache
/// friendly) and steals from the front of other workers' deques when its
/// own runs dry (FIFO, so thieves take the oldest — typically largest —
/// units). Tasks must not throw.
///
/// The pool itself is order-agnostic; determinism of the validation
/// pipeline comes from the driver's reduction step, which merges
/// per-unit statistics in submission order (driver/Driver.h).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SUPPORT_THREADPOOL_H
#define CRELLVM_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace crellvm {

class ThreadPool {
public:
  /// Starts \p NumThreads workers; 0 means defaultConcurrency().
  explicit ThreadPool(unsigned NumThreads = 0);

  /// Waits for outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task. Safe to call from any thread, including from inside
  /// a running task.
  void submit(std::function<void()> Task);

  /// Blocks until every task submitted so far has finished.
  void wait();

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Tasks submitted but not yet picked up by a worker. A relaxed-atomic
  /// snapshot for metrics (the validation service's queue-depth gauge) —
  /// momentarily stale by design, never torn.
  uint64_t queueDepth() const { return Queued.load(std::memory_order_relaxed); }

  /// Workers currently inside a task body (same relaxed-snapshot caveat).
  unsigned activeWorkers() const {
    return Active.load(std::memory_order_relaxed);
  }

  /// Hardware concurrency with a sane floor of 1.
  static unsigned defaultConcurrency();

private:
  /// One worker's deque. The owner pops from the back; thieves steal from
  /// the front.
  struct WorkerQueue {
    std::mutex M;
    std::deque<std::function<void()>> Q;
  };

  void workerLoop(unsigned Self);
  bool tryRunOne(unsigned Self);
  std::function<void()> popOwn(unsigned Self);
  std::function<void()> stealFrom(unsigned Self);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;

  std::mutex SignalM;
  std::condition_variable WorkCv; ///< wakes idle workers
  std::condition_variable DoneCv; ///< wakes wait()ers
  std::atomic<uint64_t> Pending{0}; ///< submitted but not yet finished
  std::atomic<uint64_t> Queued{0};  ///< submitted but not yet started
  std::atomic<unsigned> Active{0};  ///< workers inside a task body
  std::atomic<uint64_t> NextQueue{0}; ///< round-robin submission cursor
  bool ShuttingDown = false; ///< guarded by SignalM
};

/// Runs Fn(I) for every I in [0, N) on \p Pool and blocks until all
/// iterations complete. Fn is invoked concurrently and must be
/// thread-safe for distinct indices.
void parallelFor(ThreadPool &Pool, size_t N,
                 const std::function<void(size_t)> &Fn);

} // namespace crellvm

#endif // CRELLVM_SUPPORT_THREADPOOL_H
