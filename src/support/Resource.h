//===- support/Resource.h - Process resource observation -------*- C++ -*-===//
///
/// \file
/// Small wrappers over the process accounting the campaign driver reports:
/// peak resident set size (the number that proves the streaming generator
/// really is bounded-memory at MLOC scale) and current RSS for progress
/// lines. Linux reads /proc/self/status; everywhere else getrusage's
/// ru_maxrss answers the peak and current falls back to the peak.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SUPPORT_RESOURCE_H
#define CRELLVM_SUPPORT_RESOURCE_H

#include <cstdint>

namespace crellvm {
namespace support {

/// High-water-mark resident set size of this process, in bytes; 0 when
/// the platform offers no way to ask.
uint64_t peakRssBytes();

/// Current resident set size in bytes; falls back to peakRssBytes() when
/// only the high-water mark is available.
uint64_t currentRssBytes();

} // namespace support
} // namespace crellvm

#endif // CRELLVM_SUPPORT_RESOURCE_H
