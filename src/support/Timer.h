//===- support/Timer.h - Wall-clock timers for the experiments -*- C++ -*-===//
///
/// \file
/// Timers used by the validation driver to reproduce the paper's four time
/// columns (Orig / PCal / I-O / PCheck). Times are accumulated in seconds.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SUPPORT_TIMER_H
#define CRELLVM_SUPPORT_TIMER_H

#include <chrono>

namespace crellvm {

/// Accumulating wall-clock timer.
class Timer {
public:
  /// Runs \p Fn and adds its wall-clock duration to the accumulated total.
  template <typename Fn> auto time(Fn &&F) {
    using Clock = std::chrono::steady_clock;
    // The paper's time columns (and the bench JSON derived from them) must
    // never go backwards under NTP adjustment; reject any platform where
    // the chosen clock is not monotonic.
    static_assert(Clock::is_steady,
                  "validation timers require a monotonic clock");
    auto Start = Clock::now();
    if constexpr (std::is_void_v<decltype(F())>) {
      F();
      Total += std::chrono::duration<double>(Clock::now() - Start).count();
    } else {
      auto Result = F();
      Total += std::chrono::duration<double>(Clock::now() - Start).count();
      return Result;
    }
  }

  /// Returns the accumulated time in seconds.
  double seconds() const { return Total; }

  /// Adds \p S seconds (used when merging per-project timers).
  void add(double S) { Total += S; }

  void reset() { Total = 0.0; }

private:
  double Total = 0.0;
};

} // namespace crellvm

#endif // CRELLVM_SUPPORT_TIMER_H
