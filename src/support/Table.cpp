//===- support/Table.cpp ---------------------------------------*- C++ -*-===//

#include "support/Table.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace crellvm;

Table::Table(std::vector<std::string> Hdr) : Header(std::move(Hdr)) {}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

void Table::addSeparator() { Rows.emplace_back(); }

void Table::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      if (C != 0)
        OS << "  ";
      OS << (C == 0 ? padRight(Row[C], Widths[C])
                    : padLeft(Row[C], Widths[C]));
    }
    OS << '\n';
  };

  auto PrintSep = [&] {
    size_t Total = 0;
    for (size_t C = 0; C != Widths.size(); ++C)
      Total += Widths[C] + (C == 0 ? 0 : 2);
    OS << std::string(Total, '-') << '\n';
  };

  PrintRow(Header);
  PrintSep();
  for (const auto &Row : Rows) {
    if (Row.empty())
      PrintSep();
    else
      PrintRow(Row);
  }
}
