//===- support/Backoff.h - Clamped exponential backoff ---------*- C++ -*-===//
///
/// \file
/// The one exponential-backoff computation shared by every retry loop in
/// the tree: crellvm-client's queue_full retries, the campaign socket
/// backend's per-unit retries, and the cluster router's member-reattach
/// schedule. Each of those used to hand-roll `Base << Attempt` style
/// arithmetic, which is undefined behavior the moment the attempt count
/// reaches the width of the type (a soak campaign against a long-dead
/// daemon gets there) — this helper is total: defined for every attempt
/// count, monotone non-decreasing, and exactly capped.
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_SUPPORT_BACKOFF_H
#define CRELLVM_SUPPORT_BACKOFF_H

#include <cstdint>

namespace crellvm {
namespace backoff {

/// min(BaseMs * 2^Attempt, CapMs), computed without shift/multiply
/// overflow at any attempt count (Attempt is a 0-based retry counter).
/// Monotone non-decreasing in Attempt, then constant at CapMs. A zero
/// base never backs off (returns 0); a zero cap clamps everything to 0.
inline uint64_t delayMs(uint64_t BaseMs, uint64_t Attempt, uint64_t CapMs) {
  if (BaseMs == 0)
    return 0;
  if (BaseMs >= CapMs)
    return CapMs;
  uint64_t D = BaseMs;
  while (Attempt > 0) {
    if (D > CapMs / 2) // doubling would pass (or overflow past) the cap
      return CapMs;
    D <<= 1;
    --Attempt;
  }
  return D;
}

} // namespace backoff
} // namespace crellvm

#endif // CRELLVM_SUPPORT_BACKOFF_H
