//===- support/ThreadPool.cpp -----------------------------------*- C++ -*-===//

#include "support/ThreadPool.h"

#include "support/FaultInjection.h"

using namespace crellvm;

unsigned ThreadPool::defaultConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = defaultConcurrency();
  Queues.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> L(SignalM);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  // Chaos site: a refused enqueue degrades to caller-runs. The task still
  // executes exactly once (on this thread, before submit returns), so
  // every latch and counter the task itself maintains stays correct —
  // the degradation costs parallelism, never work.
  if (fault::shouldFail("pool.submit")) {
    Task();
    return;
  }
  Pending.fetch_add(1, std::memory_order_relaxed);
  Queued.fetch_add(1, std::memory_order_relaxed);
  unsigned Target = static_cast<unsigned>(
      NextQueue.fetch_add(1, std::memory_order_relaxed) % Queues.size());
  {
    std::lock_guard<std::mutex> L(Queues[Target]->M);
    Queues[Target]->Q.push_back(std::move(Task));
  }
  // Taking SignalM orders the notify after any worker's about-to-sleep
  // queue recheck, so the wakeup cannot be missed.
  {
    std::lock_guard<std::mutex> L(SignalM);
  }
  WorkCv.notify_one();
}

std::function<void()> ThreadPool::popOwn(unsigned Self) {
  WorkerQueue &WQ = *Queues[Self];
  std::lock_guard<std::mutex> L(WQ.M);
  if (WQ.Q.empty())
    return nullptr;
  std::function<void()> T = std::move(WQ.Q.back());
  WQ.Q.pop_back();
  return T;
}

std::function<void()> ThreadPool::stealFrom(unsigned Self) {
  for (size_t Step = 1; Step != Queues.size(); ++Step) {
    WorkerQueue &WQ = *Queues[(Self + Step) % Queues.size()];
    std::lock_guard<std::mutex> L(WQ.M);
    if (WQ.Q.empty())
      continue;
    std::function<void()> T = std::move(WQ.Q.front());
    WQ.Q.pop_front();
    return T;
  }
  return nullptr;
}

bool ThreadPool::tryRunOne(unsigned Self) {
  std::function<void()> T = popOwn(Self);
  if (!T)
    T = stealFrom(Self);
  if (!T)
    return false;
  Queued.fetch_sub(1, std::memory_order_relaxed);
  Active.fetch_add(1, std::memory_order_relaxed);
  T();
  Active.fetch_sub(1, std::memory_order_relaxed);
  if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> L(SignalM);
    DoneCv.notify_all();
  }
  return true;
}

void ThreadPool::workerLoop(unsigned Self) {
  for (;;) {
    if (tryRunOne(Self))
      continue;
    std::unique_lock<std::mutex> L(SignalM);
    if (ShuttingDown)
      return;
    // Recheck under SignalM: a submit between our failed scan and here
    // holds SignalM before notifying, so either we see the task now or
    // the notify reaches us once we wait.
    bool AnyQueued = false;
    for (const auto &WQ : Queues) {
      std::lock_guard<std::mutex> QL(WQ->M);
      if (!WQ->Q.empty()) {
        AnyQueued = true;
        break;
      }
    }
    if (AnyQueued)
      continue;
    WorkCv.wait(L);
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> L(SignalM);
  DoneCv.wait(L, [this] {
    return Pending.load(std::memory_order_acquire) == 0;
  });
}

void crellvm::parallelFor(ThreadPool &Pool, size_t N,
                          const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  // A private latch rather than Pool.wait(), so concurrent unrelated
  // submitters do not extend this call.
  struct Latch {
    std::mutex M;
    std::condition_variable Cv;
    size_t Remaining = 0;
  } L;
  L.Remaining = N;
  for (size_t I = 0; I != N; ++I)
    Pool.submit([&Fn, &L, I] {
      Fn(I);
      std::lock_guard<std::mutex> G(L.M);
      if (--L.Remaining == 0)
        L.Cv.notify_all();
    });
  std::unique_lock<std::mutex> G(L.M);
  L.Cv.wait(G, [&L] { return L.Remaining == 0; });
}
