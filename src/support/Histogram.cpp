//===- support/Histogram.cpp ------------------------------------*- C++ -*-===//

#include "support/Histogram.h"

using namespace crellvm;

namespace {

/// Bit-width bucketing: 0 -> 0, [1,1] -> 1, [2,3] -> 2, [2^k, 2^(k+1)-1]
/// -> k+1. Never exceeds NumBuckets-1 (uint64_t has 64 bits).
unsigned bucketOf(uint64_t V) {
  unsigned B = 0;
  while (V) {
    ++B;
    V >>= 1;
  }
  return B < Histogram::NumBuckets ? B : Histogram::NumBuckets - 1;
}

/// Inclusive upper bound of bucket \p B (the largest value mapping to it).
uint64_t bucketUpper(unsigned B) {
  if (B == 0)
    return 0;
  if (B >= 64)
    return ~0ull;
  return (1ull << B) - 1;
}

} // namespace

void Histogram::record(uint64_t Value) {
  Buckets[bucketOf(Value)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Value, std::memory_order_relaxed);
  uint64_t Prev = Max.load(std::memory_order_relaxed);
  while (Prev < Value &&
         !Max.compare_exchange_weak(Prev, Value, std::memory_order_relaxed))
    ;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot S;
  for (unsigned I = 0; I != NumBuckets; ++I)
    S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
  // Derive the count from the bucket snapshot so quantile() cumulative
  // sums can never walk past S.Count even when record() races with us.
  for (uint64_t B : S.Buckets)
    S.Count += B;
  S.Sum = Sum.load(std::memory_order_relaxed);
  S.Max = Max.load(std::memory_order_relaxed);
  return S;
}

uint64_t Histogram::Snapshot::quantile(double Q) const {
  if (Count == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  uint64_t Rank = static_cast<uint64_t>(Q * double(Count) + 0.5);
  if (Rank == 0)
    Rank = 1;
  uint64_t Seen = 0;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank)
      return bucketUpper(I);
  }
  return bucketUpper(NumBuckets - 1);
}
