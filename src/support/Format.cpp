//===- support/Format.cpp -------------------------------------*- C++ -*-===//

#include "support/Format.h"

#include <cstdio>

using namespace crellvm;

std::string crellvm::formatCountK(uint64_t N) {
  if (N < 1000)
    return std::to_string(N);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2fK", static_cast<double>(N) / 1000.0);
  return Buf;
}

std::string crellvm::formatSeconds(double Seconds) {
  char Buf[32];
  if (Seconds > 0 && Seconds < 0.01)
    return "<0.01";
  if (Seconds >= 1000.0) {
    std::snprintf(Buf, sizeof(Buf), "%.2fK", Seconds / 1000.0);
    return Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%.2f", Seconds);
  return Buf;
}

std::string crellvm::formatPercent(double Ratio) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", Ratio * 100.0);
  return Buf;
}

std::string crellvm::join(const std::vector<std::string> &Parts,
                          const std::string &Sep) {
  std::string Result;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string crellvm::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string crellvm::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}
