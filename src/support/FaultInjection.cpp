//===- support/FaultInjection.cpp -------------------------------*- C++ -*-===//

#include "support/FaultInjection.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

using namespace crellvm;
using namespace crellvm::fault;

std::atomic<bool> fault::detail::Armed{false};

namespace {

/// Every site the codebase probes. configure() rejects anything else, so
/// a typo in a schedule is a hard error instead of a silently-idle site.
constexpr const char *KnownSites[] = {
    "disk.read",  "disk.write",  "disk.short", "disk.rename", "disk.corrupt",
    "sock.read",  "sock.write",  "sock.short", "sock.eintr",
    "pool.submit", "queue.admit", "unit.run",   "unit.hang",  "plan.apply",
    "sup.spawn",
};
constexpr size_t NumSites = sizeof(KnownSites) / sizeof(KnownSites[0]);

int siteIndex(const char *Name) {
  for (size_t I = 0; I != NumSites; ++I)
    if (std::strcmp(Name, KnownSites[I]) == 0)
      return static_cast<int>(I);
  return -1;
}

/// One site's schedule and accounting. All fields are atomics so the
/// armed probe path is lock-free: probes on a chaos run pay one strcmp
/// scan plus a handful of relaxed atomic ops, never a mutex — the
/// armed-but-idle configuration must stay within 5% of disarmed
/// (bench/chaos_overhead), and a mutex shared by every I/O boundary of
/// every worker thread does not.
struct SiteState {
  std::atomic<bool> Scheduled{false};
  std::atomic<uint64_t> Every{0}; ///< fire on hits Every, 2*Every, ...
  std::atomic<uint64_t> After{0}; ///< fire on every hit > After
  std::atomic<uint64_t> At{0};    ///< fire on exactly hit At
  std::atomic<uint64_t> Ppm{0};   ///< fire with probability Ppm/1e6
  std::atomic<uint64_t> ArgMs{0}; ///< site argument (unit.hang stall)
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Injected{0};
};

SiteState GSites[NumSites];
std::atomic<uint64_t> GSeed{0};

/// Guards configure()/disarm()/activeSpec() and GSpec only; probes never
/// take it.
std::mutex ConfigM;
std::string GSpec;

uint64_t fnv1a(const char *S) {
  uint64_t H = 1469598103934665603ull;
  for (; *S; ++S) {
    H ^= static_cast<unsigned char>(*S);
    H *= 1099511628211ull;
  }
  return H;
}

uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

bool parseUint(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

void splitOn(const std::string &S, const char *Seps,
             std::vector<std::string> &Out) {
  std::string Cur;
  for (char C : S) {
    bool IsSep = false;
    for (const char *P = Seps; *P; ++P)
      if (C == *P)
        IsSep = true;
    if (IsSep) {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else if (C != ' ' && C != '\t') {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
}

/// The parsed form configure() builds before touching the live registry,
/// so a parse error leaves the previous schedule fully intact.
struct ParsedSite {
  uint64_t Every = 0, After = 0, At = 0, Ppm = 0, ArgMs = 0;
};

} // namespace

bool fault::detail::probeSlow(const char *SiteName, uint64_t *ArgOut) {
  int Idx = siteIndex(SiteName);
  if (Idx < 0)
    return false;
  SiteState &S = GSites[Idx];
  if (!S.Scheduled.load(std::memory_order_relaxed))
    return false;
  uint64_t Hit = S.Hits.fetch_add(1, std::memory_order_relaxed) + 1;
  bool Fire = false;
  uint64_t Every = S.Every.load(std::memory_order_relaxed);
  if (Every && Hit % Every == 0)
    Fire = true;
  uint64_t After = S.After.load(std::memory_order_relaxed);
  if (After && Hit > After)
    Fire = true;
  uint64_t At = S.At.load(std::memory_order_relaxed);
  if (At && Hit == At)
    Fire = true;
  uint64_t Ppm = S.Ppm.load(std::memory_order_relaxed);
  if (Ppm && mix(GSeed.load(std::memory_order_relaxed) ^ fnv1a(SiteName) ^
                 (Hit * 0x2545f4914f6cdd1dull)) %
                     1000000ull <
                 Ppm)
    Fire = true;
  if (Fire) {
    S.Injected.fetch_add(1, std::memory_order_relaxed);
    if (ArgOut)
      *ArgOut = S.ArgMs.load(std::memory_order_relaxed);
  }
  return Fire;
}

bool fault::configure(const std::string &Spec, std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };

  uint64_t Seed = 0;
  std::map<int, ParsedSite> Parsed;
  std::vector<std::string> Clauses;
  splitOn(Spec, ",;", Clauses);
  for (const std::string &Clause : Clauses) {
    std::vector<std::string> Parts;
    splitOn(Clause, ":", Parts);
    if (Parts.empty())
      continue;
    // The global seed clause: "seed=S".
    if (Parts.size() == 1 && Parts[0].rfind("seed=", 0) == 0) {
      if (!parseUint(Parts[0].substr(5), Seed))
        return Fail("bad seed in chaos clause '" + Clause + "'");
      continue;
    }
    const std::string &Name = Parts[0];
    if (Name.find('=') != std::string::npos)
      return Fail("chaos clause '" + Clause +
                  "' has a parameter where a site name belongs");
    int Idx = siteIndex(Name.c_str());
    if (Idx < 0)
      return Fail("unknown chaos site '" + Name + "'");
    if (Parts.size() < 2)
      return Fail("chaos site '" + Name + "' has no schedule");
    ParsedSite &S = Parsed[Idx]; // one clause per site; last wins
    S = ParsedSite{};
    for (size_t I = 1; I != Parts.size(); ++I) {
      size_t Eq = Parts[I].find('=');
      if (Eq == std::string::npos)
        return Fail("bad chaos parameter '" + Parts[I] + "' for site '" +
                    Name + "'");
      std::string Key = Parts[I].substr(0, Eq);
      uint64_t Val = 0;
      if (!parseUint(Parts[I].substr(Eq + 1), Val))
        return Fail("bad chaos value in '" + Parts[I] + "' for site '" +
                    Name + "'");
      if (Key == "every") {
        if (Val == 0)
          return Fail("chaos 'every' must be >= 1 for site '" + Name + "'");
        S.Every = Val;
      } else if (Key == "after")
        S.After = Val;
      else if (Key == "at")
        S.At = Val;
      else if (Key == "ppm") {
        if (Val > 1000000)
          return Fail("chaos 'ppm' must be <= 1000000 for site '" + Name +
                      "'");
        S.Ppm = Val;
      } else if (Key == "ms")
        S.ArgMs = Val;
      else
        return Fail("unknown chaos parameter '" + Key + "' for site '" +
                    Name + "'");
    }
    if (!S.Every && !S.After && !S.At && !S.Ppm)
      return Fail("chaos site '" + Name +
                  "' has an argument but no firing schedule");
  }

  std::lock_guard<std::mutex> L(ConfigM);
  // Disarm first so probes racing with reconfiguration see either the old
  // schedule or nothing, never a half-written one.
  detail::Armed.store(false, std::memory_order_relaxed);
  GSeed.store(Seed, std::memory_order_relaxed);
  for (size_t I = 0; I != NumSites; ++I) {
    SiteState &S = GSites[I];
    auto It = Parsed.find(static_cast<int>(I));
    const ParsedSite P = It == Parsed.end() ? ParsedSite{} : It->second;
    S.Scheduled.store(It != Parsed.end(), std::memory_order_relaxed);
    S.Every.store(P.Every, std::memory_order_relaxed);
    S.After.store(P.After, std::memory_order_relaxed);
    S.At.store(P.At, std::memory_order_relaxed);
    S.Ppm.store(P.Ppm, std::memory_order_relaxed);
    S.ArgMs.store(P.ArgMs, std::memory_order_relaxed);
    S.Hits.store(0, std::memory_order_relaxed);
    S.Injected.store(0, std::memory_order_relaxed);
  }
  GSpec = Spec;
  detail::Armed.store(!Parsed.empty(), std::memory_order_release);
  return true;
}

bool fault::configureFromEnv(std::string *Err) {
  const char *Spec = std::getenv("CRELLVM_CHAOS");
  if (!Spec || !*Spec)
    return true;
  return configure(Spec, Err);
}

void fault::disarm() {
  std::lock_guard<std::mutex> L(ConfigM);
  detail::Armed.store(false, std::memory_order_relaxed);
  for (SiteState &S : GSites) {
    S.Scheduled.store(false, std::memory_order_relaxed);
    S.Hits.store(0, std::memory_order_relaxed);
    S.Injected.store(0, std::memory_order_relaxed);
  }
  GSpec.clear();
}

std::string fault::activeSpec() {
  std::lock_guard<std::mutex> L(ConfigM);
  return GSpec;
}

std::map<std::string, SiteCounters> fault::counters() {
  std::map<std::string, SiteCounters> Out;
  for (size_t I = 0; I != NumSites; ++I) {
    const SiteState &S = GSites[I];
    if (S.Scheduled.load(std::memory_order_relaxed))
      Out[KnownSites[I]] = {S.Hits.load(std::memory_order_relaxed),
                            S.Injected.load(std::memory_order_relaxed)};
  }
  return Out;
}

uint64_t fault::totalInjected() {
  uint64_t N = 0;
  for (const SiteState &S : GSites)
    if (S.Scheduled.load(std::memory_order_relaxed))
      N += S.Injected.load(std::memory_order_relaxed);
  return N;
}
