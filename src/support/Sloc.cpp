//===- support/Sloc.cpp ----------------------------------------*- C++ -*-===//

#include "support/Sloc.h"

#include <fstream>
#include <sstream>

using namespace crellvm;

static bool isBlankOrComment(const std::string &Line) {
  size_t I = Line.find_first_not_of(" \t\r");
  if (I == std::string::npos)
    return true;
  // Line comments only; the code base uses no block comments mid-code.
  return Line.compare(I, 2, "//") == 0;
}

/// Hint-API tokens: a line mentioning one of these builds proof
/// hints even outside a marked region (the hint calls are interleaved
/// with the compiler logic, as in the paper's Algorithms 1-3 boxes).
static bool isProofGenLine(const std::string &Line) {
  static const char *Tokens[] = {
      "B.assn",          "B.inf(",          "enableAuto",
      "maydiffGlobal",   "maydiffBetween",  "markNotSupported",
      "InfruleKind::",   "freshGhost",      "ValT::ghost",
      "recordPremises",  "Pred::lessdef",   "mkRule",
      "PPoint::",        "Side::Src",       "Side::Tgt",
      "insertTgtPhi",    "GhostX",          "Ghost",
  };
  for (const char *T : Tokens)
    if (Line.find(T) != std::string::npos)
      return true;
  return false;
}

SlocCounts crellvm::countSloc(const std::string &Text) {
  SlocCounts Counts;
  std::istringstream In(Text);
  std::string Line;
  bool InProofGen = false;
  while (std::getline(In, Line)) {
    if (Line.find("PROOFGEN-BEGIN") != std::string::npos) {
      InProofGen = true;
      continue;
    }
    if (Line.find("PROOFGEN-END") != std::string::npos) {
      InProofGen = false;
      continue;
    }
    if (isBlankOrComment(Line))
      continue;
    if (InProofGen || isProofGenLine(Line))
      ++Counts.ProofGen;
    else
      ++Counts.Compiler;
  }
  return Counts;
}

SlocCounts crellvm::countSlocFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return SlocCounts();
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return countSloc(Buf.str());
}
