//===- bench/PlanSpecialization.cpp - specialized vs general checker ------===//
//
// The per-preset checker-plan pipeline (DESIGN.md §17) exists to cut
// assertion-strengthening work off the steady-state validation path: a
// service that has been validating one preset for a while should check
// like a JIT runs hot code. This bench measures exactly that claim on
// the checker boundary, with warm plans (the cache amortizes building):
//
//   general       checker::validate            — the baseline every
//                                                verdict is defined by;
//   specialized   checker::validateWithPlan    — guarded dispatch with
//                                                the preset's warm plan.
//
// Both sweeps run over the same (src, tgt, proof) units, collected by
// walking seeded modules through the full -O2 pipeline, so each pass is
// measured at its production pipeline position. Verdict identity is
// asserted during the timed sweeps — a divergence exits 2 immediately,
// the same zero-tolerance the shadow gate enforces in production.
//
// Reports throughput in checked functions per *CPU* second, best-of-5
// alternating runs — the sweeps are single-threaded and the gate is a
// ratio, so thread CPU time keeps a busy host from charging its noise
// to whichever sweep was unlucky. Appended to BENCH_validation.json as
// `plan_specialization`; the exit code gates warm specialized
// same-preset throughput at >= 1.3x the general checker, so a
// regression that erases the plan pipeline's reason to exist fails CI
// the way wire_codec does.
//
//   plan_specialization [scale]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "bench/Common.h"
#include "checker/Validator.h"
#include "passes/Pipeline.h"
#include "plan/PlanManager.h"
#include "workload/RandomProgram.h"

#include <chrono>
#include <ctime>
#include <iostream>
#include <map>

using namespace crellvm;
using namespace crellvm::bench;

namespace {

using Clock = std::chrono::steady_clock;

/// Thread CPU seconds. The sweeps are single-threaded and the gate is a
/// throughput *ratio*, so CPU time is the honest clock: wall time on a
/// shared core folds whatever else the host runs into whichever sweep
/// was unlucky, while CPU time charges each checker only for its own
/// work.
double cpuSeconds() {
  timespec TS;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &TS);
  return TS.tv_sec + TS.tv_nsec * 1e-9;
}

/// One checker invocation's worth of work, pinned so the sweeps time
/// checking only — no generation, pass, or proof-gen cost in the loop.
struct Unit {
  std::string Pass;
  ir::Module Src;
  ir::Module Tgt;
  proofgen::Proof Proof;
};

std::vector<Unit> buildUnits(unsigned Modules) {
  std::vector<Unit> Units;
  for (unsigned I = 0; I != Modules; ++I) {
    workload::GenOptions G;
    G.Seed = 4200 + I;
    ir::Module Cur = workload::generateModule(G);
    for (const auto &P : passes::makeO2Pipeline(passes::BugConfig::fixed())) {
      passes::PassResult PR = P->run(Cur, /*GenProof=*/true);
      Unit U;
      U.Pass = P->name();
      U.Src = std::move(Cur);
      U.Tgt = PR.Tgt;
      U.Proof = std::move(PR.Proof);
      Cur = std::move(PR.Tgt);
      Units.push_back(std::move(U));
    }
  }
  return Units;
}

struct SweepResult {
  double WallS = 0;
  uint64_t Functions = 0;
  uint64_t Fallbacks = 0; ///< specialized sweep only
  double Fps = 0;         ///< checked functions per second
};

SweepResult sweepGeneral(const std::vector<Unit> &Units, unsigned Rounds) {
  SweepResult R;
  const double T0 = cpuSeconds();
  for (unsigned Round = 0; Round != Rounds; ++Round)
    for (const Unit &U : Units)
      R.Functions += checker::validate(U.Src, U.Tgt, U.Proof).Functions.size();
  R.WallS = cpuSeconds() - T0;
  R.Fps = R.WallS > 0 ? R.Functions / R.WallS : 0;
  return R;
}

SweepResult
sweepSpecialized(const std::vector<Unit> &Units, unsigned Rounds,
                 const std::map<std::string,
                                std::shared_ptr<const plan::CheckerPlan>>
                     &Plans,
                 const std::map<const Unit *, std::string> &Expected) {
  SweepResult R;
  const double T0 = cpuSeconds();
  for (unsigned Round = 0; Round != Rounds; ++Round)
    for (const Unit &U : Units) {
      checker::PlanRunStats PS;
      checker::ModuleResult MR = checker::validateWithPlan(
          U.Src, U.Tgt, U.Proof, Plans.at(U.Pass)->Spec, &PS);
      R.Functions += MR.Functions.size();
      R.Fallbacks += PS.Fallbacks;
      // The zero-tolerance identity gate, enforced inside the timed loop
      // (the comparison is noise next to a validation).
      if (Round == 0) {
        std::string Got;
        for (const auto &KV : MR.Functions)
          Got += KV.first + "=" +
                 std::to_string(static_cast<int>(KV.second.Status)) + ";";
        if (Got != Expected.at(&U)) {
          std::cerr << "plan_specialization: specialized verdicts diverged "
                       "from the general checker on pass "
                    << U.Pass << "\n";
          std::exit(2);
        }
      }
    }
  R.WallS = cpuSeconds() - T0;
  R.Fps = R.WallS > 0 ? R.Functions / R.WallS : 0;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Scale = scaleFromArgs(Argc, Argv);
  if (Scale == 0)
    Scale = 1;
  const unsigned Modules = std::max(16u / Scale, 4u);
  const unsigned Rounds = std::max(6u / Scale, 2u);

  std::vector<Unit> Units = buildUnits(Modules);

  // Warm the plans through the real runtime — build cost is reported but
  // deliberately outside the sweeps; the plan cache pays it once per
  // (pass, preset, versions) key for the life of an artifact directory.
  plan::PlanManagerOptions PO;
  PO.Mode = plan::PlanMode::On;
  PO.Build.FeedstockModules = 48;
  plan::PlanManager Manager(PO);
  std::map<std::string, std::shared_ptr<const plan::CheckerPlan>> Plans;
  const auto B0 = Clock::now();
  for (const Unit &U : Units)
    if (!Plans.count(U.Pass))
      Plans[U.Pass] =
          Manager.getOrBuild(U.Pass, passes::BugConfig::fixed(), nullptr);
  const double BuildS =
      std::chrono::duration<double>(Clock::now() - B0).count();

  // Reference verdicts for the identity gate, computed once, untimed.
  std::map<const Unit *, std::string> Expected;
  for (const Unit &U : Units) {
    checker::ModuleResult MR = checker::validate(U.Src, U.Tgt, U.Proof);
    std::string S;
    for (const auto &KV : MR.Functions)
      S += KV.first + "=" +
           std::to_string(static_cast<int>(KV.second.Status)) + ";";
    Expected[&U] = S;
  }

  std::cout << "=== Plan specialization: warm specialized vs general "
               "checker (same preset) ===\n"
            << Units.size() << " pipeline units x " << Rounds
            << " rounds, best of 5 alternating runs; " << Plans.size()
            << " plans built in " << formatSeconds(BuildS) << "\n\n";

  // Best-of-5 with general/specialized alternating per iteration: on a
  // busy single-core host a noise spike tends to hit one sweep, not the
  // same sweep five times, so the minima converge to clean windows.
  SweepResult General, Specialized;
  double GenWall = 1e300, SpecWall = 1e300;
  for (int Iter = 0; Iter != 5; ++Iter) {
    SweepResult R = sweepGeneral(Units, Rounds);
    if (R.WallS < GenWall) {
      GenWall = R.WallS;
      General = R;
    }
    R = sweepSpecialized(Units, Rounds, Plans, Expected);
    if (R.WallS < SpecWall) {
      SpecWall = R.WallS;
      Specialized = R;
    }
  }

  Table T({"checker", "functions/s", "cpu", "fallbacks"});
  T.addRow({"general", std::to_string(static_cast<uint64_t>(General.Fps)),
            formatSeconds(General.WallS), "-"});
  T.addRow({"specialized",
            std::to_string(static_cast<uint64_t>(Specialized.Fps)),
            formatSeconds(Specialized.WallS),
            std::to_string(Specialized.Fallbacks)});
  T.print(std::cout);

  double Speedup = General.Fps > 0 ? Specialized.Fps / General.Fps : 0;
  std::cout << "\nspecialized vs general: " << formatPercent(Speedup - 1.0)
            << " faster, " << Specialized.Fallbacks << "/"
            << Specialized.Functions
            << " guard fallbacks (gate: >= 1.3x functions/s)\n";
  std::cout << "paper-shape: specialized-speedup-at-least-1.3x="
            << (Speedup >= 1.3 ? "OK" : "MISMATCH") << "\n";

  BenchEntry E;
  E.Name = "plan_specialization";
  E.WallSeconds = General.WallS + Specialized.WallS;
  E.Jobs = 1;
  E.Extra.emplace_back("general_fps",
                       static_cast<int64_t>(General.Fps + 0.5));
  E.Extra.emplace_back("specialized_fps",
                       static_cast<int64_t>(Specialized.Fps + 0.5));
  E.Extra.emplace_back("specialized_speedup_ppm",
                       static_cast<int64_t>(Speedup * 1e6 + 0.5));
  E.Extra.emplace_back("plan_build_us",
                       static_cast<int64_t>(BuildS * 1e6 + 0.5));
  E.Extra.emplace_back("guard_fallback_functions",
                       static_cast<int64_t>(Specialized.Fallbacks));
  E.Extra.emplace_back("checked_functions",
                       static_cast<int64_t>(Specialized.Functions));
  writeBenchJson({E});

  return Speedup >= 1.3 ? 0 : 1;
}
