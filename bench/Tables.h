//===- bench/Tables.h - Paper-table printers ---------------------*- C++ -*-===//
///
/// \file
/// Renders corpus results in the layouts of the paper's tables: the
/// summary tables (Figs. 6, 9, 12), the per-benchmark validation tables
/// (Figs. 7, 10, 13) and the per-benchmark time tables (Figs. 8, 11, 14).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_BENCH_TABLES_H
#define CRELLVM_BENCH_TABLES_H

#include "bench/Common.h"

namespace crellvm {
namespace bench {

/// Figs. 6/9/12: one row per pass with #V/#F/#NS and the four timers.
inline void printSummaryTable(std::ostream &OS, const CorpusResult &R,
                              const std::vector<std::string> &Passes) {
  driver::StatsMap Totals = R.totals();
  Table T({"", "#V", "#F", "#NS", "Orig", "PCal", "I/O", "PCheck"});
  for (const std::string &P : Passes) {
    const driver::PassStats &S = Totals[P];
    T.addRow({P, formatCountK(S.V), formatCountK(S.F), formatCountK(S.NS),
              formatSeconds(S.Orig), formatSeconds(S.PCal),
              formatSeconds(S.IO), formatSeconds(S.PCheck)});
  }
  T.print(OS);
}

/// Figs. 7/10/13: one row per benchmark, per-pass #V/#F/#NS columns.
inline void printResultsTable(std::ostream &OS, const CorpusResult &R,
                              const std::vector<std::string> &Passes) {
  std::vector<std::string> Header{"", "LOC"};
  for (const std::string &P : Passes) {
    Header.push_back(P + " #V");
    Header.push_back("#F");
    Header.push_back("#NS");
  }
  Table T(Header);
  driver::StatsMap Totals;
  for (const ProjectResult &PR : R.Projects) {
    std::vector<std::string> Row{
        PR.Project.Name,
        formatCountK(PR.Project.PaperKLoc * 100) /* paper LOC */};
    for (const std::string &P : Passes) {
      auto It = PR.Stats.find(P);
      driver::PassStats S =
          It == PR.Stats.end() ? driver::PassStats() : It->second;
      Row.push_back(formatCountK(S.V));
      Row.push_back(formatCountK(S.F));
      Row.push_back(formatCountK(S.NS));
      Totals[P].add(S);
    }
    T.addRow(std::move(Row));
  }
  T.addSeparator();
  std::vector<std::string> TotalRow{"Total", ""};
  for (const std::string &P : Passes) {
    TotalRow.push_back(formatCountK(Totals[P].V));
    TotalRow.push_back(formatCountK(Totals[P].F));
    TotalRow.push_back(formatCountK(Totals[P].NS));
  }
  T.addRow(std::move(TotalRow));
  T.print(OS);
}

/// Figs. 8/11/14: one row per benchmark, per-pass Orig/PCal/I-O/PCheck.
inline void printTimeTable(std::ostream &OS, const CorpusResult &R,
                           const std::vector<std::string> &Passes) {
  std::vector<std::string> Header{""};
  for (const std::string &P : Passes) {
    Header.push_back(P + " Orig");
    Header.push_back("PCal");
    Header.push_back("I/O");
    Header.push_back("PCheck");
  }
  Table T(Header);
  driver::StatsMap Totals;
  for (const ProjectResult &PR : R.Projects) {
    std::vector<std::string> Row{PR.Project.Name};
    for (const std::string &P : Passes) {
      auto It = PR.Stats.find(P);
      driver::PassStats S =
          It == PR.Stats.end() ? driver::PassStats() : It->second;
      Row.push_back(formatSeconds(S.Orig));
      Row.push_back(formatSeconds(S.PCal));
      Row.push_back(formatSeconds(S.IO));
      Row.push_back(formatSeconds(S.PCheck));
      Totals[P].add(S);
    }
    T.addRow(std::move(Row));
  }
  T.addSeparator();
  std::vector<std::string> TotalRow{"Total"};
  for (const std::string &P : Passes) {
    TotalRow.push_back(formatSeconds(Totals[P].Orig));
    TotalRow.push_back(formatSeconds(Totals[P].PCal));
    TotalRow.push_back(formatSeconds(Totals[P].IO));
    TotalRow.push_back(formatSeconds(Totals[P].PCheck));
  }
  T.addRow(std::move(TotalRow));
  T.print(OS);
}

/// Checks and reports the qualitative claims the paper's tables make.
inline void printShapeLine(std::ostream &OS, const CorpusResult &R,
                           const std::vector<std::string> &Passes,
                           uint64_t ExpectMem2RegF, uint64_t ExpectGvnF,
                           bool ExpectGvnFailures) {
  driver::StatsMap T = R.totals();
  bool CleanPasses = T["licm"].F == 0 && T["instcombine"].F == 0;
  bool Mem2RegShape =
      ExpectMem2RegF ? T["mem2reg"].F > 0 : T["mem2reg"].F == 0;
  bool GvnShape = ExpectGvnFailures ? T["gvn"].F > 0 : T["gvn"].F == 0;
  double TotalCheck = 0, TotalOrig = 0, TotalIO = 0;
  for (const std::string &P : Passes) {
    TotalCheck += T[P].PCheck;
    TotalOrig += T[P].Orig;
    TotalIO += T[P].IO;
  }
  uint64_t Diff = 0;
  for (const std::string &P : Passes)
    Diff += T[P].DiffMismatches;
  (void)ExpectGvnF;
  OS << "paper-shape: failures-only-in-buggy-passes="
     << (CleanPasses && Mem2RegShape && GvnShape ? "OK" : "MISMATCH")
     << ", pcheck>orig=" << (TotalCheck > TotalOrig ? "OK" : "MISMATCH")
     << ", io-dominates=" << (TotalIO > TotalCheck * 0.5 ? "OK" : "MISMATCH")
     << ", llvm-diff-agreement=" << (Diff == 0 ? "OK" : "MISMATCH") << "\n";
}

} // namespace bench
} // namespace crellvm

#endif // CRELLVM_BENCH_TABLES_H
