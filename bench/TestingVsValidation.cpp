//===- bench/TestingVsValidation.cpp - paper §1.2 / Appendix B ---------------===//
//
// The paper's core argument: CRELLVM checks *reasoning*, testing checks
// *results*. For each of the historical bugs, this bench runs both
// detectors against the trigger program:
//
//  - differential testing: interpret source and optimized program on many
//    inputs/environments and check trace refinement;
//  - validation: check the generated proof.
//
// Expected outcome (paper §1.2): testing misses PR24179 (the undef is
// never observed), misses PR28562 (the index is in bounds at run time),
// misses PR33673 only when the trapping path never executes — while
// validation flags PR24179 and PR28562 immediately, and PR33673 is caught
// by rule verification instead (the validation accepts, as in the paper).
//
//===----------------------------------------------------------------------===//

#include "checker/Validator.h"
#include "erhl/RuleTester.h"
#include "interp/Interp.h"
#include "ir/Parser.h"
#include "passes/Pipeline.h"
#include "support/Table.h"

#include <iostream>

using namespace crellvm;

namespace {

struct Scenario {
  const char *Name;
  const char *Pass;
  const char *Func;
  const char *Text;
};

const Scenario Scenarios[] = {
    {"PR24179 hidden (mem2reg)", "mem2reg", "hidden", R"(
declare i1 @cond()
declare i32 @get()
define void @hidden() {
entry:
  %p = alloca i32, 1
  br label %loop
loop:
  %v = load i32, ptr %p
  store i32 %v, ptr @G
  %x = call i32 @get()
  store i32 %x, ptr %p
  %c = call i1 @cond()
  br i1 %c, label %loop, label %done
done:
  ret void
}
@G = global i32, 1
)"},
    {"PR24179 visible (mem2reg)", "mem2reg", "visible", R"(
declare i1 @cond()
declare i32 @get()
declare void @sink(i32)
define void @visible() {
entry:
  %p = alloca i32, 1
  br label %loop
loop:
  %v = load i32, ptr %p
  call void @sink(i32 %v)
  %x = call i32 @get()
  store i32 %x, ptr %p
  %c = call i1 @cond()
  br i1 %c, label %loop, label %done
done:
  ret void
}
)"},
    {"PR28562 gep inbounds (gvn)", "gvn", "gb", R"(
declare void @bar(ptr, ptr)
define void @gb(ptr %p) {
entry:
  %q1 = gep inbounds ptr %p, i64 2
  %q2 = gep ptr %p, i64 2
  call void @bar(ptr %q1, ptr %q2)
  ret void
}
)"},
    // Paper §1: "suppose that the function foo(r) ignores r and
    // repeatedly prints out 0 without returning to the caller" — the
    // division in the source is then dead, and only the target traps.
    {"PR33673 constexpr (mem2reg)", "mem2reg", "ce", R"(
declare void @print(i32)
define void @foo(i32 %r) {
entry:
  br label %loop
loop:
  call void @print(i32 0)
  br label %loop
}
define void @ce() {
entry:
  %p = alloca i32, 1
  %r = load i32, ptr %p
  call void @foo(i32 %r)
  store i32 sdiv (i32 1, i32 sub (i32 ptrtoint (ptr @G), i32 ptrtoint (ptr @G))), ptr %p
  ret void
}
@G = global i32, 1
)"},
    {"D38619 PRE insertion (gvn)", "gvn", "pi", R"(
declare void @sink(i32)
define i32 @pi(i32 %n, i32 %d, i1 %c) {
entry:
  br i1 %c, label %left, label %right
left:
  %y1 = sdiv i32 %n, %d
  call void @sink(i32 %y1)
  br label %exit
right:
  br label %exit
exit:
  %y3 = sdiv i32 %n, %d
  call void @sink(i32 %y3)
  ret i32 %y3
}
)"},
};

bool differentialTestingFindsBug(const ir::Module &Src,
                                 const ir::Module &Tgt,
                                 const std::string &Fn) {
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    for (int64_t A : {0, 2, 5}) {
      interp::InterpOptions Opts;
      Opts.OracleSeed = Seed;
      auto RS = interp::run(Src, Fn, {A, A + 1, A % 2}, Opts);
      auto RT = interp::run(Tgt, Fn, {A, A + 1, A % 2}, Opts);
      if (!interp::refines(RS, RT))
        return true;
    }
  }
  return false;
}

} // namespace

int main() {
  std::cout << "=== Testing vs. validation (paper §1.2, Appendix B) ===\n"
            << "bug configuration: " << passes::BugConfig::llvm371().str()
            << "\n\n";
  Table T({"scenario", "testing (150 runs)", "validation"});
  bool HiddenMissedByTesting = false, HiddenCaughtByValidation = false;
  bool CeAccepted = false, CeMissedByTesting = false;
  for (const Scenario &S : Scenarios) {
    std::string Err;
    auto Src = ir::parseModule(S.Text, &Err);
    if (!Src) {
      std::cerr << "internal error: " << Err << "\n";
      return 1;
    }
    auto Pass = passes::makePass(S.Pass, passes::BugConfig::llvm371());
    auto PR = Pass->run(*Src, true);
    auto VR = checker::validate(*Src, PR.Tgt, PR.Proof);
    bool Tested = differentialTestingFindsBug(*Src, PR.Tgt, S.Func);
    bool Validated = VR.countFailed() > 0;
    T.addRow({S.Name, Tested ? "FOUND" : "missed",
              Validated ? "FAILED (bug found)" : "accepted"});
    if (std::string(S.Name).find("hidden") != std::string::npos) {
      HiddenMissedByTesting = !Tested;
      HiddenCaughtByValidation = Validated;
    }
    if (std::string(S.Name).find("PR33673") != std::string::npos) {
      CeAccepted = !Validated;
      CeMissedByTesting = !Tested;
    }
  }
  T.print(std::cout);

  // PR33673 is the rule-verification catch (paper §1).
  auto Verdict =
      erhl::verifyRule(erhl::InfruleKind::ConstexprNoUb, 0x5eed, 500);
  std::cout << "\nrule verification of constexpr_no_ub: "
            << (Verdict.Violations ? "REFUTED" : "accepted") << " ("
            << Verdict.Violations << " violations across "
            << Verdict.Applied << " applications)\n";
  if (Verdict.Violations)
    std::cout << "counterexample: " << Verdict.FirstCounterexample << "\n";

  std::cout << "\npaper-shape: hidden-bug-missed-by-testing="
            << (HiddenMissedByTesting ? "OK" : "MISMATCH")
            << ", hidden-bug-caught-by-validation="
            << (HiddenCaughtByValidation ? "OK" : "MISMATCH")
            << ", constexpr-bug-invisible-to-validation="
            << (CeAccepted ? "OK" : "MISMATCH")
            << ", constexpr-bug-missed-by-testing="
            << (CeMissedByTesting ? "OK" : "MISMATCH")
            << ", constexpr-rule-refuted="
            << (Verdict.Violations ? "OK" : "MISMATCH") << "\n";
  return 0;
}
