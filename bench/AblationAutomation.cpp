//===- bench/AblationAutomation.cpp - paper §6 "Experience" ------------------===//
//
// The paper reports that automation functions (the auto-style rule search)
// let the authors halve the proof-generation code and speed it up, because
// transitivity chains are much easier to find at validation time than at
// generation time (§2.3). This ablation quantifies the design choice in
// this reproduction: the same proofs are checked (a) with the enabled
// automation functions and (b) with automation stripped, reporting how
// many validations only succeed thanks to automation, plus the proof size
// and checking-time cost.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "checker/Validator.h"
#include "support/Timer.h"

#include <iostream>

using namespace crellvm;
using namespace crellvm::bench;

int main(int Argc, char **Argv) {
  unsigned Scale = scaleFromArgs(Argc, Argv, 2);
  std::cout << "=== Ablation: automation functions (paper §2.3, §6) ===\n\n";

  uint64_t WithAuto = 0, WithoutAuto = 0, Total = 0, FailedWith = 0;
  uint64_t ProofSize = 0;
  double TimeWith = 0, TimeWithout = 0;
  passes::BugConfig Bugs = passes::BugConfig::fixed();

  for (const workload::Project &P : workload::paperCorpus(Scale)) {
    for (unsigned M = 0; M != P.numModules(); ++M) {
      ir::Module Cur = workload::generateProjectModule(P, M);
      for (auto &Pass : passes::makeO2Pipeline(Bugs)) {
        auto PR = Pass->run(Cur, true);
        ProofSize += PR.Proof.sizeMetric();

        Timer T1;
        auto R1 = T1.time(
            [&] { return checker::validate(Cur, PR.Tgt, PR.Proof); });
        TimeWith += T1.seconds();

        proofgen::Proof Stripped = PR.Proof;
        for (auto &KV : Stripped.Functions)
          KV.second.AutoFuncs.clear();
        Timer T2;
        auto R2 = T2.time(
            [&] { return checker::validate(Cur, PR.Tgt, Stripped); });
        TimeWithout += T2.seconds();

        Total += R1.Functions.size();
        WithAuto += R1.countValidated();
        WithoutAuto += R2.countValidated();
        FailedWith += R1.countFailed();
        Cur = PR.Tgt;
      }
    }
  }

  Table T({"configuration", "validated", "of", "check time (s)"});
  T.addRow({"automation enabled", formatCountK(WithAuto),
            formatCountK(Total), formatSeconds(TimeWith)});
  T.addRow({"automation stripped", formatCountK(WithoutAuto),
            formatCountK(Total), formatSeconds(TimeWithout)});
  T.print(std::cout);

  std::cout << "\ntotal proof size (hints + assertions): "
            << formatCountK(ProofSize) << "\n"
            << "validations relying on automation: "
            << formatCountK(WithAuto - WithoutAuto) << "\n";

  std::cout << "\npaper-shape: automation-carries-proofs="
            << (WithAuto > WithoutAuto ? "OK" : "MISMATCH")
            << " (the paper's generators rely on auto(transitivity) etc.)"
            << ", no-false-positives-with-automation="
            << (FailedWith == 0 ? "OK" : "MISMATCH") << "\n";
  return 0;
}
