//===- bench/MemberRecovery.cpp - supervised-member MTTR gate ---*- C++ -*-===//
//
// Mean-time-to-recovery of the self-healing cluster (DESIGN.md §18): a
// MemberSupervisor fork/execs three crellvm-served members, an
// in-process ClusterRouter routes a closed-loop seeded load through
// them, and one member is SIGKILLed mid-load. The bench measures the
// throughput trajectory in fixed request windows:
//
//   steady     mean window throughput before the kill (warm windows);
//   dip        the slowest window after the kill (failover + the
//              two-member capacity gap);
//   recovery   the first window after the kill that both (a) runs at
//              >= 90% of the steady rate and (b) ends with the killed
//              member respawned, readmitted and back on the ring.
//
// MTTR is the wall time from the SIGKILL to the end of that window, and
// the gates are the ISSUE's acceptance criteria: recovery within a
// bounded MTTR, zero accepted-request loss (every submitted request
// answered exactly once), at least one supervisor restart, and no flap
// quarantine. Results land in BENCH_validation.json as the
// `member_recovery` entry.
//
//   member_recovery [scale] [--jobs N] [--mttr-bound-ms N]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "bench/Tables.h"
#include "cluster/Router.h"
#include "supervise/Supervisor.h"
#include "support/Timer.h"

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace crellvm;
using namespace crellvm::bench;

namespace {

constexpr int NumMembers = 3;

bool waitUntil(const std::function<bool()> &Pred, uint64_t BudgetMs) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(BudgetMs);
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Pred();
}

/// One closed-loop window: \p K pipelined requests, all answered before
/// the window closes. Returns the window's wall seconds.
double runWindow(cluster::ClusterRouter &Router, unsigned K,
                 uint64_t &NextSeed, uint64_t &Answered) {
  std::mutex M;
  std::condition_variable Cv;
  unsigned Done = 0;
  Timer Wall;
  Wall.time([&] {
    for (unsigned I = 0; I != K; ++I) {
      server::Request Req;
      Req.Kind = server::RequestKind::Validate;
      Req.Id = static_cast<int64_t>(NextSeed);
      Req.HasSeed = true;
      Req.Seed = NextSeed++;
      Router.submit(Req, [&](server::Response) {
        std::lock_guard<std::mutex> L(M);
        ++Answered;
        if (++Done == K)
          Cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> L(M);
    Cv.wait(L, [&] { return Done == K; });
  });
  return Wall.seconds();
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Scale = 1, Jobs = 2;
  uint64_t MttrBoundMs = 15000;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      Jobs = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (std::strcmp(Argv[I], "--mttr-bound-ms") == 0 && I + 1 < Argc)
      MttrBoundMs = std::strtoull(Argv[++I], nullptr, 10);
    else
      Scale = static_cast<unsigned>(std::strtoul(Argv[I], nullptr, 10));
  }
  if (Scale == 0)
    Scale = 1;
  const unsigned WindowK = 24 / Scale ? 24 / Scale : 1;
  const unsigned SteadyWindows = 4;
  const unsigned MaxRecoveryWindows = 64;

  std::string Base = "/tmp/crellvm-member-recovery-" +
                     std::to_string(::getpid()) + "-";

  // The supervised fleet, wired exactly like crellvm-cluster --supervise.
  cluster::ClusterRouter *RouterPtr = nullptr;
  supervise::SupervisorOptions SO;
  for (int I = 0; I != NumMembers; ++I) {
    supervise::MemberSpec M;
    M.Id = "s" + std::to_string(I);
    M.SocketPath = Base + M.Id + ".sock";
    ::unlink(M.SocketPath.c_str());
    M.Argv = {CRELLVM_SERVED_BIN, "--socket", M.SocketPath, "--member-id",
              M.Id, "--jobs", std::to_string(Jobs)};
    SO.Members.push_back(std::move(M));
  }
  SO.ProbeIntervalMs = 50;
  SO.ProbeDeadlineMs = 250;
  SO.BackoffBaseMs = 50;
  SO.BackoffCapMs = 500;
  SO.ReadyTimeoutMs = 30000;
  SO.Nudge = [&RouterPtr](const std::string &Id) {
    if (RouterPtr)
      RouterPtr->nudgeReattach(Id);
  };
  SO.RttSink = [&RouterPtr](const std::string &Id, uint64_t RttUs) {
    if (RouterPtr)
      RouterPtr->notePingRtt(Id, RttUs);
  };
  supervise::MemberSupervisor Sup(SO);

  cluster::ClusterOptions CO;
  for (const supervise::MemberSpec &M : SO.Members)
    CO.Members.push_back({M.Id, M.SocketPath});
  CO.RouterId = "bench-recovery";
  CO.AdmissionGate = [&Sup](const std::string &Id) {
    return Sup.admitted(Id);
  };
  cluster::ClusterRouter Router(CO);
  RouterPtr = &Router;

  std::string Err;
  if (!Sup.start(&Err)) {
    std::cerr << "supervisor: " << Err << "\n";
    return 1;
  }
  if (!waitUntil([&] {
        for (const supervise::MemberSpec &M : SO.Members)
          if (!Sup.admitted(M.Id))
            return false;
        return true;
      }, 30000)) {
    std::cerr << "fleet never turned fully ready\n";
    return 1;
  }
  if (!Router.start(&Err)) {
    std::cerr << "router: " << Err << "\n";
    return 1;
  }

  std::cout << "=== Self-healing cluster: member-kill MTTR ===\n"
            << NumMembers << " supervised members x " << Jobs
            << " jobs, closed-loop windows of " << WindowK
            << " requests, SIGKILL one member mid-load\n\n";

  uint64_t NextSeed = 0x5eed0001, Answered = 0, Submitted = 0;
  auto Window = [&] {
    Submitted += WindowK;
    return runWindow(Router, WindowK, NextSeed, Answered);
  };

  // Steady state: one warmup window, then the baseline mean.
  Window();
  double SteadySeconds = 0;
  for (unsigned I = 0; I != SteadyWindows; ++I)
    SteadySeconds += Window();
  double SteadyRps = SteadyWindows * WindowK / SteadySeconds;

  // The kill. The load keeps running closed-loop through the gap.
  pid_t Victim = Sup.pidOf("s1");
  if (Victim <= 0 || ::kill(Victim, SIGKILL) != 0) {
    std::cerr << "cannot kill member s1 (pid " << Victim << ")\n";
    return 1;
  }
  auto KilledAt = std::chrono::steady_clock::now();

  double DipRps = SteadyRps, RecoveredRps = 0;
  int64_t MttrMs = -1, ReadmitMs = -1;
  for (unsigned I = 0; I != MaxRecoveryWindows; ++I) {
    double Sec = Window();
    double Rps = WindowK / Sec;
    if (Rps < DipRps)
      DipRps = Rps;
    bool Readmitted = Sup.pidOf("s1") != Victim && Sup.admitted("s1");
    if (Readmitted && ReadmitMs < 0)
      ReadmitMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - KilledAt)
                      .count();
    if (Readmitted && Rps >= 0.9 * SteadyRps) {
      RecoveredRps = Rps;
      MttrMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::steady_clock::now() - KilledAt)
                   .count();
      break;
    }
  }

  Router.beginShutdown();
  Router.drain();
  cluster::RouterCounters RC = Router.counters();
  supervise::SupervisorCounters SC = Sup.counters();
  Sup.stop();

  Table T({"phase", "req/s"});
  T.addRow({"steady (3 members)", std::to_string(
                static_cast<uint64_t>(SteadyRps + 0.5))});
  T.addRow({"dip (post-kill)", std::to_string(
                static_cast<uint64_t>(DipRps + 0.5))});
  T.addRow({"recovered", std::to_string(
                static_cast<uint64_t>(RecoveredRps + 0.5))});
  T.print(std::cout);

  bool Recovered = MttrMs >= 0 && static_cast<uint64_t>(MttrMs) <= MttrBoundMs;
  bool ZeroLoss = Answered == Submitted && RC.Received == Submitted &&
                  RC.answered() == Submitted;
  bool Restarted = SC.Restarts >= 1 && SC.ProcessDeaths >= 1;
  bool FlapFree = SC.FlapQuarantines == 0;

  std::cout << "\nmttr: " << MttrMs << " ms to >=90% of steady ("
            << "readmit " << ReadmitMs << " ms, bound " << MttrBoundMs
            << " ms); supervisor: spawns=" << SC.Spawns << " restarts="
            << SC.Restarts << " deaths=" << SC.ProcessDeaths
            << " hung_kills=" << SC.HungKills << "\n";
  std::cout << "paper-shape: recovery-within-bound="
            << (Recovered ? "OK" : "MISMATCH")
            << ", zero-loss=" << (ZeroLoss ? "OK" : "MISMATCH")
            << ", restarted=" << (Restarted ? "OK" : "MISMATCH")
            << ", flap-free=" << (FlapFree ? "OK" : "MISMATCH") << "\n";

  auto PPM = [](double X) { return static_cast<int64_t>(X * 1e6 + 0.5); };
  BenchEntry E;
  E.Name = "member_recovery";
  E.WallSeconds = SteadySeconds;
  E.Jobs = Jobs * NumMembers;
  E.Extra = {
      {"members", NumMembers},
      {"window_requests", static_cast<int64_t>(WindowK)},
      {"steady_rps_ppm", PPM(SteadyRps)},
      {"dip_rps_ppm", PPM(DipRps)},
      {"recovered_rps_ppm", PPM(RecoveredRps)},
      {"mttr_ms", MttrMs},
      {"readmit_ms", ReadmitMs},
      {"mttr_bound_ms", static_cast<int64_t>(MttrBoundMs)},
      {"restarts", static_cast<int64_t>(SC.Restarts)},
      {"hung_kills", static_cast<int64_t>(SC.HungKills)},
      {"flap_quarantines", static_cast<int64_t>(SC.FlapQuarantines)},
      {"submitted", static_cast<int64_t>(Submitted)},
      {"answered", static_cast<int64_t>(Answered)},
  };
  writeBenchJson({E});

  return Recovered && ZeroLoss && Restarted && FlapFree ? 0 : 1;
}
