//===- bench/ServiceThroughput.cpp - daemon requests/s ----------*- C++ -*-===//
//
// Throughput of the persistent validation service (DESIGN.md §12): one
// ValidationService with a read-write cache serves the same seeded
// request stream twice through the loopback transport (the full JSON
// codec, minus only socket fds) —
//
//   cold   fresh cache directory: every request validates in full and
//          populates the store;
//   warm   a fresh service process over the same directory, the CI-style
//          re-validation: every lookup hits the warm disk store.
//
// The service's pitch is that keeping one process (pool + cache) warm
// across requests amortizes startup and verdict work, so warm
// requests/s must be at least 3x cold. Results land in
// BENCH_validation.json as the `validation_service` entry with
// cold/warm requests-per-second in ppm (requests/s * 1e6).
//
//   service_throughput [scale] [--jobs N]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "bench/Common.h"
#include "server/Service.h"
#include "support/Timer.h"

#include <cstring>
#include <filesystem>

#include <unistd.h>

using namespace crellvm;
using namespace crellvm::bench;

namespace {

struct RunResult {
  double WallSeconds = 0;
  uint64_t V = 0, F = 0, NS = 0;
  uint64_t CacheHits = 0, CacheMisses = 0;
  uint64_t Requests = 0;

  double rps() const { return WallSeconds > 0 ? Requests / WallSeconds : 0; }
};

/// Pushes \p NumRequests seeded validate requests through one service via
/// the loopback transport, pipelined the way a socket client would (all
/// submitted up front, responses collected as they come).
RunResult runOnce(const cache::ValidationCacheOptions &CacheOpts,
                  unsigned NumRequests, unsigned Jobs) {
  server::ServiceOptions SOpts;
  SOpts.Jobs = Jobs;
  SOpts.QueueMax = NumRequests; // admission is not what this bench measures
  SOpts.Driver.WriteFiles = false;
  SOpts.Cache = CacheOpts;
  server::ValidationService S(SOpts);
  server::LoopbackTransport T(S);

  RunResult R;
  R.Requests = NumRequests;
  std::mutex M;
  std::condition_variable Cv;
  unsigned Done = 0;

  Timer Wall;
  Wall.time([&] {
    for (unsigned I = 0; I != NumRequests; ++I) {
      server::Request Req;
      Req.Kind = server::RequestKind::Validate;
      Req.Id = static_cast<int64_t>(I);
      Req.HasSeed = true;
      Req.Seed = 0x5e51ce + I;
      T.submit(Req, [&](server::Response Rsp) {
        std::lock_guard<std::mutex> L(M);
        R.V += Rsp.totalV();
        R.F += Rsp.totalF();
        R.NS += Rsp.totalNS();
        R.CacheHits += Rsp.CacheHits;
        R.CacheMisses += Rsp.CacheMisses;
        if (++Done == NumRequests)
          Cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> L(M);
    Cv.wait(L, [&] { return Done == NumRequests; });
  });
  R.WallSeconds = Wall.seconds();
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Scale = 1, Jobs = 0;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      Jobs = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else
      Scale = static_cast<unsigned>(std::strtoul(Argv[I], nullptr, 10));
  }
  if (Scale == 0)
    Scale = 1;
  unsigned NumRequests = 400 / Scale;
  if (NumRequests == 0)
    NumRequests = 1;

  std::string Dir = (std::filesystem::temp_directory_path() /
                     ("crellvm-service-bench." + std::to_string(::getpid())))
                        .string();
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);

  cache::ValidationCacheOptions COpts;
  COpts.Policy = cache::CachePolicy::ReadWrite;
  COpts.Dir = Dir;

  std::cout << "=== Validation service: requests/s, cold vs warm cache ===\n"
            << NumRequests << " pipelined requests per run, loopback "
            << "transport, cache=rw, jobs=" << (Jobs ? std::to_string(Jobs)
                                                     : std::string("auto"))
            << "\n\n";

  // Two service lifetimes over one cache directory, like two CI jobs.
  RunResult Cold = runOnce(COpts, NumRequests, Jobs);
  RunResult Warm = runOnce(COpts, NumRequests, Jobs);

  Table T({"run", "wall", "req/s", "#V", "#F", "#NS", "hit rate"});
  for (auto *RP : {&Cold, &Warm}) {
    uint64_t Lookups = RP->CacheHits + RP->CacheMisses;
    T.addRow({RP == &Cold ? "cold" : "warm", formatSeconds(RP->WallSeconds),
              std::to_string(static_cast<uint64_t>(RP->rps() + 0.5)),
              formatCountK(RP->V), formatCountK(RP->F), formatCountK(RP->NS),
              formatPercent(Lookups ? double(RP->CacheHits) / Lookups : 0)});
  }
  T.print(std::cout);

  double Speedup = Cold.rps() > 0 ? Warm.rps() / Cold.rps() : 0;
  bool CountsAgree =
      Cold.V == Warm.V && Cold.F == Warm.F && Cold.NS == Warm.NS;

  std::cout << "\nwarm throughput: "
            << static_cast<uint64_t>(Warm.rps() + 0.5) << " req/s vs "
            << static_cast<uint64_t>(Cold.rps() + 0.5) << " cold = "
            << static_cast<int>(Speedup * 10) / 10.0 << "x\n";
  std::cout << "paper-shape: warm-at-least-3x=" << (Speedup >= 3 ? "OK" : "MISMATCH")
            << ", counts-identical=" << (CountsAgree ? "OK" : "MISMATCH")
            << "\n";

  BenchEntry E;
  E.Name = "validation_service";
  E.WallSeconds = Cold.WallSeconds + Warm.WallSeconds;
  E.Jobs = Jobs ? Jobs : ThreadPool::defaultConcurrency();
  uint64_t Lookups = Warm.CacheHits + Warm.CacheMisses;
  E.CacheHitRate = Lookups ? double(Warm.CacheHits) / Lookups : 0;
  E.V = Cold.V + Warm.V;
  E.F = Cold.F + Warm.F;
  E.NS = Cold.NS + Warm.NS;
  E.Extra = {
      {"cold_rps_ppm", static_cast<int64_t>(Cold.rps() * 1e6 + 0.5)},
      {"warm_rps_ppm", static_cast<int64_t>(Warm.rps() * 1e6 + 0.5)},
      {"warm_speedup_ppm", static_cast<int64_t>(Speedup * 1e6 + 0.5)},
  };
  writeBenchJson({E});

  std::filesystem::remove_all(Dir, EC);
  return Speedup >= 3 && CountsAgree ? 0 : 1;
}
