//===- bench/CsmithRandom.cpp - paper §7 random-program experiment -----------===//
//
// "Validating Randomly Generated Programs": the paper compiles 1,000
// CSmith programs with -O2 and validates mem2reg and gvn. Almost all gvn
// validations succeed except failures caused by the gvn bug; 27.7% of
// mem2reg validations are #NS because of lifetime intrinsics.
//
// Here the random generator (DESIGN.md §2) produces 1,000 modules with
// the lifetime-intrinsic feature enabled at a CSmith-like rate and the
// LLVM 3.7.1-era bug configuration.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

using namespace crellvm;
using namespace crellvm::bench;

int main(int Argc, char **Argv) {
  unsigned Scale = scaleFromArgs(Argc, Argv);
  unsigned NumPrograms = 1000 / Scale;
  std::cout << "=== CSmith experiment analog (paper §7) ===\n"
            << NumPrograms << " random programs, -O2 pipeline, "
            << "bug configuration: " << passes::BugConfig::llvm371().str()
            << "\n\n";

  driver::DriverOptions DOpts;
  DOpts.WriteFiles = false;
  driver::ValidationDriver Driver(passes::BugConfig::llvm371(), DOpts);
  driver::StatsMap Stats;
  for (unsigned I = 0; I != NumPrograms; ++I) {
    workload::GenOptions Opts;
    Opts.Seed = 0xc5317 + I;
    Opts.NumFunctions = 3;
    Opts.LifetimePct = 30; // CSmith emits lifetime markers pervasively
    Opts.VecFunctionPct = 0;
    // CSmith-generated code rarely contains the gep-inbounds and
    // PRE-insertion trigger shapes; keep them rare so the bug fires only
    // occasionally, as in the paper (one failure in 55,008 validations).
    Opts.GepPairPct = 2;
    ir::Module M = workload::generateModule(Opts);
    Driver.runPipelineValidated(M, Stats);
  }

  Table T({"", "#validations", "#F", "#NS", "NS rate", "validated"});
  for (const std::string &P : {std::string("mem2reg"), std::string("gvn")}) {
    const driver::PassStats &S = Stats[P];
    double NsRate = S.V ? static_cast<double>(S.NS) / S.V : 0;
    T.addRow({P, formatCountK(S.V), formatCountK(S.F), formatCountK(S.NS),
              formatPercent(NsRate),
              formatCountK(S.validated())});
  }
  T.print(std::cout);

  const driver::PassStats &M2R = Stats["mem2reg"];
  const driver::PassStats &Gvn = Stats["gvn"];
  double NsRate = M2R.V ? static_cast<double>(M2R.NS) / M2R.V : 0;
  std::cout << "\npaper-shape: gvn-bug-detected=" << (Gvn.F > 0 ? "OK" : "MISMATCH")
            << " (paper: 1 failure across 55,008 validations)"
            << ", mem2reg-lifetime-NS="
            << (NsRate > 0.08 && NsRate < 0.6 ? "OK" : "MISMATCH")
            << " (paper: 27.7%)"
            << ", rest-validated="
            << (M2R.F + Gvn.F < (M2R.V + Gvn.V) / 10 ? "OK" : "MISMATCH")
            << "\n";
  return 0;
}
