//===- bench/CsmithRandom.cpp - paper §7 random-program experiment -----------===//
//
// "Validating Randomly Generated Programs": the paper compiles 1,000
// CSmith programs with -O2 and validates mem2reg and gvn. Almost all gvn
// validations succeed except failures caused by the gvn bug; 27.7% of
// mem2reg validations are #NS because of lifetime intrinsics.
//
// Here the random generator (DESIGN.md §2) produces 1,000 modules with
// the lifetime-intrinsic feature enabled at a CSmith-like rate and the
// LLVM 3.7.1-era bug configuration. The modules are validated on the
// work-stealing pool (--jobs N, default: all hardware threads) with a
// deterministic stats reduction, so the table is identical for every job
// count; --oracle additionally differentially executes checker-accepted
// translations.
//
//   csmith_random [scale] [--jobs N] [--oracle]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "bench/Common.h"

#include <cstring>

using namespace crellvm;
using namespace crellvm::bench;

int main(int Argc, char **Argv) {
  unsigned Scale = 1, Jobs = 0;
  bool Oracle = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      Jobs = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else if (std::strcmp(Argv[I], "--oracle") == 0)
      Oracle = true;
    else
      Scale = static_cast<unsigned>(std::strtoul(Argv[I], nullptr, 10));
  }
  if (Scale == 0)
    Scale = 1;
  unsigned NumPrograms = 1000 / Scale;

  driver::BatchOptions BOpts;
  BOpts.Jobs = Jobs;
  driver::DriverOptions DOpts;
  DOpts.WriteFiles = false;
  DOpts.RunOracle = Oracle;

  driver::BatchReport Report = driver::runBatchValidated(
      passes::BugConfig::llvm371(), DOpts, NumPrograms,
      [](size_t I) {
        workload::GenOptions Opts;
        Opts.Seed = 0xc5317 + I;
        Opts.NumFunctions = 3;
        Opts.LifetimePct = 30; // CSmith emits lifetime markers pervasively
        Opts.VecFunctionPct = 0;
        // CSmith-generated code rarely contains the gep-inbounds and
        // PRE-insertion trigger shapes; keep them rare so the bug fires
        // only occasionally, as in the paper (one failure in 55,008
        // validations).
        Opts.GepPairPct = 2;
        return workload::generateModule(Opts);
      },
      BOpts);
  const driver::StatsMap &Stats = Report.Stats;

  std::cout << "=== CSmith experiment analog (paper §7) ===\n"
            << NumPrograms << " random programs, -O2 pipeline, "
            << "bug configuration: " << passes::BugConfig::llvm371().str()
            << "\n"
            << Report.JobsUsed << " jobs, wall "
            << formatSeconds(Report.WallSeconds) << ", cpu "
            << formatSeconds(Report.CpuSeconds) << " (speedup "
            << formatPercent(Report.WallSeconds > 0
                                 ? Report.CpuSeconds / Report.WallSeconds
                                 : 0)
            << " of serial)"
            << (Oracle ? ", oracle on" : "") << "\n\n";

  Table T({"", "#validations", "#F", "#NS", "NS rate", "validated"});
  for (const std::string &P : {std::string("mem2reg"), std::string("gvn")}) {
    auto It = Stats.find(P);
    const driver::PassStats S =
        It == Stats.end() ? driver::PassStats() : It->second;
    double NsRate = S.V ? static_cast<double>(S.NS) / S.V : 0;
    T.addRow({P, formatCountK(S.V), formatCountK(S.F), formatCountK(S.NS),
              formatPercent(NsRate),
              formatCountK(S.validated())});
  }
  T.print(std::cout);

  auto StatOf = [&Stats](const char *Name) {
    auto It = Stats.find(Name);
    return It == Stats.end() ? driver::PassStats() : It->second;
  };
  const driver::PassStats M2R = StatOf("mem2reg");
  const driver::PassStats Gvn = StatOf("gvn");
  double NsRate = M2R.V ? static_cast<double>(M2R.NS) / M2R.V : 0;
  std::cout << "\npaper-shape: gvn-bug-detected=" << (Gvn.F > 0 ? "OK" : "MISMATCH")
            << " (paper: 1 failure across 55,008 validations)"
            << ", mem2reg-lifetime-NS="
            << (NsRate > 0.08 && NsRate < 0.6 ? "OK" : "MISMATCH")
            << " (paper: 27.7%)"
            << ", rest-validated="
            << (M2R.F + Gvn.F < (M2R.V + Gvn.V) / 10 ? "OK" : "MISMATCH")
            << "\n";
  if (Oracle) {
    uint64_t Runs = 0, Div = 0;
    for (const auto &KV : Stats) {
      Runs += KV.second.OracleRuns;
      Div += KV.second.OracleDivergences;
    }
    std::cout << "oracle: " << Runs << " differential runs, " << Div
              << " divergences on checker-accepted translations\n";
  }
  writeBenchJson({BenchEntry::fromReport("csmith_random", Report)});
  return 0;
}
