//===- bench/MicroChecker.cpp - checker micro-benchmarks ---------------------===//
//
// Google-benchmark micro-benchmarks of the framework's hot paths,
// supporting the paper's §7 "Performance" discussion: proof checking and
// (plain-text JSON) I/O dominate; binary or delta encodings would shave
// the I/O column. Benchmarks: IR text round-trip, proof JSON round-trip,
// post-assertion computation, rule application, whole-function
// validation, and interpretation.
//
//===----------------------------------------------------------------------===//

#include "checker/Postcond.h"
#include "checker/Validator.h"
#include "interp/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "json/Binary.h"
#include "passes/Pipeline.h"
#include "proofgen/ProofBinary.h"
#include "proofgen/ProofJson.h"
#include "workload/RandomProgram.h"

#include <benchmark/benchmark.h>

using namespace crellvm;

namespace {

ir::Module testModule() {
  workload::GenOptions Opts;
  Opts.Seed = 11;
  Opts.NumFunctions = 4;
  Opts.VecFunctionPct = 0;
  Opts.LifetimePct = 0;
  return workload::generateModule(Opts);
}

passes::PassResult pipelineStep(const ir::Module &M,
                                const std::string &Pass) {
  auto P = passes::makePass(Pass, passes::BugConfig::fixed());
  return P->run(M, /*GenProof=*/true);
}

void BM_PrintParseModule(benchmark::State &State) {
  ir::Module M = testModule();
  for (auto _ : State) {
    std::string Text = ir::printModule(M);
    auto Parsed = ir::parseModule(Text);
    benchmark::DoNotOptimize(Parsed);
  }
}
BENCHMARK(BM_PrintParseModule);

void BM_ProofJsonRoundTrip(benchmark::State &State) {
  ir::Module M = testModule();
  auto PR = pipelineStep(M, "mem2reg");
  for (auto _ : State) {
    std::string Text = proofgen::proofToText(PR.Proof);
    auto Back = proofgen::proofFromText(Text);
    benchmark::DoNotOptimize(Back);
  }
}
BENCHMARK(BM_ProofJsonRoundTrip);

void BM_ProofBinaryRoundTrip(benchmark::State &State) {
  ir::Module M = testModule();
  auto PR = pipelineStep(M, "mem2reg");
  for (auto _ : State) {
    std::string Bytes = proofgen::proofToBinary(PR.Proof);
    auto Back = proofgen::proofFromBinary(Bytes);
    benchmark::DoNotOptimize(Back);
  }
}
BENCHMARK(BM_ProofBinaryRoundTrip);

void BM_JsonTextParseOnly(benchmark::State &State) {
  ir::Module M = testModule();
  auto PR = pipelineStep(M, "gvn");
  std::string Text = proofgen::proofToJson(PR.Proof).write();
  for (auto _ : State) {
    auto V = json::parse(Text, nullptr);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_JsonTextParseOnly);

void BM_BinaryDecodeOnly(benchmark::State &State) {
  ir::Module M = testModule();
  auto PR = pipelineStep(M, "gvn");
  std::string Bytes = *json::encodeBinary(proofgen::proofToJson(PR.Proof));
  for (auto _ : State) {
    auto V = json::decodeBinary(Bytes, nullptr);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_BinaryDecodeOnly);

void BM_CalcPostCmd(benchmark::State &State) {
  erhl::Assertion A;
  ir::Type I32 = ir::Type::intTy(32);
  checker::CmdPair Pair{
      ir::Instruction::binary(ir::Opcode::Add, "x", I32,
                              ir::Value::reg("a", I32),
                              ir::Value::constInt(1, I32)),
      ir::Instruction::binary(ir::Opcode::Add, "x", I32,
                              ir::Value::reg("a", I32),
                              ir::Value::constInt(1, I32))};
  for (auto _ : State) {
    erhl::Assertion Post = checker::calcPostCmd(A, Pair);
    benchmark::DoNotOptimize(Post);
  }
}
BENCHMARK(BM_CalcPostCmd);

void BM_ApplyInfrule(benchmark::State &State) {
  ir::Type I32 = ir::Type::intTy(32);
  auto V = [&](const char *N) {
    return erhl::Expr::val(erhl::ValT::phy(ir::Value::reg(N, I32)));
  };
  auto C = [&](int64_t N) {
    return erhl::Expr::val(erhl::ValT::phy(ir::Value::constInt(N, I32)));
  };
  erhl::Assertion A;
  erhl::ValT Av = erhl::ValT::phy(ir::Value::reg("a", I32));
  erhl::ValT Xv = erhl::ValT::phy(ir::Value::reg("x", I32));
  erhl::ValT C1 = erhl::ValT::phy(ir::Value::constInt(1, I32));
  erhl::ValT C2 = erhl::ValT::phy(ir::Value::constInt(2, I32));
  A.Src.insert(erhl::Pred::lessdef(
      V("x"), erhl::Expr::bop(ir::Opcode::Add, I32, Av, C1)));
  A.Src.insert(erhl::Pred::lessdef(
      V("y"), erhl::Expr::bop(ir::Opcode::Add, I32, Xv, C2)));
  erhl::Infrule R;
  R.K = erhl::InfruleKind::AddAssoc;
  R.S = erhl::Side::Src;
  R.Args = {V("y"), V("x"), V("a"), C(1), C(2), C(3)};
  for (auto _ : State) {
    erhl::Assertion Copy = A;
    auto Err = erhl::applyInfrule(R, Copy);
    benchmark::DoNotOptimize(Err);
  }
}
BENCHMARK(BM_ApplyInfrule);

void BM_ValidateMem2Reg(benchmark::State &State) {
  ir::Module M = testModule();
  auto PR = pipelineStep(M, "mem2reg");
  for (auto _ : State) {
    auto R = checker::validate(M, PR.Tgt, PR.Proof);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ValidateMem2Reg);

void BM_ValidateGvn(benchmark::State &State) {
  ir::Module M = testModule();
  auto PR = pipelineStep(M, "gvn");
  for (auto _ : State) {
    auto R = checker::validate(M, PR.Tgt, PR.Proof);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ValidateGvn);

void BM_Interp(benchmark::State &State) {
  ir::Module M = testModule();
  interp::InterpOptions Opts;
  for (auto _ : State) {
    auto R = interp::run(M, M.Funcs[0].Name, {3, 4, 5}, Opts);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Interp);

void BM_FullPipelineWithProofs(benchmark::State &State) {
  ir::Module M = testModule();
  for (auto _ : State) {
    ir::Module Cur = M;
    for (auto &P : passes::makeO2Pipeline(passes::BugConfig::fixed())) {
      auto PR = P->run(Cur, true);
      Cur = PR.Tgt;
    }
    benchmark::DoNotOptimize(Cur);
  }
}
BENCHMARK(BM_FullPipelineWithProofs);

} // namespace

BENCHMARK_MAIN();
