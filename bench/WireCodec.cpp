//===- bench/WireCodec.cpp - json vs cbj1 on the serve hot path -----------===//
//
// The negotiated wire codec (DESIGN.md §16) exists to cut serialization
// off the daemon's serve hot path. This bench measures exactly that
// boundary: encode + decode of one frame payload through the session
// codecs from server/Protocol.h, over a realistic traffic mix (seeded
// validate requests, module-text requests, verdict responses, and real
// proof trees from the -O2 passes), in three configurations:
//
//   json        V.write() + json::parse       — the legacy text protocol;
//   cbj1 cold   fresh intern tables per frame — a one-shot connection;
//   cbj1 warm   one session writer/reader     — a pipelined connection,
//               where repeated keys and identifiers become back-refs.
//
// Reports p50/p99 per-frame latency, frames/sec, and bytes/frame for
// each, best-of-3 alternating runs. Appended to BENCH_validation.json as
// `wire_codec`; the exit code gates warm cbj1 at >= 1.25x the json
// frame rate, so a regression that erases the codec's reason to exist
// fails CI the way chaos_overhead does.
//
//   wire_codec [scale]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "bench/Common.h"
#include "ir/Printer.h"
#include "passes/Pipeline.h"
#include "proofgen/ProofJson.h"
#include "server/Protocol.h"
#include "workload/RandomProgram.h"

#include <algorithm>
#include <chrono>

using namespace crellvm;
using namespace crellvm::bench;

namespace {

using Clock = std::chrono::steady_clock;

/// A realistic mix of frame payloads as seen by a busy daemon: small
/// seeded requests, identifier-heavy module-text requests, verdict
/// responses, and proof trees (the deepest values the codec meets).
std::vector<json::Value> buildCorpus() {
  std::vector<json::Value> Corpus;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    workload::GenOptions G;
    G.Seed = Seed;
    ir::Module M = workload::generateModule(G);

    server::Request Seeded;
    Seeded.Kind = server::RequestKind::Validate;
    Seeded.Id = static_cast<int64_t>(Seed);
    Seeded.HasSeed = true;
    Seeded.Seed = Seed;
    Seeded.Bugs = "fixed";
    Corpus.push_back(server::requestToValue(Seeded));

    server::Request Text;
    Text.Kind = server::RequestKind::Validate;
    Text.Id = static_cast<int64_t>(100 + Seed);
    Text.ModuleText = ir::printModule(M);
    Text.Bugs = "fixed";
    Corpus.push_back(server::requestToValue(Text));

    server::Response Rsp;
    Rsp.Id = static_cast<int64_t>(Seed);
    Rsp.Status = server::ResponseStatus::Ok;
    for (const char *Pass : {"mem2reg", "instcombine", "gvn", "licm"}) {
      server::PassVerdicts PV;
      PV.V = 40 + Seed;
      PV.NS = Seed % 3;
      Rsp.Passes[Pass] = PV;
    }
    Rsp.TotalUs = 1234 * Seed;
    Corpus.push_back(server::responseToValue(Rsp));

    for (const char *Pass : {"mem2reg", "gvn"}) {
      auto P = passes::makePass(Pass, passes::BugConfig::fixed());
      Corpus.push_back(proofgen::proofToJson(P->run(M, true).Proof));
    }
  }
  return Corpus;
}

struct CodecResult {
  double WallS = 0;
  uint64_t Frames = 0;
  uint64_t Bytes = 0;
  uint64_t P50Us = 0, P99Us = 0;
  double Rps = 0;
};

/// One timed sweep: \p Rounds passes over the corpus through \p Enc /
/// \p Dec, per-frame encode+decode latencies collected for percentiles.
CodecResult sweep(const std::vector<json::Value> &Corpus, unsigned Rounds,
                  server::WireEncoder &Enc, server::WireDecoder &Dec,
                  bool FreshTablesPerFrame) {
  CodecResult R;
  std::vector<uint64_t> Ns;
  Ns.reserve(Corpus.size() * Rounds);
  const auto T0 = Clock::now();
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    for (const json::Value &V : Corpus) {
      if (FreshTablesPerFrame) {
        Enc.use(Enc.codec()); // use() resets the session tables
        Dec.use(Dec.codec());
      }
      const auto F0 = Clock::now();
      auto Payload = Enc.encode(V);
      auto Back = Payload ? Dec.decode(*Payload) : std::nullopt;
      const auto F1 = Clock::now();
      if (!Back) {
        std::cerr << "wire_codec: round-trip failed\n";
        std::exit(2);
      }
      R.Bytes += Payload->size();
      ++R.Frames;
      Ns.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(F1 - F0)
              .count()));
    }
  }
  R.WallS = std::chrono::duration<double>(Clock::now() - T0).count();
  R.Rps = R.WallS > 0 ? R.Frames / R.WallS : 0;
  std::sort(Ns.begin(), Ns.end());
  if (!Ns.empty()) {
    R.P50Us = Ns[Ns.size() / 2] / 1000;
    R.P99Us = Ns[std::min(Ns.size() - 1, Ns.size() * 99 / 100)] / 1000;
  }
  return R;
}

CodecResult runMode(const std::vector<json::Value> &Corpus, unsigned Rounds,
                    server::WireCodec Codec, bool FreshTablesPerFrame) {
  server::WireEncoder Enc(Codec);
  server::WireDecoder Dec(Codec);
  return sweep(Corpus, Rounds, Enc, Dec, FreshTablesPerFrame);
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Scale = scaleFromArgs(Argc, Argv);
  if (Scale == 0)
    Scale = 1;
  unsigned Rounds = std::max(600u / Scale, 3u);

  std::vector<json::Value> Corpus = buildCorpus();

  // Sanity: both codecs reproduce the corpus byte-for-byte (canonical
  // text form) before anything is timed.
  for (const json::Value &V : Corpus) {
    server::WireEncoder E(server::WireCodec::Cbj1);
    server::WireDecoder D(server::WireCodec::Cbj1);
    auto P = E.encode(V);
    auto Back = P ? D.decode(*P) : std::nullopt;
    if (!Back || Back->write() != V.write()) {
      std::cerr << "wire_codec: cbj1 is not transparent\n";
      return 2;
    }
  }

  std::cout << "=== Wire codec: json vs negotiated cbj1 (encode+decode) ===\n"
            << Corpus.size() << " frame payloads x " << Rounds
            << " rounds, best of 3 alternating runs\n\n";

  CodecResult Json, Cold, Warm;
  double JsonWall = 1e300, ColdWall = 1e300, WarmWall = 1e300;
  for (int Iter = 0; Iter != 3; ++Iter) {
    CodecResult R = runMode(Corpus, Rounds, server::WireCodec::Json, false);
    if (R.WallS < JsonWall) {
      JsonWall = R.WallS;
      Json = R;
    }
    R = runMode(Corpus, Rounds, server::WireCodec::Cbj1, true);
    if (R.WallS < ColdWall) {
      ColdWall = R.WallS;
      Cold = R;
    }
    R = runMode(Corpus, Rounds, server::WireCodec::Cbj1, false);
    if (R.WallS < WarmWall) {
      WarmWall = R.WallS;
      Warm = R;
    }
  }

  Table T({"codec", "p50", "p99", "frames/s", "bytes/frame"});
  auto Row = [&](const char *Name, const CodecResult &R) {
    T.addRow({Name, std::to_string(R.P50Us) + "us",
              std::to_string(R.P99Us) + "us",
              std::to_string(static_cast<uint64_t>(R.Rps)),
              std::to_string(R.Frames ? R.Bytes / R.Frames : 0)});
  };
  Row("json", Json);
  Row("cbj1-cold", Cold);
  Row("cbj1-warm", Warm);
  T.print(std::cout);

  double Speedup = Json.Rps > 0 ? Warm.Rps / Json.Rps : 0;
  double ByteRatio =
      Json.Bytes > 0 ? static_cast<double>(Warm.Bytes) / Json.Bytes : 0;
  std::cout << "\ncbj1-warm vs json: " << formatPercent(Speedup - 1.0)
            << " faster, " << formatPercent(1.0 - ByteRatio)
            << " fewer bytes (gate: >= 1.25x frame rate)\n";
  std::cout << "paper-shape: warm-speedup-at-least-1.25x="
            << (Speedup >= 1.25 ? "OK" : "MISMATCH") << "\n";

  BenchEntry E;
  E.Name = "wire_codec";
  E.WallSeconds = Json.WallS + Cold.WallS + Warm.WallS;
  E.Jobs = 1;
  auto Put = [&](const char *Key, const CodecResult &R) {
    std::string K = Key;
    E.Extra.emplace_back(K + "_p50_us", static_cast<int64_t>(R.P50Us));
    E.Extra.emplace_back(K + "_p99_us", static_cast<int64_t>(R.P99Us));
    E.Extra.emplace_back(K + "_rps", static_cast<int64_t>(R.Rps + 0.5));
    E.Extra.emplace_back(K + "_frame_bytes",
                         static_cast<int64_t>(R.Frames ? R.Bytes / R.Frames
                                                       : 0));
  };
  Put("json", Json);
  Put("cbj1_cold", Cold);
  Put("cbj1_warm", Warm);
  E.Extra.emplace_back("warm_speedup_ppm",
                       static_cast<int64_t>(Speedup * 1e6 + 0.5));
  writeBenchJson({E});

  return Speedup >= 1.25 ? 0 : 1;
}
