//===- bench/Fig05Sloc.cpp - paper Figure 5 analog ---------------------------===//
//
// Fig. 5: SLOC of the compiler code vs the proof-generation code per pass.
// The pass sources mark their proof-generation regions with
// PROOFGEN-BEGIN/END comments (support/Sloc.h); the paper's accompanying
// infrastructure numbers (§6: 1,708 SLOC common library + JSON
// serialization) map to src/proofgen and src/json.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include "support/Sloc.h"
#include "support/Table.h"

#include <iostream>

using namespace crellvm;

#ifndef CRELLVM_SOURCE_DIR
#define CRELLVM_SOURCE_DIR "."
#endif

int main() {
  const std::string Root = CRELLVM_SOURCE_DIR;
  struct Row {
    const char *Pass;
    const char *File;
    double PaperRatio; // proofgen / compiler, from the paper's Fig. 5
  };
  const Row Rows[] = {
      {"mem2reg", "/src/passes/Mem2Reg.cpp", 0.375},
      {"gvn", "/src/passes/GVN.cpp", 0.403},
      {"licm", "/src/passes/LICM.cpp", 0.405},
      {"instcombine", "/src/passes/InstCombine.cpp", 1.933},
  };

  std::cout << "=== Figure 5 analog ===\n"
            << "SLOC of compiler vs proof-generation code per pass\n\n";
  Table T({"", "Compiler (Covered)", "Proof Generation", "ratio",
           "paper ratio"});
  bool AnyMissing = false;
  double MaxRatioPass = 0, LicmRatio = 0, InstRatio = 0;
  for (const Row &R : Rows) {
    SlocCounts C = countSlocFile(Root + R.File);
    if (C.total() == 0)
      AnyMissing = true;
    double Ratio = C.Compiler ? static_cast<double>(C.ProofGen) / C.Compiler
                              : 0.0;
    if (std::string(R.Pass) == "instcombine")
      InstRatio = Ratio;
    else
      MaxRatioPass = std::max(MaxRatioPass, Ratio);
    if (std::string(R.Pass) == "licm")
      LicmRatio = Ratio;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.1f%%", Ratio * 100);
    char Buf2[32];
    std::snprintf(Buf2, sizeof(Buf2), "%.1f%%", R.PaperRatio * 100);
    T.addRow({R.Pass, std::to_string(C.Compiler),
              std::to_string(C.ProofGen), Buf, Buf2});
  }
  T.print(std::cout);

  // Infrastructure, mirroring §6's common library + JSON serialization.
  SlocCounts Infra;
  for (const char *F :
       {"/src/proofgen/Proof.h", "/src/proofgen/ProofBuilder.h",
        "/src/proofgen/ProofBuilder.cpp", "/src/proofgen/ProofJson.h",
        "/src/proofgen/ProofJson.cpp"})
    Infra += countSlocFile(Root + F);
  SlocCounts JsonLib;
  for (const char *F : {"/src/json/Json.h", "/src/json/Json.cpp",
                        "/src/erhl/Serialize.h", "/src/erhl/Serialize.cpp"})
    JsonLib += countSlocFile(Root + F);
  std::cout << "\nproof-generation infrastructure (common library): "
            << Infra.total() << " SLOC\n"
            << "JSON serialization library: " << JsonLib.total()
            << " SLOC\n"
            << "(paper: 1,708 common + 15,980 generated JSON)\n\n";

  std::cout << "note: this repo factors per-micro-opt proof logic into the\n"
            << "shared rule catalog (erhl/Infrule.cpp), which the paper\n"
            << "counts separately as inference rules; the instcombine\n"
            << "ratio is therefore lower than the paper's 193%.\n\n";
  SlocCounts Rules = countSlocFile(Root + "/src/erhl/Infrule.cpp");
  std::cout << "inference-rule catalog: " << Rules.total()
            << " SLOC (paper: 2,193 SLOC for 221 rules)\n\n";
  std::cout << "paper-shape: sources-found=" << (AnyMissing ? "MISMATCH" : "OK")
            << ", proofgen-fraction-of-compiler="
            << (MaxRatioPass > 0.1 && MaxRatioPass < 1.5 ? "OK" : "MISMATCH")
            << ", proofgen-present-in-every-pass="
            << (LicmRatio > 0 && InstRatio > 0 ? "OK" : "MISMATCH") << "\n";
  return 0;
}
