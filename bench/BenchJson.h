//===- bench/BenchJson.h - Machine-readable bench output --------*- C++ -*-===//
///
/// \file
/// Machine-readable companion to the human tables: benches append their
/// headline numbers to `BENCH_validation.json` in the working directory,
/// so the perf trajectory (wall, cpu, parallel efficiency, cache hit
/// rate) can be tracked across PRs by tooling instead of by eyeballing
/// table text.
///
/// The file is one JSON object `{"entries": [...]}`. Each write merges:
/// existing entries with the same name are replaced, everything else is
/// preserved, so independent benches can share the file. Writes go
/// through a temp file + rename so a crashed bench never truncates the
/// history (the same discipline as cache/DiskStore.cpp).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_BENCH_BENCHJSON_H
#define CRELLVM_BENCH_BENCHJSON_H

#include "driver/Driver.h"
#include "json/Json.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace crellvm {
namespace bench {

struct BenchEntry {
  std::string Name;        ///< unique key, e.g. "csmith_random"
  double WallSeconds = 0;
  double CpuSeconds = 0;
  unsigned Jobs = 1;
  double ParallelEfficiency = 0; ///< cpu / wall / jobs
  double CacheHitRate = 0;       ///< hits / lookups; 0 when cache off
  uint64_t V = 0, F = 0, NS = 0; ///< summed over all passes
  /// Bench-specific headline numbers appended verbatim to the entry
  /// (key -> integer value; rates go in as ppm, times as microseconds,
  /// matching the fixed fields' conventions).
  std::vector<std::pair<std::string, int64_t>> Extra;

  /// Fills the count and rate fields from a batch report.
  static BenchEntry fromReport(std::string Name,
                               const driver::BatchReport &R) {
    BenchEntry E;
    E.Name = std::move(Name);
    E.WallSeconds = R.WallSeconds;
    E.CpuSeconds = R.CpuSeconds;
    E.Jobs = R.JobsUsed;
    E.ParallelEfficiency =
        R.WallSeconds > 0 ? R.CpuSeconds / R.WallSeconds / R.JobsUsed : 0;
    uint64_t Hits = 0, Lookups = 0;
    for (const auto &KV : R.Stats) {
      E.V += KV.second.V;
      E.F += KV.second.F;
      E.NS += KV.second.NS;
      Hits += KV.second.CacheHits;
      Lookups += KV.second.CacheHits + KV.second.CacheMisses;
    }
    E.CacheHitRate = Lookups ? static_cast<double>(Hits) / Lookups : 0;
    return E;
  }
};

/// json::Value only carries 64-bit ints, so times are stored as integer
/// microseconds and rates as integer parts-per-million — exact enough for
/// trend tracking and keeps the writer dependency-free.
inline void writeBenchJson(const std::vector<BenchEntry> &Entries,
                           const std::string &Path = "BENCH_validation.json") {
  json::Value Root = json::Value::object();
  json::Value List = json::Value::array();

  // Merge: keep existing entries whose names this write does not replace.
  {
    std::ifstream In(Path);
    if (In) {
      std::ostringstream Buf;
      Buf << In.rdbuf();
      if (auto Old = json::parse(Buf.str(), nullptr)) {
        if (const json::Value *OldList = Old->find("entries"))
          if (OldList->kind() == json::Value::Kind::Array)
            for (const json::Value &E : OldList->elements()) {
              const json::Value *Name = E.find("name");
              if (!Name || Name->kind() != json::Value::Kind::String)
                continue;
              bool Replaced = false;
              for (const BenchEntry &N : Entries)
                Replaced |= N.Name == Name->getString();
              if (!Replaced)
                List.push(E);
            }
      }
    }
  }

  auto PPM = [](double X) {
    return json::Value(static_cast<int64_t>(X * 1e6 + 0.5));
  };
  for (const BenchEntry &E : Entries) {
    json::Value O = json::Value::object();
    O.set("name", json::Value(E.Name));
    O.set("wall_us", PPM(E.WallSeconds));
    O.set("cpu_us", PPM(E.CpuSeconds));
    O.set("jobs", json::Value(static_cast<int64_t>(E.Jobs)));
    O.set("parallel_efficiency_ppm", PPM(E.ParallelEfficiency));
    O.set("cache_hit_rate_ppm", PPM(E.CacheHitRate));
    O.set("validations", json::Value(E.V));
    O.set("failures", json::Value(E.F));
    O.set("not_supported", json::Value(E.NS));
    for (const auto &KV : E.Extra)
      O.set(KV.first, json::Value(KV.second));
    List.push(std::move(O));
  }
  Root.set("entries", std::move(List));

  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    Out << Root.write() << "\n";
    if (!Out)
      return; // bench output is best-effort; never fail the bench
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Path, EC);
}

} // namespace bench
} // namespace crellvm

#endif // CRELLVM_BENCH_BENCHJSON_H
