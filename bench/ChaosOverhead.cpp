//===- bench/ChaosOverhead.cpp - cost of the compiled-in harness ----------===//
//
// The contract that lets the fault-injection harness (support/
// FaultInjection.h) stay compiled into production binaries: a probe at
// every I/O and concurrency boundary must be free when no schedule is
// active. Two configurations of the same cached validation batch:
//
//   off     harness disarmed — every probe is one relaxed atomic load;
//   armed   a schedule is installed but scheduled never to fire
//           (at=10^9 on every hot-path site), so each probe pays the
//           full slow path: registry mutex, site lookup, hit accounting.
//
// Both run the identical corpus through the -O2 pipeline with a
// read-write cache (so the disk.* probes sit on the measured path) on 2
// jobs (so pool.submit probes too). Wall times are best-of-3 with
// alternating order to shave scheduler noise; the armed-but-idle run
// must stay within 5% of the disarmed one. Appended to
// BENCH_validation.json as `chaos_overhead`.
//
//   chaos_overhead [scale] [--jobs N]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "bench/Common.h"
#include "cache/ValidationCache.h"
#include "support/FaultInjection.h"

#include <cstring>
#include <filesystem>

#include <unistd.h>

using namespace crellvm;
using namespace crellvm::bench;

namespace {

/// Every hot-path site, scheduled so far in the future it never fires:
/// probes take the armed slow path, behavior stays byte-identical.
const char *IdleSpec =
    "disk.read:at=1000000000;disk.write:at=1000000000;"
    "disk.short:at=1000000000;disk.rename:at=1000000000;"
    "disk.corrupt:at=1000000000;pool.submit:at=1000000000;"
    "unit.run:at=1000000000;unit.hang:at=1000000000";

driver::BatchReport runOnce(const std::string &CacheDir, unsigned NumModules,
                            unsigned Jobs) {
  cache::ValidationCacheOptions COpts;
  COpts.Policy = cache::CachePolicy::ReadWrite;
  COpts.Dir = CacheDir;
  cache::ValidationCache Cache(COpts);

  driver::DriverOptions DOpts;
  DOpts.WriteFiles = false;
  DOpts.Cache = &Cache;
  driver::BatchOptions BOpts;
  BOpts.Jobs = Jobs;
  return driver::runBatchValidated(
      passes::BugConfig::fixed(), DOpts, NumModules,
      [](size_t I) {
        workload::GenOptions G;
        G.Seed = 0xc4a05 + I;
        return workload::generateModule(G);
      },
      BOpts);
}

uint64_t countOf(const driver::StatsMap &Stats,
                 uint64_t driver::PassStats::*Field) {
  uint64_t N = 0;
  for (const auto &KV : Stats)
    N += KV.second.*Field;
  return N;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Scale = 1, Jobs = 2;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      Jobs = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else
      Scale = static_cast<unsigned>(std::strtoul(Argv[I], nullptr, 10));
  }
  if (Scale == 0)
    Scale = 1;
  unsigned NumModules = 240 / Scale;
  if (NumModules == 0)
    NumModules = 1;

  std::string Dir =
      (std::filesystem::temp_directory_path() /
       ("crellvm-chaos-bench." + std::to_string(::getpid())))
          .string();
  std::error_code EC;

  std::cout << "=== Chaos harness overhead: disarmed vs armed-but-idle ===\n"
            << NumModules << " modules, -O2 pipeline, rw cache, jobs="
            << Jobs << ", best of 3 alternating runs\n\n";

  driver::BatchReport Off, Armed;
  double OffWall = 1e300, ArmedWall = 1e300;
  for (int Iter = 0; Iter != 3; ++Iter) {
    // Fresh cache dir per run so both configurations do identical work
    // (all misses, all stores) — no warm-cache asymmetry.
    std::filesystem::remove_all(Dir, EC);
    fault::disarm();
    driver::BatchReport R = runOnce(Dir, NumModules, Jobs);
    if (R.WallSeconds < OffWall) {
      OffWall = R.WallSeconds;
      Off = R;
    }

    std::filesystem::remove_all(Dir, EC);
    std::string Err;
    if (!fault::configure(IdleSpec, &Err)) {
      std::cerr << "chaos_overhead: bad idle spec: " << Err << "\n";
      return 2;
    }
    R = runOnce(Dir, NumModules, Jobs);
    fault::disarm();
    if (R.WallSeconds < ArmedWall) {
      ArmedWall = R.WallSeconds;
      Armed = R;
    }
  }
  std::filesystem::remove_all(Dir, EC);

  Table T({"run", "wall", "cpu", "#V", "#F", "#NS"});
  for (auto *RP : {&Off, &Armed})
    T.addRow({RP == &Off ? "off" : "armed-idle",
              formatSeconds(RP->WallSeconds), formatSeconds(RP->CpuSeconds),
              formatCountK(countOf(RP->Stats, &driver::PassStats::V)),
              formatCountK(countOf(RP->Stats, &driver::PassStats::F)),
              formatCountK(countOf(RP->Stats, &driver::PassStats::NS))});
  T.print(std::cout);

  double Overhead = OffWall > 0 ? ArmedWall / OffWall - 1.0 : 0;
  bool CountsAgree =
      countOf(Off.Stats, &driver::PassStats::V) ==
          countOf(Armed.Stats, &driver::PassStats::V) &&
      countOf(Off.Stats, &driver::PassStats::F) ==
          countOf(Armed.Stats, &driver::PassStats::F) &&
      countOf(Off.Stats, &driver::PassStats::NS) ==
          countOf(Armed.Stats, &driver::PassStats::NS);

  std::cout << "\narmed-but-idle overhead: "
            << formatPercent(Overhead < 0 ? 0 : Overhead) << " (gate 5%)\n";
  std::cout << "paper-shape: overhead-within-5pct="
            << (Overhead <= 0.05 ? "OK" : "MISMATCH")
            << ", counts-identical=" << (CountsAgree ? "OK" : "MISMATCH")
            << "\n";

  BenchEntry E = BenchEntry::fromReport("chaos_overhead", Off);
  E.Extra.emplace_back("armed_wall_us",
                       static_cast<int64_t>(ArmedWall * 1e6 + 0.5));
  E.Extra.emplace_back(
      "overhead_ppm",
      static_cast<int64_t>((Overhead < 0 ? 0 : Overhead) * 1e6 + 0.5));
  writeBenchJson({E});

  return Overhead <= 0.05 && CountsAgree ? 0 : 1;
}
