//===- bench/Fig12Summary501Post.cpp - paper Figure 12 analog --------------------===//
//
// Fig. 12: results for LLVM 5.0.1 after the GVN patch (no failures).
// See DESIGN.md for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
//
//===----------------------------------------------------------------------===//

#include "bench/Tables.h"

using namespace crellvm;
using namespace crellvm::bench;

int main(int Argc, char **Argv) {
  unsigned Scale = scaleFromArgs(Argc, Argv);
  passes::BugConfig Bugs = passes::BugConfig::llvm501PostGvnPatch();
  std::cout << "=== Figure 12 analog ===\n"
            << "bug configuration: " << Bugs.str() << "\n"
            << "(synthetic corpus, scale " << Scale
            << "; see DESIGN.md section 3 for the substitution)\n\n";
  CorpusResult R = runCorpus(Bugs, Scale);
  auto Passes = passRows(true);
  printSummaryTable(std::cout, R, Passes);
  std::cout << "\n";
  printShapeLine(std::cout, R, Passes,
                 /*ExpectMem2RegF=*/0, /*ExpectGvnF=*/0,
                 /*ExpectGvnFailures=*/false);
  return 0;
}
