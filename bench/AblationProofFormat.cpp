//===- bench/AblationProofFormat.cpp - paper §7 I/O bottleneck ----------------===//
//
// The paper's §7 reports that validation time is dominated by writing and
// parsing the plain-text JSON proofs and names a binary proof format as
// the remedy ("most of the validation time was spent in... file I/O").
// This ablation implements that future-work item and quantifies it: the
// same proofs are serialized as JSON text and as the compact interned
// binary format (proofgen/ProofBinary.h), comparing encoded size,
// serialize+parse time, and the driver's end-to-end I/O column.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "proofgen/ProofBinary.h"
#include "proofgen/ProofJson.h"
#include "support/Timer.h"

#include <cstdio>
#include <iostream>

using namespace crellvm;
using namespace crellvm::bench;

int main(int Argc, char **Argv) {
  unsigned Scale = scaleFromArgs(Argc, Argv, 2);
  std::cout << "=== Ablation: JSON text vs binary proof format (paper §7) "
               "===\n\n";

  passes::BugConfig Bugs = passes::BugConfig::fixed();
  uint64_t Proofs = 0, TextBytes = 0, BinBytes = 0;
  double TextTime = 0, BinTime = 0;
  bool AllAgree = true;

  for (const workload::Project &P : workload::paperCorpus(Scale)) {
    for (unsigned M = 0; M != P.numModules(); ++M) {
      ir::Module Cur = workload::generateProjectModule(P, M);
      for (auto &Pass : passes::makeO2Pipeline(Bugs)) {
        auto PR = Pass->run(Cur, true);
        ++Proofs;

        Timer TText;
        std::string Text, Bin;
        std::optional<proofgen::Proof> FromText, FromBin;
        TText.time([&] {
          Text = proofgen::proofToText(PR.Proof);
          FromText = proofgen::proofFromText(Text);
          return 0;
        });
        TextTime += TText.seconds();

        Timer TBin;
        TBin.time([&] {
          Bin = proofgen::proofToBinary(PR.Proof);
          FromBin = proofgen::proofFromBinary(Bin);
          return 0;
        });
        BinTime += TBin.seconds();

        TextBytes += Text.size();
        BinBytes += Bin.size();
        if (!FromText || !FromBin ||
            proofgen::proofToText(*FromText) !=
                proofgen::proofToText(*FromBin))
          AllAgree = false;

        Cur = PR.Tgt;
      }
    }
  }

  auto Fixed = [](double V, int Prec) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.*f", Prec, V);
    return std::string(Buf);
  };
  std::cout << "format           bytes  round-trip (s)  per-proof (ms)\n";
  std::cout << "------------------------------------------------------\n";
  std::cout << padRight("json text", 11)
            << padLeft(formatCountK(TextBytes), 11)
            << padLeft(Fixed(TextTime, 2), 16)
            << padLeft(Fixed(TextTime / Proofs * 1e3, 3), 16) << "\n";
  std::cout << padRight("binary", 11) << padLeft(formatCountK(BinBytes), 11)
            << padLeft(Fixed(BinTime, 2), 16)
            << padLeft(Fixed(BinTime / Proofs * 1e3, 3), 16) << "\n";
  std::cout << "\nproofs serialized: " << Proofs << "\n";
  double SizeRatio = BinBytes ? double(TextBytes) / double(BinBytes) : 0;
  double TimeRatio = BinTime > 0 ? TextTime / BinTime : 0;
  std::cout << "size ratio (text/binary): " << Fixed(SizeRatio, 2)
            << "x,  round-trip ratio: " << Fixed(TimeRatio, 2) << "x\n";

  // End-to-end: the Fig. 1 driver with the file exchange in each format.
  driver::DriverOptions JOpts, BOpts;
  JOpts.WriteFiles = BOpts.WriteFiles = true;
  BOpts.BinaryProofs = true;
  driver::ValidationDriver JDriver(Bugs, JOpts), BDriver(Bugs, BOpts);
  driver::StatsMap JStats, BStats;
  uint64_t Failures = 0;
  for (const workload::Project &P : workload::paperCorpus(Scale * 4)) {
    for (unsigned M = 0; M != P.numModules(); ++M) {
      ir::Module Mod = workload::generateProjectModule(P, M);
      JDriver.runPipelineValidated(Mod, JStats);
      BDriver.runPipelineValidated(Mod, BStats);
    }
  }
  double JIO = 0, BIO = 0;
  for (const auto &KV : JStats)
    JIO += KV.second.IO;
  for (const auto &KV : BStats) {
    BIO += KV.second.IO;
    Failures += KV.second.F;
  }
  std::cout << "\ndriver I/O column (quarter corpus): json "
            << Fixed(JIO, 3) << " s, binary " << Fixed(BIO, 3) << " s\n";

  bool Smaller = BinBytes * 2 < TextBytes;
  bool Faster = BinTime < TextTime;
  bool DriverFaster = BIO < JIO;
  std::cout << "\npaper-shape: binary-at-least-halves-proof-size="
            << (Smaller ? "OK" : "FAIL")
            << ", binary-round-trip-faster=" << (Faster ? "OK" : "FAIL")
            << ", driver-io-faster=" << (DriverFaster ? "OK" : "FAIL")
            << ", formats-agree-and-validate="
            << ((AllAgree && Failures == 0) ? "OK" : "FAIL") << "\n";
  return (Smaller && Faster && AllAgree && Failures == 0) ? 0 : 1;
}
