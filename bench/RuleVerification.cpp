//===- bench/RuleVerification.cpp - paper §6 "Inference Rules" ---------------===//
//
// The paper installs 221 custom inference rules and formally verifies the
// non-arithmetic ones in Coq, finding an unsound rule (the constant-
// expression assumption behind PR33673) in the process. This repo's
// substitute (DESIGN.md §2) verifies *every* installed rule by randomized
// semantic testing against the reference interpreter, and must refute
// exactly the deliberately unsound constexpr_no_ub.
//
//===----------------------------------------------------------------------===//

#include "erhl/RuleTester.h"
#include "support/Format.h"
#include "support/Table.h"

#include <iostream>

using namespace crellvm;
using namespace crellvm::erhl;

int main(int Argc, char **Argv) {
  uint64_t Instances = Argc > 1 ? std::strtoull(Argv[1], nullptr, 10) : 3000;
  std::cout << "=== Rule verification (paper §6) ===\n"
            << NumInfruleKinds << " installed rule kinds, " << Instances
            << " random instances each\n\n";

  auto Verdicts = verifyAllRules(0x5eed, Instances);
  Table T({"rule", "attempted", "applied", "violations", "verdict"});
  unsigned Sound = 0, Refuted = 0, WeaklyExercised = 0;
  bool ConstexprRefuted = false;
  for (const RuleVerdict &V : Verdicts) {
    T.addRow({infruleKindName(V.K), formatCountK(V.Attempted),
              formatCountK(V.Applied), formatCountK(V.Violations),
              V.sound() ? "sound" : "REFUTED"});
    if (V.sound())
      ++Sound;
    else
      ++Refuted;
    if (V.Applied < Instances / 10)
      ++WeaklyExercised;
    if (V.K == InfruleKind::ConstexprNoUb && !V.sound())
      ConstexprRefuted = true;
  }
  T.print(std::cout);

  std::cout << "\n" << Sound << " rules verified sound, " << Refuted
            << " refuted\n";
  for (const RuleVerdict &V : Verdicts)
    if (!V.sound())
      std::cout << "  " << infruleKindName(V.K)
                << " counterexample: " << V.FirstCounterexample << "\n";

  std::cout << "\npaper-shape: exactly-the-constexpr-rule-refuted="
            << (Refuted == 1 && ConstexprRefuted ? "OK" : "MISMATCH")
            << ", all-rules-exercised="
            << (WeaklyExercised == 0 ? "OK" : "MISMATCH") << "\n";
  return 0;
}
