//===- bench/ClusterThroughput.cpp - cluster requests/s ---------*- C++ -*-===//
//
// Throughput of the sharded validation cluster (DESIGN.md §15): an
// in-process ClusterRouter fronting three in-process crellvm-served
// stacks (ValidationService + SocketServer on real Unix sockets — the
// full wire path, minus only process isolation), measured over three
// cluster lifetimes:
//
//   cold         shared tier on, fresh directory: every request
//                validates in full and publishes into the shared store;
//   warm shared  a RESTARTED cluster (fresh MemCaches) over the same
//                shared directory: every member answers from artifacts
//                the previous cluster's members published;
//   warm off     a restarted cluster with private fresh directories:
//                the counterfactual without the shared tier — everything
//                re-validates.
//
// The shared tier's pitch is that a cluster restart (deploy, scale-up)
// keeps its warm state, so the shared-warm run must hit on >90% of
// lookups while the tier-off run hits on none, and shared-warm
// requests/s must beat cold. Results land in BENCH_validation.json as
// the `validation_cluster` entry (rps in ppm, latencies in us, ratios
// in ppm).
//
//   cluster_throughput [scale] [--jobs N]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "bench/Tables.h"
#include "cluster/Router.h"
#include "server/Service.h"
#include "server/SocketServer.h"
#include "support/Histogram.h"
#include "support/Timer.h"

#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <thread>

#include <unistd.h>

using namespace crellvm;
using namespace crellvm::bench;

namespace {

constexpr int NumMembers = 3;

/// One in-process crellvm-served stack.
struct Member {
  std::unique_ptr<server::ValidationService> Service;
  std::unique_ptr<server::SocketServer> Server;
  std::thread Runner;

  static Member start(const std::string &Id, const std::string &Socket,
                      const cache::ValidationCacheOptions &CacheOpts,
                      unsigned Jobs, unsigned QueueMax) {
    Member M;
    server::ServiceOptions SOpts;
    SOpts.Jobs = Jobs;
    SOpts.QueueMax = QueueMax;
    SOpts.Driver.WriteFiles = false;
    SOpts.Cache = CacheOpts;
    SOpts.MemberId = Id;
    M.Service = std::make_unique<server::ValidationService>(SOpts);
    M.Server = std::make_unique<server::SocketServer>(
        *M.Service, server::SocketServerOptions{Socket, /*Backlog=*/64});
    std::string Err;
    if (!M.Server->start(&Err)) {
      std::cerr << "member " << Id << ": " << Err << "\n";
      std::exit(1);
    }
    M.Runner = std::thread([S = M.Server.get()] { S->run(); });
    return M;
  }

  void stop() {
    Server->requestStop();
    Runner.join();
  }
};

struct PhaseResult {
  double WallSeconds = 0;
  uint64_t Requests = 0;
  uint64_t V = 0, F = 0, NS = 0;
  uint64_t CacheHits = 0, CacheMisses = 0;
  uint64_t P50Us = 0, P99Us = 0;

  double rps() const { return WallSeconds > 0 ? Requests / WallSeconds : 0; }
  double hitRate() const {
    uint64_t L = CacheHits + CacheMisses;
    return L ? static_cast<double>(CacheHits) / L : 0;
  }
};

/// One cluster lifetime: boot 3 members on \p MemberCache(i), route
/// \p NumRequests pipelined seeded requests through a fresh router,
/// drain, tear everything down.
PhaseResult
runPhase(const char *Tag, unsigned NumRequests, unsigned Jobs,
         const std::function<cache::ValidationCacheOptions(int)> &MemberCache) {
  std::string Base = "/tmp/crellvm-cluster-bench-" +
                     std::to_string(::getpid()) + "-" + Tag + "-m";
  std::vector<Member> Members;
  cluster::ClusterOptions COpts;
  for (int I = 0; I != NumMembers; ++I) {
    std::string Id = "m" + std::to_string(I + 1);
    std::string Socket = Base + std::to_string(I + 1) + ".sock";
    ::unlink(Socket.c_str());
    Members.push_back(
        Member::start(Id, Socket, MemberCache(I), Jobs, NumRequests));
    COpts.Members.push_back({Id, Socket});
  }
  COpts.MaxInflightPerMember = NumRequests; // admission is not the subject
  COpts.RouterId = std::string("bench-") + Tag;

  PhaseResult R;
  R.Requests = NumRequests;
  {
    cluster::ClusterRouter Router(COpts);
    std::string Err;
    if (!Router.start(&Err)) {
      std::cerr << "router: " << Err << "\n";
      std::exit(1);
    }
    Histogram Lat;
    std::mutex M;
    std::condition_variable Cv;
    unsigned Done = 0;
    Timer Wall;
    Wall.time([&] {
      for (unsigned I = 0; I != NumRequests; ++I) {
        server::Request Req;
        Req.Kind = server::RequestKind::Validate;
        Req.Id = static_cast<int64_t>(I);
        Req.HasSeed = true;
        Req.Seed = 0xc105fe + I; // same stream in every phase
        Router.submit(Req, [&](server::Response Rsp) {
          Lat.record(Rsp.TotalUs);
          std::lock_guard<std::mutex> L(M);
          R.V += Rsp.totalV();
          R.F += Rsp.totalF();
          R.NS += Rsp.totalNS();
          R.CacheHits += Rsp.CacheHits;
          R.CacheMisses += Rsp.CacheMisses;
          if (++Done == NumRequests)
            Cv.notify_all();
        });
      }
      std::unique_lock<std::mutex> L(M);
      Cv.wait(L, [&] { return Done == NumRequests; });
    });
    R.WallSeconds = Wall.seconds();
    Histogram::Snapshot S = Lat.snapshot();
    R.P50Us = S.quantile(0.50);
    R.P99Us = S.quantile(0.99);
    Router.beginShutdown();
    Router.drain();
  }
  for (Member &M : Members)
    M.stop(); // graceful: caches flush, sockets unlink
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Scale = 1, Jobs = 2;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      Jobs = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else
      Scale = static_cast<unsigned>(std::strtoul(Argv[I], nullptr, 10));
  }
  if (Scale == 0)
    Scale = 1;
  unsigned NumRequests = 240 / Scale;
  if (NumRequests == 0)
    NumRequests = 1;

  std::string SharedDir =
      (std::filesystem::temp_directory_path() /
       ("crellvm-cluster-bench-shared." + std::to_string(::getpid())))
          .string();
  std::string PrivateBase =
      (std::filesystem::temp_directory_path() /
       ("crellvm-cluster-bench-private." + std::to_string(::getpid())))
          .string();
  std::error_code EC;
  std::filesystem::remove_all(SharedDir, EC);

  auto SharedCache = [&](int) {
    cache::ValidationCacheOptions C;
    C.Policy = cache::CachePolicy::ReadWrite;
    C.Dir = SharedDir;
    C.SharedDisk = true;
    return C;
  };
  auto PrivateCache = [&](int I) {
    cache::ValidationCacheOptions C;
    C.Policy = cache::CachePolicy::ReadWrite;
    C.Dir = PrivateBase + "." + std::to_string(I);
    return C;
  };

  std::cout << "=== Validation cluster: requests/s, shared tier on vs off ===\n"
            << NumRequests << " pipelined requests per lifetime, "
            << NumMembers << " members x " << Jobs
            << " jobs, consistent-hash router, real Unix sockets\n\n";

  PhaseResult Cold = runPhase("cold", NumRequests, Jobs, SharedCache);
  PhaseResult WarmShared = runPhase("warmshared", NumRequests, Jobs,
                                    SharedCache);
  PhaseResult WarmOff = runPhase("warmoff", NumRequests, Jobs, PrivateCache);

  Table T({"lifetime", "wall", "req/s", "p50 us", "p99 us", "#V", "#NS",
           "hit rate"});
  const std::pair<const char *, const PhaseResult *> Rows[] = {
      {"cold (shared on)", &Cold},
      {"restart (shared on)", &WarmShared},
      {"restart (shared off)", &WarmOff},
  };
  for (const auto &Row : Rows)
    T.addRow({Row.first, formatSeconds(Row.second->WallSeconds),
              std::to_string(static_cast<uint64_t>(Row.second->rps() + 0.5)),
              std::to_string(Row.second->P50Us),
              std::to_string(Row.second->P99Us), formatCountK(Row.second->V),
              formatCountK(Row.second->NS),
              formatPercent(Row.second->hitRate())});
  T.print(std::cout);

  double Speedup =
      Cold.rps() > 0 ? WarmShared.rps() / Cold.rps() : 0;
  bool CountsAgree = Cold.V == WarmShared.V && Cold.NS == WarmShared.NS &&
                     Cold.V == WarmOff.V && Cold.NS == WarmOff.NS;
  bool SharedCarries = WarmShared.hitRate() > 0.9;
  bool OffIsCold = WarmOff.CacheHits == 0;

  std::cout << "\nrestart with shared tier: "
            << static_cast<uint64_t>(WarmShared.rps() + 0.5) << " req/s vs "
            << static_cast<uint64_t>(Cold.rps() + 0.5) << " cold = "
            << static_cast<int>(Speedup * 10) / 10.0 << "x\n";
  std::cout << "paper-shape: shared-tier-carries-warmth="
            << (SharedCarries ? "OK" : "MISMATCH")
            << ", off-restart-is-cold=" << (OffIsCold ? "OK" : "MISMATCH")
            << ", counts-identical=" << (CountsAgree ? "OK" : "MISMATCH")
            << "\n";

  BenchEntry E;
  E.Name = "validation_cluster";
  E.WallSeconds = Cold.WallSeconds + WarmShared.WallSeconds +
                  WarmOff.WallSeconds;
  E.Jobs = Jobs * NumMembers;
  E.CacheHitRate = WarmShared.hitRate();
  E.V = Cold.V + WarmShared.V + WarmOff.V;
  E.NS = Cold.NS + WarmShared.NS + WarmOff.NS;
  auto PPM = [](double X) { return static_cast<int64_t>(X * 1e6 + 0.5); };
  E.Extra = {
      {"members", NumMembers},
      {"cold_rps_ppm", PPM(Cold.rps())},
      {"warm_shared_rps_ppm", PPM(WarmShared.rps())},
      {"warm_off_rps_ppm", PPM(WarmOff.rps())},
      {"warm_over_cold_rps_ppm", PPM(Speedup)},
      {"cold_p50_us", static_cast<int64_t>(Cold.P50Us)},
      {"cold_p99_us", static_cast<int64_t>(Cold.P99Us)},
      {"warm_shared_p50_us", static_cast<int64_t>(WarmShared.P50Us)},
      {"warm_shared_p99_us", static_cast<int64_t>(WarmShared.P99Us)},
      {"warm_hit_ratio_shared_ppm", PPM(WarmShared.hitRate())},
      {"warm_hit_ratio_off_ppm", PPM(WarmOff.hitRate())},
  };
  writeBenchJson({E});

  std::filesystem::remove_all(SharedDir, EC);
  for (int I = 0; I != NumMembers; ++I)
    std::filesystem::remove_all(PrivateBase + "." + std::to_string(I), EC);
  return SharedCarries && OffIsCold && CountsAgree ? 0 : 1;
}
