//===- bench/Common.h - Shared bench harness utilities ----------*- C++ -*-===//
///
/// \file
/// Shared plumbing for the table-reproducing bench binaries: running the
/// synthetic corpus (DESIGN.md §3) under a bug configuration and
/// collecting per-project, per-pass statistics in the layout of the
/// paper's Figs. 6-14.
///
/// Every bench accepts an optional integer argument: a scale divisor for
/// the corpus (1 = default size; larger = faster, smaller tables).
///
//===----------------------------------------------------------------------===//
#ifndef CRELLVM_BENCH_COMMON_H
#define CRELLVM_BENCH_COMMON_H

#include "driver/Driver.h"
#include "support/Format.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "workload/Corpus.h"

#include <iostream>
#include <string>
#include <vector>

namespace crellvm {
namespace bench {

/// Per-project results, keyed by pass name.
struct ProjectResult {
  workload::Project Project;
  driver::StatsMap Stats;
};

struct CorpusResult {
  std::vector<ProjectResult> Projects;

  /// Aggregated per-pass totals across all projects.
  driver::StatsMap totals() const {
    driver::StatsMap T;
    for (const ProjectResult &P : Projects)
      for (const auto &KV : P.Stats)
        T[KV.first].add(KV.second);
    return T;
  }
};

/// Runs the full -O2 pipeline over the corpus. The two instcombine
/// invocations of the pipeline are merged under one "instcombine" row, as
/// in the paper. With \p Jobs != 1 the modules of each project are
/// validated concurrently on one shared work-stealing pool (0 = all
/// hardware threads); the reduction stays deterministic, so the tables are
/// identical for every job count. \p Oracle additionally differentially
/// executes every checker-accepted translation (driver/DiffOracle.h).
inline CorpusResult runCorpus(const passes::BugConfig &Bugs, unsigned Scale,
                              bool WithFileIO = true, unsigned Jobs = 1,
                              bool Oracle = false) {
  CorpusResult Out;
  driver::DriverOptions DOpts;
  DOpts.WriteFiles = WithFileIO;
  DOpts.RunOracle = Oracle;
  if (Jobs == 1 && !Oracle) {
    driver::ValidationDriver Driver(Bugs, DOpts);
    for (const workload::Project &P : workload::paperCorpus(Scale)) {
      ProjectResult PR;
      PR.Project = P;
      for (unsigned M = 0; M != P.numModules(); ++M) {
        ir::Module Mod = workload::generateProjectModule(P, M);
        Driver.runPipelineValidated(Mod, PR.Stats);
      }
      Out.Projects.push_back(std::move(PR));
    }
    return Out;
  }
  ThreadPool Pool(Jobs);
  for (const workload::Project &P : workload::paperCorpus(Scale)) {
    ProjectResult PR;
    PR.Project = P;
    driver::DriverOptions POpts = DOpts;
    POpts.ExchangeTag = P.Name; // project-unique exchange file names
    driver::BatchReport Rep = driver::runBatchValidated(
        Bugs, POpts, P.numModules(),
        [&P](size_t M) {
          return workload::generateProjectModule(P,
                                                 static_cast<unsigned>(M));
        },
        {}, &Pool);
    PR.Stats = std::move(Rep.Stats);
    Out.Projects.push_back(std::move(PR));
  }
  return Out;
}

inline unsigned scaleFromArgs(int Argc, char **Argv, unsigned Default = 1) {
  if (Argc > 1)
    return static_cast<unsigned>(std::strtoul(Argv[1], nullptr, 10));
  return Default;
}

/// The pass rows the paper reports for a configuration.
inline std::vector<std::string> passRows(bool With501Subset) {
  if (With501Subset)
    return {"mem2reg", "gvn", "licm"}; // paper omits instcombine for 5.0.1
  return {"mem2reg", "gvn", "licm", "instcombine"};
}

} // namespace bench
} // namespace crellvm

#endif // CRELLVM_BENCH_COMMON_H
