//===- bench/ValidationCacheBench.cpp - cold vs warm cache ------*- C++ -*-===//
//
// The headline experiment for the validation cache (DESIGN.md §10): run a
// CSmith-style random corpus plus the micro-opt-heavy paper corpus mix
// through the full Fig. 1 protocol twice against the same read-write
// cache directory —
//
//   cold   fresh cache: every unit validates (Orig/PCal/I-O/PCheck) and
//          populates the store;
//   warm   the CI-style re-validation of an unchanged corpus: every
//          lookup hits, PCheck / I-O / Orig are skipped, only the
//          proof-generating compiler and the fingerprint run.
//
// Verdict counts (#V/#F/#NS) must be identical between the two runs —
// the cache memoizes answers, it never changes them — and warm must be
// at least 5x faster. Results are appended to BENCH_validation.json
// (bench/BenchJson.h) as the `cache_cold` / `cache_warm` entries.
//
//   validation_cache [scale] [--jobs N]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "bench/Common.h"
#include "cache/ValidationCache.h"

#include <cstring>
#include <filesystem>

#include <unistd.h>

using namespace crellvm;
using namespace crellvm::bench;

namespace {

driver::BatchReport runCorpusOnce(cache::ValidationCache &Cache,
                                  unsigned NumModules, unsigned Jobs) {
  driver::DriverOptions DOpts;
  DOpts.WriteFiles = true; // the CI deployment exchanges files (I/O col)
  DOpts.Cache = &Cache;
  driver::BatchOptions BOpts;
  BOpts.Jobs = Jobs;
  // Mix: ~2/3 CSmith-style random programs (lifetime-intrinsic heavy),
  // ~1/3 micro-opt-trigger-rich modules (gep pairs, loop divisions) that
  // exercise the instcombine/gvn/licm rule catalog.
  return driver::runBatchValidated(
      passes::BugConfig::llvm371(), DOpts, NumModules,
      [](size_t I) {
        workload::GenOptions G;
        G.Seed = 0xcac4e + I;
        if (I % 3 != 2) {
          G.NumFunctions = 3;
          G.LifetimePct = 30;
          G.VecFunctionPct = 0;
          G.GepPairPct = 2;
        } else {
          G.GepPairPct = 60;
          G.LoopDivPct = 40;
          G.ConstexprStorePct = 12;
        }
        return workload::generateModule(G);
      },
      BOpts);
}

uint64_t countOf(const driver::StatsMap &Stats,
                 uint64_t driver::PassStats::*Field) {
  uint64_t N = 0;
  for (const auto &KV : Stats)
    N += KV.second.*Field;
  return N;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Scale = 1, Jobs = 1;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      Jobs = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    else
      Scale = static_cast<unsigned>(std::strtoul(Argv[I], nullptr, 10));
  }
  if (Scale == 0)
    Scale = 1;
  unsigned NumModules = 600 / Scale;
  if (NumModules == 0)
    NumModules = 1;

  std::string Dir =
      (std::filesystem::temp_directory_path() /
       ("crellvm-cache-bench." + std::to_string(::getpid())))
          .string();
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);

  cache::ValidationCacheOptions COpts;
  COpts.Policy = cache::CachePolicy::ReadWrite;
  COpts.Dir = Dir;

  std::cout << "=== Validation cache: cold vs warm re-validation ===\n"
            << NumModules << " modules, -O2 pipeline, file exchange on, "
            << "bugs=" << passes::BugConfig::llvm371().str() << ", jobs="
            << Jobs << "\n\n";

  // Cold: fresh store, every verdict computed and persisted. A fresh
  // ValidationCache per run, so the warm run's memory tier starts empty
  // and hits come from the *disk* store, like a new CI process would.
  driver::BatchReport Cold, Warm;
  {
    cache::ValidationCache Cache(COpts);
    Cold = runCorpusOnce(Cache, NumModules, Jobs);
  }
  {
    cache::ValidationCache Cache(COpts);
    Warm = runCorpusOnce(Cache, NumModules, Jobs);
  }

  Table T({"run", "wall", "cpu", "#V", "#F", "#NS", "hit rate"});
  for (auto *RP : {&Cold, &Warm}) {
    const driver::BatchReport &R = *RP;
    uint64_t Hits = countOf(R.Stats, &driver::PassStats::CacheHits);
    uint64_t Lookups =
        Hits + countOf(R.Stats, &driver::PassStats::CacheMisses);
    T.addRow({RP == &Cold ? "cold" : "warm", formatSeconds(R.WallSeconds),
              formatSeconds(R.CpuSeconds),
              formatCountK(countOf(R.Stats, &driver::PassStats::V)),
              formatCountK(countOf(R.Stats, &driver::PassStats::F)),
              formatCountK(countOf(R.Stats, &driver::PassStats::NS)),
              formatPercent(Lookups ? double(Hits) / Lookups : 0)});
  }
  T.print(std::cout);

  double Speedup =
      Warm.WallSeconds > 0 ? Cold.WallSeconds / Warm.WallSeconds : 0;
  bool CountsAgree =
      countOf(Cold.Stats, &driver::PassStats::V) ==
          countOf(Warm.Stats, &driver::PassStats::V) &&
      countOf(Cold.Stats, &driver::PassStats::F) ==
          countOf(Warm.Stats, &driver::PassStats::F) &&
      countOf(Cold.Stats, &driver::PassStats::NS) ==
          countOf(Warm.Stats, &driver::PassStats::NS);
  uint64_t WarmMisses = countOf(Warm.Stats, &driver::PassStats::CacheMisses);

  std::cout << "\nwarm speedup: " << formatSeconds(Cold.WallSeconds) << " / "
            << formatSeconds(Warm.WallSeconds) << " = "
            << static_cast<int>(Speedup * 10) / 10.0 << "x\n";
  std::cout << "paper-shape: warm-at-least-5x=" << (Speedup >= 5 ? "OK" : "MISMATCH")
            << ", counts-identical=" << (CountsAgree ? "OK" : "MISMATCH")
            << ", warm-all-hits=" << (WarmMisses == 0 ? "OK" : "MISMATCH")
            << "\n";

  writeBenchJson({BenchEntry::fromReport("cache_cold", Cold),
                  BenchEntry::fromReport("cache_warm", Warm)});

  std::filesystem::remove_all(Dir, EC);
  return Speedup >= 5 && CountsAgree && WarmMisses == 0 ? 0 : 1;
}
