//===- bench/AuditSmoke.cpp - Audit battery in the bench trajectory -------===//
//
// Runs a small soundness-audit battery (src/audit/) and appends its
// headline numbers to BENCH_validation.json, so the audit's check count
// and finding count ride the same perf/quality trajectory as the
// validation benches. Exits nonzero on findings: the CI sanitizer job
// runs this binary as its audit smoke target.
//
// usage: audit_smoke [rounds] [seed]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "audit/Audit.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>

using namespace crellvm;

int main(int Argc, char **Argv) {
  audit::AuditOptions Opts;
  Opts.Rounds = Argc > 1 ? static_cast<unsigned>(std::atoi(Argv[1])) : 5;
  Opts.Seed = Argc > 2 ? static_cast<uint64_t>(std::atoll(Argv[2])) : 1;

  Timer Wall;
  audit::AuditReport R = Wall.time([&] { return audit::runAudit(Opts); });

  std::printf("audit_smoke: %llu checks, %llu pass steps, %llu findings "
              "in %.2fs\n",
              static_cast<unsigned long long>(R.ChecksRun),
              static_cast<unsigned long long>(R.StepsVerified),
              static_cast<unsigned long long>(R.Findings.size()),
              Wall.seconds());
  for (const audit::Finding &F : R.Findings)
    std::printf("  [%s] %s: %s\n", F.Severity.c_str(), F.Invariant.c_str(),
                F.Detail.c_str());

  bench::BenchEntry E;
  E.Name = "soundness_audit";
  E.WallSeconds = Wall.seconds();
  E.CpuSeconds = Wall.seconds();
  E.V = R.ChecksRun;
  E.F = R.Findings.size();
  bench::writeBenchJson({E});

  std::printf("paper-shape: audit %s — every invariant the verified "
              "checker's Coq proof would discharge holds on this tree\n",
              R.clean() ? "CLEAN" : "VIOLATED");
  return R.clean() ? 0 : 1;
}
