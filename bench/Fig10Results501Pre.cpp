//===- bench/Fig10Results501Pre.cpp - paper Figure 10 analog --------------------===//
//
// Fig. 10: per-benchmark results for LLVM 5.0.1 before the GVN patch.
// See DESIGN.md for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
//
//===----------------------------------------------------------------------===//

#include "bench/Tables.h"

using namespace crellvm;
using namespace crellvm::bench;

int main(int Argc, char **Argv) {
  unsigned Scale = scaleFromArgs(Argc, Argv);
  passes::BugConfig Bugs = passes::BugConfig::llvm501PreGvnPatch();
  std::cout << "=== Figure 10 analog ===\n"
            << "bug configuration: " << Bugs.str() << "\n"
            << "(synthetic corpus, scale " << Scale
            << "; see DESIGN.md section 3 for the substitution)\n\n";
  CorpusResult R = runCorpus(Bugs, Scale);
  auto Passes = passRows(true);
  printResultsTable(std::cout, R, Passes);
  std::cout << "\n";
  printShapeLine(std::cout, R, Passes,
                 /*ExpectMem2RegF=*/0, /*ExpectGvnF=*/0,
                 /*ExpectGvnFailures=*/true);
  return 0;
}
