//===- bench/Fig09Summary501Pre.cpp - paper Figure 9 analog --------------------===//
//
// Fig. 9: results for LLVM 5.0.1 before the D38619 GVN patch.
// See DESIGN.md for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
//
//===----------------------------------------------------------------------===//

#include "bench/Tables.h"

using namespace crellvm;
using namespace crellvm::bench;

int main(int Argc, char **Argv) {
  unsigned Scale = scaleFromArgs(Argc, Argv);
  passes::BugConfig Bugs = passes::BugConfig::llvm501PreGvnPatch();
  std::cout << "=== Figure 9 analog ===\n"
            << "bug configuration: " << Bugs.str() << "\n"
            << "(synthetic corpus, scale " << Scale
            << "; see DESIGN.md section 3 for the substitution)\n\n";
  CorpusResult R = runCorpus(Bugs, Scale);
  auto Passes = passRows(true);
  printSummaryTable(std::cout, R, Passes);
  std::cout << "\n";
  printShapeLine(std::cout, R, Passes,
                 /*ExpectMem2RegF=*/0, /*ExpectGvnF=*/0,
                 /*ExpectGvnFailures=*/true);
  return 0;
}
