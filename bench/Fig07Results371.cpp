//===- bench/Fig07Results371.cpp - paper Figure 7 analog --------------------===//
//
// Fig. 7: per-benchmark validation results for LLVM 3.7.1.
// See DESIGN.md for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
//
//===----------------------------------------------------------------------===//

#include "bench/Tables.h"

using namespace crellvm;
using namespace crellvm::bench;

int main(int Argc, char **Argv) {
  unsigned Scale = scaleFromArgs(Argc, Argv);
  passes::BugConfig Bugs = passes::BugConfig::llvm371();
  std::cout << "=== Figure 7 analog ===\n"
            << "bug configuration: " << Bugs.str() << "\n"
            << "(synthetic corpus, scale " << Scale
            << "; see DESIGN.md section 3 for the substitution)\n\n";
  CorpusResult R = runCorpus(Bugs, Scale);
  auto Passes = passRows(false);
  printResultsTable(std::cout, R, Passes);
  std::cout << "\n";
  printShapeLine(std::cout, R, Passes,
                 /*ExpectMem2RegF=*/1, /*ExpectGvnF=*/0,
                 /*ExpectGvnFailures=*/true);
  return 0;
}
