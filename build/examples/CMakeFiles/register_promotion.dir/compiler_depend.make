# Empty compiler generated dependencies file for register_promotion.
# This may be replaced when dependencies are built.
