file(REMOVE_RECURSE
  "CMakeFiles/register_promotion.dir/register_promotion.cpp.o"
  "CMakeFiles/register_promotion.dir/register_promotion.cpp.o.d"
  "register_promotion"
  "register_promotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/register_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
