
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/register_promotion.cpp" "examples/CMakeFiles/register_promotion.dir/register_promotion.cpp.o" "gcc" "examples/CMakeFiles/register_promotion.dir/register_promotion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/crellvm_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/crellvm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/difftool/CMakeFiles/crellvm_difftool.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/crellvm_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/crellvm_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/proofgen/CMakeFiles/crellvm_proofgen.dir/DependInfo.cmake"
  "/root/repo/build/src/erhl/CMakeFiles/crellvm_erhl.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/crellvm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/crellvm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/crellvm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/crellvm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/crellvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
