# Empty dependencies file for validated_pipeline.
# This may be replaced when dependencies are built.
