file(REMOVE_RECURSE
  "CMakeFiles/validated_pipeline.dir/validated_pipeline.cpp.o"
  "CMakeFiles/validated_pipeline.dir/validated_pipeline.cpp.o.d"
  "validated_pipeline"
  "validated_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validated_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
