# Empty dependencies file for catch_miscompilation.
# This may be replaced when dependencies are built.
