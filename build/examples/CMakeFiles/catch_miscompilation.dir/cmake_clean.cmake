file(REMOVE_RECURSE
  "CMakeFiles/catch_miscompilation.dir/catch_miscompilation.cpp.o"
  "CMakeFiles/catch_miscompilation.dir/catch_miscompilation.cpp.o.d"
  "catch_miscompilation"
  "catch_miscompilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catch_miscompilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
