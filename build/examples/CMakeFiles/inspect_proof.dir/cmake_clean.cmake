file(REMOVE_RECURSE
  "CMakeFiles/inspect_proof.dir/inspect_proof.cpp.o"
  "CMakeFiles/inspect_proof.dir/inspect_proof.cpp.o.d"
  "inspect_proof"
  "inspect_proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
