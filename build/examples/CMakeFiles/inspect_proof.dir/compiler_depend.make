# Empty compiler generated dependencies file for inspect_proof.
# This may be replaced when dependencies are built.
