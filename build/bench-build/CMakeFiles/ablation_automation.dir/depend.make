# Empty dependencies file for ablation_automation.
# This may be replaced when dependencies are built.
