# Empty compiler generated dependencies file for fig13_results_501post.
# This may be replaced when dependencies are built.
