file(REMOVE_RECURSE
  "../bench/fig13_results_501post"
  "../bench/fig13_results_501post.pdb"
  "CMakeFiles/fig13_results_501post.dir/Fig13Results501Post.cpp.o"
  "CMakeFiles/fig13_results_501post.dir/Fig13Results501Post.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_results_501post.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
