file(REMOVE_RECURSE
  "../bench/testing_vs_validation"
  "../bench/testing_vs_validation.pdb"
  "CMakeFiles/testing_vs_validation.dir/TestingVsValidation.cpp.o"
  "CMakeFiles/testing_vs_validation.dir/TestingVsValidation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testing_vs_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
