# Empty compiler generated dependencies file for testing_vs_validation.
# This may be replaced when dependencies are built.
