file(REMOVE_RECURSE
  "../bench/ablation_proof_format"
  "../bench/ablation_proof_format.pdb"
  "CMakeFiles/ablation_proof_format.dir/AblationProofFormat.cpp.o"
  "CMakeFiles/ablation_proof_format.dir/AblationProofFormat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_proof_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
