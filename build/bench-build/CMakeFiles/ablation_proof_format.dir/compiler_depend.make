# Empty compiler generated dependencies file for ablation_proof_format.
# This may be replaced when dependencies are built.
