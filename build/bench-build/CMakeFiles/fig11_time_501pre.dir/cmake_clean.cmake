file(REMOVE_RECURSE
  "../bench/fig11_time_501pre"
  "../bench/fig11_time_501pre.pdb"
  "CMakeFiles/fig11_time_501pre.dir/Fig11Time501Pre.cpp.o"
  "CMakeFiles/fig11_time_501pre.dir/Fig11Time501Pre.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_time_501pre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
