# Empty dependencies file for fig11_time_501pre.
# This may be replaced when dependencies are built.
