file(REMOVE_RECURSE
  "../bench/fig14_time_501post"
  "../bench/fig14_time_501post.pdb"
  "CMakeFiles/fig14_time_501post.dir/Fig14Time501Post.cpp.o"
  "CMakeFiles/fig14_time_501post.dir/Fig14Time501Post.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_time_501post.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
