# Empty dependencies file for fig14_time_501post.
# This may be replaced when dependencies are built.
