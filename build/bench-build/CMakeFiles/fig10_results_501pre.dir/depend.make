# Empty dependencies file for fig10_results_501pre.
# This may be replaced when dependencies are built.
