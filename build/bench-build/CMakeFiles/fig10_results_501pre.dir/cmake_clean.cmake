file(REMOVE_RECURSE
  "../bench/fig10_results_501pre"
  "../bench/fig10_results_501pre.pdb"
  "CMakeFiles/fig10_results_501pre.dir/Fig10Results501Pre.cpp.o"
  "CMakeFiles/fig10_results_501pre.dir/Fig10Results501Pre.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_results_501pre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
