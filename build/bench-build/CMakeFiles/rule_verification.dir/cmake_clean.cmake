file(REMOVE_RECURSE
  "../bench/rule_verification"
  "../bench/rule_verification.pdb"
  "CMakeFiles/rule_verification.dir/RuleVerification.cpp.o"
  "CMakeFiles/rule_verification.dir/RuleVerification.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
