# Empty compiler generated dependencies file for rule_verification.
# This may be replaced when dependencies are built.
