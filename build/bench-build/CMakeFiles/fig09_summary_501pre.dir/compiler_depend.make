# Empty compiler generated dependencies file for fig09_summary_501pre.
# This may be replaced when dependencies are built.
