file(REMOVE_RECURSE
  "../bench/fig09_summary_501pre"
  "../bench/fig09_summary_501pre.pdb"
  "CMakeFiles/fig09_summary_501pre.dir/Fig09Summary501Pre.cpp.o"
  "CMakeFiles/fig09_summary_501pre.dir/Fig09Summary501Pre.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_summary_501pre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
