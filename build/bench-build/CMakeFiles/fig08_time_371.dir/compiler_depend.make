# Empty compiler generated dependencies file for fig08_time_371.
# This may be replaced when dependencies are built.
