file(REMOVE_RECURSE
  "../bench/fig08_time_371"
  "../bench/fig08_time_371.pdb"
  "CMakeFiles/fig08_time_371.dir/Fig08Time371.cpp.o"
  "CMakeFiles/fig08_time_371.dir/Fig08Time371.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_time_371.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
