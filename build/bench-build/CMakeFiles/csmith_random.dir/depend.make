# Empty dependencies file for csmith_random.
# This may be replaced when dependencies are built.
