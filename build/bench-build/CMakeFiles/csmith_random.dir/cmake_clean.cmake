file(REMOVE_RECURSE
  "../bench/csmith_random"
  "../bench/csmith_random.pdb"
  "CMakeFiles/csmith_random.dir/CsmithRandom.cpp.o"
  "CMakeFiles/csmith_random.dir/CsmithRandom.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csmith_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
