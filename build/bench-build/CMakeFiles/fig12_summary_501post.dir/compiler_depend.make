# Empty compiler generated dependencies file for fig12_summary_501post.
# This may be replaced when dependencies are built.
