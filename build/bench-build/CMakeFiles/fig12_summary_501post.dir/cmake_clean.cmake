file(REMOVE_RECURSE
  "../bench/fig12_summary_501post"
  "../bench/fig12_summary_501post.pdb"
  "CMakeFiles/fig12_summary_501post.dir/Fig12Summary501Post.cpp.o"
  "CMakeFiles/fig12_summary_501post.dir/Fig12Summary501Post.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_summary_501post.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
