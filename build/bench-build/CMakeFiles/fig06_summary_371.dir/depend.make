# Empty dependencies file for fig06_summary_371.
# This may be replaced when dependencies are built.
