file(REMOVE_RECURSE
  "../bench/fig06_summary_371"
  "../bench/fig06_summary_371.pdb"
  "CMakeFiles/fig06_summary_371.dir/Fig06Summary371.cpp.o"
  "CMakeFiles/fig06_summary_371.dir/Fig06Summary371.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_summary_371.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
