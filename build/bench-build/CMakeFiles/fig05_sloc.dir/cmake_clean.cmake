file(REMOVE_RECURSE
  "../bench/fig05_sloc"
  "../bench/fig05_sloc.pdb"
  "CMakeFiles/fig05_sloc.dir/Fig05Sloc.cpp.o"
  "CMakeFiles/fig05_sloc.dir/Fig05Sloc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_sloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
