# Empty compiler generated dependencies file for fig05_sloc.
# This may be replaced when dependencies are built.
