file(REMOVE_RECURSE
  "../bench/micro_checker"
  "../bench/micro_checker.pdb"
  "CMakeFiles/micro_checker.dir/MicroChecker.cpp.o"
  "CMakeFiles/micro_checker.dir/MicroChecker.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
