# Empty dependencies file for micro_checker.
# This may be replaced when dependencies are built.
