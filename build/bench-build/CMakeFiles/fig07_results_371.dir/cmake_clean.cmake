file(REMOVE_RECURSE
  "../bench/fig07_results_371"
  "../bench/fig07_results_371.pdb"
  "CMakeFiles/fig07_results_371.dir/Fig07Results371.cpp.o"
  "CMakeFiles/fig07_results_371.dir/Fig07Results371.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_results_371.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
