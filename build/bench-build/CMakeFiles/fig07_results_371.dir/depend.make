# Empty dependencies file for fig07_results_371.
# This may be replaced when dependencies are built.
