file(REMOVE_RECURSE
  "CMakeFiles/crellvm_support.dir/Format.cpp.o"
  "CMakeFiles/crellvm_support.dir/Format.cpp.o.d"
  "CMakeFiles/crellvm_support.dir/Sloc.cpp.o"
  "CMakeFiles/crellvm_support.dir/Sloc.cpp.o.d"
  "CMakeFiles/crellvm_support.dir/Table.cpp.o"
  "CMakeFiles/crellvm_support.dir/Table.cpp.o.d"
  "libcrellvm_support.a"
  "libcrellvm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crellvm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
