# Empty compiler generated dependencies file for crellvm_support.
# This may be replaced when dependencies are built.
