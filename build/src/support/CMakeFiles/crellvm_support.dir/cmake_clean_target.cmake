file(REMOVE_RECURSE
  "libcrellvm_support.a"
)
