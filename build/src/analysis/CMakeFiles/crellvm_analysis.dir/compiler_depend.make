# Empty compiler generated dependencies file for crellvm_analysis.
# This may be replaced when dependencies are built.
