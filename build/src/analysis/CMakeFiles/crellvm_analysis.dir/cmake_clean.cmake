file(REMOVE_RECURSE
  "CMakeFiles/crellvm_analysis.dir/CFG.cpp.o"
  "CMakeFiles/crellvm_analysis.dir/CFG.cpp.o.d"
  "CMakeFiles/crellvm_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/crellvm_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/crellvm_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/crellvm_analysis.dir/LoopInfo.cpp.o.d"
  "CMakeFiles/crellvm_analysis.dir/PointsBetween.cpp.o"
  "CMakeFiles/crellvm_analysis.dir/PointsBetween.cpp.o.d"
  "CMakeFiles/crellvm_analysis.dir/Verifier.cpp.o"
  "CMakeFiles/crellvm_analysis.dir/Verifier.cpp.o.d"
  "libcrellvm_analysis.a"
  "libcrellvm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crellvm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
