file(REMOVE_RECURSE
  "libcrellvm_analysis.a"
)
