
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proofgen/ProofBinary.cpp" "src/proofgen/CMakeFiles/crellvm_proofgen.dir/ProofBinary.cpp.o" "gcc" "src/proofgen/CMakeFiles/crellvm_proofgen.dir/ProofBinary.cpp.o.d"
  "/root/repo/src/proofgen/ProofBuilder.cpp" "src/proofgen/CMakeFiles/crellvm_proofgen.dir/ProofBuilder.cpp.o" "gcc" "src/proofgen/CMakeFiles/crellvm_proofgen.dir/ProofBuilder.cpp.o.d"
  "/root/repo/src/proofgen/ProofJson.cpp" "src/proofgen/CMakeFiles/crellvm_proofgen.dir/ProofJson.cpp.o" "gcc" "src/proofgen/CMakeFiles/crellvm_proofgen.dir/ProofJson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/erhl/CMakeFiles/crellvm_erhl.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/crellvm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/crellvm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/crellvm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/crellvm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/crellvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
