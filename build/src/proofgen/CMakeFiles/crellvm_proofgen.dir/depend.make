# Empty dependencies file for crellvm_proofgen.
# This may be replaced when dependencies are built.
