file(REMOVE_RECURSE
  "libcrellvm_proofgen.a"
)
