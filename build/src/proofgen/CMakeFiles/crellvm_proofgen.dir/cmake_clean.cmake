file(REMOVE_RECURSE
  "CMakeFiles/crellvm_proofgen.dir/ProofBinary.cpp.o"
  "CMakeFiles/crellvm_proofgen.dir/ProofBinary.cpp.o.d"
  "CMakeFiles/crellvm_proofgen.dir/ProofBuilder.cpp.o"
  "CMakeFiles/crellvm_proofgen.dir/ProofBuilder.cpp.o.d"
  "CMakeFiles/crellvm_proofgen.dir/ProofJson.cpp.o"
  "CMakeFiles/crellvm_proofgen.dir/ProofJson.cpp.o.d"
  "libcrellvm_proofgen.a"
  "libcrellvm_proofgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crellvm_proofgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
