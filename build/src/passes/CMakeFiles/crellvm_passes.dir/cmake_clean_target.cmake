file(REMOVE_RECURSE
  "libcrellvm_passes.a"
)
