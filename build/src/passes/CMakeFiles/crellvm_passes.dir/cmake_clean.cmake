file(REMOVE_RECURSE
  "CMakeFiles/crellvm_passes.dir/BugConfig.cpp.o"
  "CMakeFiles/crellvm_passes.dir/BugConfig.cpp.o.d"
  "CMakeFiles/crellvm_passes.dir/GVN.cpp.o"
  "CMakeFiles/crellvm_passes.dir/GVN.cpp.o.d"
  "CMakeFiles/crellvm_passes.dir/InstCombine.cpp.o"
  "CMakeFiles/crellvm_passes.dir/InstCombine.cpp.o.d"
  "CMakeFiles/crellvm_passes.dir/LICM.cpp.o"
  "CMakeFiles/crellvm_passes.dir/LICM.cpp.o.d"
  "CMakeFiles/crellvm_passes.dir/Mem2Reg.cpp.o"
  "CMakeFiles/crellvm_passes.dir/Mem2Reg.cpp.o.d"
  "CMakeFiles/crellvm_passes.dir/Pipeline.cpp.o"
  "CMakeFiles/crellvm_passes.dir/Pipeline.cpp.o.d"
  "libcrellvm_passes.a"
  "libcrellvm_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crellvm_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
