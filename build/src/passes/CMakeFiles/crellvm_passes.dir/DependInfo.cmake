
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/BugConfig.cpp" "src/passes/CMakeFiles/crellvm_passes.dir/BugConfig.cpp.o" "gcc" "src/passes/CMakeFiles/crellvm_passes.dir/BugConfig.cpp.o.d"
  "/root/repo/src/passes/GVN.cpp" "src/passes/CMakeFiles/crellvm_passes.dir/GVN.cpp.o" "gcc" "src/passes/CMakeFiles/crellvm_passes.dir/GVN.cpp.o.d"
  "/root/repo/src/passes/InstCombine.cpp" "src/passes/CMakeFiles/crellvm_passes.dir/InstCombine.cpp.o" "gcc" "src/passes/CMakeFiles/crellvm_passes.dir/InstCombine.cpp.o.d"
  "/root/repo/src/passes/LICM.cpp" "src/passes/CMakeFiles/crellvm_passes.dir/LICM.cpp.o" "gcc" "src/passes/CMakeFiles/crellvm_passes.dir/LICM.cpp.o.d"
  "/root/repo/src/passes/Mem2Reg.cpp" "src/passes/CMakeFiles/crellvm_passes.dir/Mem2Reg.cpp.o" "gcc" "src/passes/CMakeFiles/crellvm_passes.dir/Mem2Reg.cpp.o.d"
  "/root/repo/src/passes/Pipeline.cpp" "src/passes/CMakeFiles/crellvm_passes.dir/Pipeline.cpp.o" "gcc" "src/passes/CMakeFiles/crellvm_passes.dir/Pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proofgen/CMakeFiles/crellvm_proofgen.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/crellvm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/erhl/CMakeFiles/crellvm_erhl.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/crellvm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/crellvm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/crellvm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/crellvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
