# Empty compiler generated dependencies file for crellvm_passes.
# This may be replaced when dependencies are built.
