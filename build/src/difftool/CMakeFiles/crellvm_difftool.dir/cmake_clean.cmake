file(REMOVE_RECURSE
  "CMakeFiles/crellvm_difftool.dir/Diff.cpp.o"
  "CMakeFiles/crellvm_difftool.dir/Diff.cpp.o.d"
  "libcrellvm_difftool.a"
  "libcrellvm_difftool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crellvm_difftool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
