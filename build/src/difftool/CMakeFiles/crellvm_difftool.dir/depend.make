# Empty dependencies file for crellvm_difftool.
# This may be replaced when dependencies are built.
