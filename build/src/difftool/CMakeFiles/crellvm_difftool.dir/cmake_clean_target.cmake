file(REMOVE_RECURSE
  "libcrellvm_difftool.a"
)
