file(REMOVE_RECURSE
  "CMakeFiles/crellvm_json.dir/Binary.cpp.o"
  "CMakeFiles/crellvm_json.dir/Binary.cpp.o.d"
  "CMakeFiles/crellvm_json.dir/Json.cpp.o"
  "CMakeFiles/crellvm_json.dir/Json.cpp.o.d"
  "libcrellvm_json.a"
  "libcrellvm_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crellvm_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
