# Empty dependencies file for crellvm_json.
# This may be replaced when dependencies are built.
