file(REMOVE_RECURSE
  "libcrellvm_json.a"
)
