file(REMOVE_RECURSE
  "CMakeFiles/crellvm_workload.dir/Corpus.cpp.o"
  "CMakeFiles/crellvm_workload.dir/Corpus.cpp.o.d"
  "CMakeFiles/crellvm_workload.dir/RandomProgram.cpp.o"
  "CMakeFiles/crellvm_workload.dir/RandomProgram.cpp.o.d"
  "libcrellvm_workload.a"
  "libcrellvm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crellvm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
