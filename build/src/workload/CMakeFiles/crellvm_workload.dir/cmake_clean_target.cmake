file(REMOVE_RECURSE
  "libcrellvm_workload.a"
)
