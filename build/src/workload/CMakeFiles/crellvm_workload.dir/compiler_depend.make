# Empty compiler generated dependencies file for crellvm_workload.
# This may be replaced when dependencies are built.
