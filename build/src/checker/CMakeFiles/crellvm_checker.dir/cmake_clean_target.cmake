file(REMOVE_RECURSE
  "libcrellvm_checker.a"
)
