file(REMOVE_RECURSE
  "CMakeFiles/crellvm_checker.dir/Automation.cpp.o"
  "CMakeFiles/crellvm_checker.dir/Automation.cpp.o.d"
  "CMakeFiles/crellvm_checker.dir/Postcond.cpp.o"
  "CMakeFiles/crellvm_checker.dir/Postcond.cpp.o.d"
  "CMakeFiles/crellvm_checker.dir/Validator.cpp.o"
  "CMakeFiles/crellvm_checker.dir/Validator.cpp.o.d"
  "libcrellvm_checker.a"
  "libcrellvm_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crellvm_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
