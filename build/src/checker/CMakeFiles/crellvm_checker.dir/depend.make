# Empty dependencies file for crellvm_checker.
# This may be replaced when dependencies are built.
