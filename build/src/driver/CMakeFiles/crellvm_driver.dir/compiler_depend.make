# Empty compiler generated dependencies file for crellvm_driver.
# This may be replaced when dependencies are built.
