file(REMOVE_RECURSE
  "CMakeFiles/crellvm_driver.dir/Driver.cpp.o"
  "CMakeFiles/crellvm_driver.dir/Driver.cpp.o.d"
  "libcrellvm_driver.a"
  "libcrellvm_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crellvm_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
