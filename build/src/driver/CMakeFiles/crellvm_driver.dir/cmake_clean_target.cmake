file(REMOVE_RECURSE
  "libcrellvm_driver.a"
)
