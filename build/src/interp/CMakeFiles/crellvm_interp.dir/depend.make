# Empty dependencies file for crellvm_interp.
# This may be replaced when dependencies are built.
