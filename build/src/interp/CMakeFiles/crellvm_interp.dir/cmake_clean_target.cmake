file(REMOVE_RECURSE
  "libcrellvm_interp.a"
)
