file(REMOVE_RECURSE
  "CMakeFiles/crellvm_interp.dir/Interp.cpp.o"
  "CMakeFiles/crellvm_interp.dir/Interp.cpp.o.d"
  "CMakeFiles/crellvm_interp.dir/Ops.cpp.o"
  "CMakeFiles/crellvm_interp.dir/Ops.cpp.o.d"
  "libcrellvm_interp.a"
  "libcrellvm_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crellvm_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
