file(REMOVE_RECURSE
  "libcrellvm_erhl.a"
)
