# Empty dependencies file for crellvm_erhl.
# This may be replaced when dependencies are built.
