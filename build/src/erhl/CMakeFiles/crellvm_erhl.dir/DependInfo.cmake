
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/erhl/Assertion.cpp" "src/erhl/CMakeFiles/crellvm_erhl.dir/Assertion.cpp.o" "gcc" "src/erhl/CMakeFiles/crellvm_erhl.dir/Assertion.cpp.o.d"
  "/root/repo/src/erhl/Eval.cpp" "src/erhl/CMakeFiles/crellvm_erhl.dir/Eval.cpp.o" "gcc" "src/erhl/CMakeFiles/crellvm_erhl.dir/Eval.cpp.o.d"
  "/root/repo/src/erhl/Infrule.cpp" "src/erhl/CMakeFiles/crellvm_erhl.dir/Infrule.cpp.o" "gcc" "src/erhl/CMakeFiles/crellvm_erhl.dir/Infrule.cpp.o.d"
  "/root/repo/src/erhl/RuleTester.cpp" "src/erhl/CMakeFiles/crellvm_erhl.dir/RuleTester.cpp.o" "gcc" "src/erhl/CMakeFiles/crellvm_erhl.dir/RuleTester.cpp.o.d"
  "/root/repo/src/erhl/Serialize.cpp" "src/erhl/CMakeFiles/crellvm_erhl.dir/Serialize.cpp.o" "gcc" "src/erhl/CMakeFiles/crellvm_erhl.dir/Serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/crellvm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/crellvm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/crellvm_json.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/crellvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
