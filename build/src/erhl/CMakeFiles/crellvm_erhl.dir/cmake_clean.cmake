file(REMOVE_RECURSE
  "CMakeFiles/crellvm_erhl.dir/Assertion.cpp.o"
  "CMakeFiles/crellvm_erhl.dir/Assertion.cpp.o.d"
  "CMakeFiles/crellvm_erhl.dir/Eval.cpp.o"
  "CMakeFiles/crellvm_erhl.dir/Eval.cpp.o.d"
  "CMakeFiles/crellvm_erhl.dir/Infrule.cpp.o"
  "CMakeFiles/crellvm_erhl.dir/Infrule.cpp.o.d"
  "CMakeFiles/crellvm_erhl.dir/RuleTester.cpp.o"
  "CMakeFiles/crellvm_erhl.dir/RuleTester.cpp.o.d"
  "CMakeFiles/crellvm_erhl.dir/Serialize.cpp.o"
  "CMakeFiles/crellvm_erhl.dir/Serialize.cpp.o.d"
  "libcrellvm_erhl.a"
  "libcrellvm_erhl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crellvm_erhl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
