file(REMOVE_RECURSE
  "CMakeFiles/crellvm_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/crellvm_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/crellvm_ir.dir/Instruction.cpp.o"
  "CMakeFiles/crellvm_ir.dir/Instruction.cpp.o.d"
  "CMakeFiles/crellvm_ir.dir/Module.cpp.o"
  "CMakeFiles/crellvm_ir.dir/Module.cpp.o.d"
  "CMakeFiles/crellvm_ir.dir/Opcode.cpp.o"
  "CMakeFiles/crellvm_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/crellvm_ir.dir/Parser.cpp.o"
  "CMakeFiles/crellvm_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/crellvm_ir.dir/Printer.cpp.o"
  "CMakeFiles/crellvm_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/crellvm_ir.dir/Value.cpp.o"
  "CMakeFiles/crellvm_ir.dir/Value.cpp.o.d"
  "libcrellvm_ir.a"
  "libcrellvm_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crellvm_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
