# Empty compiler generated dependencies file for crellvm_ir.
# This may be replaced when dependencies are built.
