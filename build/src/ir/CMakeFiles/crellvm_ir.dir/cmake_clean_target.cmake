file(REMOVE_RECURSE
  "libcrellvm_ir.a"
)
