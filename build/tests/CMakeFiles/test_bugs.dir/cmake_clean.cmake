file(REMOVE_RECURSE
  "CMakeFiles/test_bugs.dir/BugReproductionTest.cpp.o"
  "CMakeFiles/test_bugs.dir/BugReproductionTest.cpp.o.d"
  "test_bugs"
  "test_bugs.pdb"
  "test_bugs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
