# Empty compiler generated dependencies file for test_bugs.
# This may be replaced when dependencies are built.
