# Empty dependencies file for test_microopts.
# This may be replaced when dependencies are built.
