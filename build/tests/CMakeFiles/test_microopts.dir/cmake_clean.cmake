file(REMOVE_RECURSE
  "CMakeFiles/test_microopts.dir/MicroOptCatalogTest.cpp.o"
  "CMakeFiles/test_microopts.dir/MicroOptCatalogTest.cpp.o.d"
  "test_microopts"
  "test_microopts.pdb"
  "test_microopts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_microopts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
