# Empty dependencies file for test_prooffuzz.
# This may be replaced when dependencies are built.
