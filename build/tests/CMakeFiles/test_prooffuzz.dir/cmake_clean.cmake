file(REMOVE_RECURSE
  "CMakeFiles/test_prooffuzz.dir/ProofFuzzTest.cpp.o"
  "CMakeFiles/test_prooffuzz.dir/ProofFuzzTest.cpp.o.d"
  "test_prooffuzz"
  "test_prooffuzz.pdb"
  "test_prooffuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prooffuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
