# Empty compiler generated dependencies file for test_passedges.
# This may be replaced when dependencies are built.
