file(REMOVE_RECURSE
  "CMakeFiles/test_passedges.dir/PassEdgeCasesTest.cpp.o"
  "CMakeFiles/test_passedges.dir/PassEdgeCasesTest.cpp.o.d"
  "test_passedges"
  "test_passedges.pdb"
  "test_passedges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passedges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
