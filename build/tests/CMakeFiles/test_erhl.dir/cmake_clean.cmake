file(REMOVE_RECURSE
  "CMakeFiles/test_erhl.dir/ErhlTest.cpp.o"
  "CMakeFiles/test_erhl.dir/ErhlTest.cpp.o.d"
  "test_erhl"
  "test_erhl.pdb"
  "test_erhl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_erhl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
