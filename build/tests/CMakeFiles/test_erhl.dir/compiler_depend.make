# Empty compiler generated dependencies file for test_erhl.
# This may be replaced when dependencies are built.
