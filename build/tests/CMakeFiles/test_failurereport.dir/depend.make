# Empty dependencies file for test_failurereport.
# This may be replaced when dependencies are built.
