file(REMOVE_RECURSE
  "CMakeFiles/test_failurereport.dir/FailureReportTest.cpp.o"
  "CMakeFiles/test_failurereport.dir/FailureReportTest.cpp.o.d"
  "test_failurereport"
  "test_failurereport.pdb"
  "test_failurereport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failurereport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
