file(REMOVE_RECURSE
  "CMakeFiles/test_binary.dir/BinaryFormatTest.cpp.o"
  "CMakeFiles/test_binary.dir/BinaryFormatTest.cpp.o.d"
  "test_binary"
  "test_binary.pdb"
  "test_binary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
