file(REMOVE_RECURSE
  "CMakeFiles/test_foldphi.dir/FoldPhiTest.cpp.o"
  "CMakeFiles/test_foldphi.dir/FoldPhiTest.cpp.o.d"
  "test_foldphi"
  "test_foldphi.pdb"
  "test_foldphi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_foldphi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
