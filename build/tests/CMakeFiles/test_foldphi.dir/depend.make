# Empty dependencies file for test_foldphi.
# This may be replaced when dependencies are built.
