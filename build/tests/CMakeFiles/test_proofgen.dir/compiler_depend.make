# Empty compiler generated dependencies file for test_proofgen.
# This may be replaced when dependencies are built.
