file(REMOVE_RECURSE
  "CMakeFiles/test_proofgen.dir/ProofGenTest.cpp.o"
  "CMakeFiles/test_proofgen.dir/ProofGenTest.cpp.o.d"
  "test_proofgen"
  "test_proofgen.pdb"
  "test_proofgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proofgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
