# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_passes[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_bugs[1]_include.cmake")
include("/root/repo/build/tests/test_rules[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_erhl[1]_include.cmake")
include("/root/repo/build/tests/test_checker[1]_include.cmake")
include("/root/repo/build/tests/test_proofgen[1]_include.cmake")
include("/root/repo/build/tests/test_diff[1]_include.cmake")
include("/root/repo/build/tests/test_microopts[1]_include.cmake")
include("/root/repo/build/tests/test_foldphi[1]_include.cmake")
include("/root/repo/build/tests/test_passedges[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_binary[1]_include.cmake")
include("/root/repo/build/tests/test_prooffuzz[1]_include.cmake")
include("/root/repo/build/tests/test_failurereport[1]_include.cmake")
