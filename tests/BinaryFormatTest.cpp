//===- tests/BinaryFormatTest.cpp - Binary proof exchange ----------------------===//
//
// The compact binary JSON codec and the binary proof exchange built on
// it: varint/zigzag edges, string interning, hostile-input rejection
// (the proof file is untrusted), equivalence with the JSON text format
// on real proofs, and the driver running end to end in binary mode.
//
//===----------------------------------------------------------------------===//

#include "checker/Validator.h"
#include "driver/Driver.h"
#include "json/Binary.h"
#include "passes/Pipeline.h"
#include "proofgen/ProofBinary.h"
#include "proofgen/ProofJson.h"
#include "support/RNG.h"
#include "workload/RandomProgram.h"

#include <filesystem>
#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::json;

namespace {

std::string roundtripToText(const Value &V) {
  std::string Err;
  auto Back = decodeBinary(*encodeBinary(V), &Err);
  EXPECT_TRUE(Back) << Err;
  return Back ? Back->write() : "";
}

TEST(BinaryJson, Scalars) {
  EXPECT_EQ(roundtripToText(Value()), "null");
  EXPECT_EQ(roundtripToText(Value(true)), "true");
  EXPECT_EQ(roundtripToText(Value(false)), "false");
  EXPECT_EQ(roundtripToText(Value(int64_t(0))), "0");
  EXPECT_EQ(roundtripToText(Value(int64_t(-1))), "-1");
  EXPECT_EQ(roundtripToText(Value("hi")), "\"hi\"");
  EXPECT_EQ(roundtripToText(Value("")), "\"\"");
}

TEST(BinaryJson, IntegerExtremes) {
  for (int64_t I : {INT64_MIN, INT64_MIN + 1, int64_t(-129), int64_t(-128),
                    int64_t(-64), int64_t(63), int64_t(64), int64_t(127),
                    int64_t(128), int64_t(16383), int64_t(16384),
                    INT64_MAX - 1, INT64_MAX}) {
    std::string Err;
    auto Back = decodeBinary(*encodeBinary(Value(I)), &Err);
    ASSERT_TRUE(Back) << Err;
    EXPECT_EQ(Back->getInt(), I);
  }
}

TEST(BinaryJson, NestedStructures) {
  Value Obj = Value::object();
  Obj.set("name", Value("crellvm"));
  Value Arr = Value::array();
  for (int I = 0; I != 5; ++I)
    Arr.push(Value(int64_t(I * I)));
  Obj.set("squares", std::move(Arr));
  Value Inner = Value::object();
  Inner.set("deep", Value(true));
  Obj.set("nested", std::move(Inner));
  EXPECT_EQ(roundtripToText(Obj), Obj.write());
}

TEST(BinaryJson, StringInterningShrinksRepeats) {
  // The same long key/value repeated: after the first occurrence each
  // repeat costs a two-ish-byte reference.
  std::string Long(60, 'x');
  Value Arr = Value::array();
  for (int I = 0; I != 100; ++I)
    Arr.push(Value(Long));
  std::string Bytes = *encodeBinary(Arr);
  EXPECT_LT(Bytes.size(), Long.size() + 100 * 3 + 16);
  EXPECT_EQ(roundtripToText(Arr), Arr.write());
}

TEST(BinaryJson, ObjectKeyOrderIsPreserved) {
  Value Obj = Value::object();
  Obj.set("zzz", Value(int64_t(1)));
  Obj.set("aaa", Value(int64_t(2)));
  Obj.set("mmm", Value(int64_t(3)));
  auto Back = decodeBinary(*encodeBinary(Obj));
  ASSERT_TRUE(Back);
  ASSERT_EQ(Back->members().size(), 3u);
  EXPECT_EQ(Back->members()[0].first, "zzz");
  EXPECT_EQ(Back->members()[1].first, "aaa");
  EXPECT_EQ(Back->members()[2].first, "mmm");
}

TEST(BinaryJson, RandomValueFuzzRoundTrips) {
  RNG R(20260707);
  // Recursively build random values, biased toward the shapes proofs use.
  std::function<Value(unsigned)> Gen = [&](unsigned Depth) -> Value {
    uint64_t Roll = R.below(Depth >= 4 ? 5 : 8);
    switch (Roll) {
    case 0:
      return Value();
    case 1:
      return Value(R.below(2) == 0);
    case 2:
      return Value(static_cast<int64_t>(R.next()));
    case 3:
      return Value("reg" + std::to_string(R.below(12)));
    case 4: {
      std::string S;
      for (uint64_t I = 0, N = R.below(20); I != N; ++I)
        S.push_back(static_cast<char>(R.range(32, 126)));
      return Value(std::move(S));
    }
    case 5:
    case 6: {
      Value A = Value::array();
      for (uint64_t I = 0, N = R.below(6); I != N; ++I)
        A.push(Gen(Depth + 1));
      return A;
    }
    default: {
      Value O = Value::object();
      for (uint64_t I = 0, N = R.below(5); I != N; ++I)
        O.set("k" + std::to_string(R.below(8)), Gen(Depth + 1));
      return O;
    }
    }
  };
  for (int Trial = 0; Trial != 200; ++Trial) {
    Value V = Gen(0);
    EXPECT_EQ(roundtripToText(V), V.write());
  }
}

// --- hostile input ------------------------------------------------------------

TEST(BinaryJson, RejectsWrongMagic) {
  std::string Err;
  EXPECT_FALSE(decodeBinary("", &Err));
  EXPECT_FALSE(decodeBinary("CBJ", &Err));
  EXPECT_FALSE(decodeBinary("XXXX\x00", &Err));
  EXPECT_FALSE(decodeBinary("{\"json\": 1}", &Err));
  EXPECT_NE(Err.find("CBJ1"), std::string::npos);
}

TEST(BinaryJson, RejectsTruncation) {
  Value Obj = Value::object();
  Obj.set("key", Value("a string value"));
  Obj.set("num", Value(int64_t(123456789)));
  std::string Bytes = *encodeBinary(Obj);
  // Every strict prefix must fail cleanly, never crash or succeed.
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    std::string Err;
    EXPECT_FALSE(decodeBinary(Bytes.substr(0, Len), &Err))
        << "prefix of length " << Len << " decoded";
  }
  EXPECT_TRUE(decodeBinary(Bytes));
}

TEST(BinaryJson, RejectsTrailingGarbage) {
  std::string Bytes = *encodeBinary(Value(int64_t(7))) + "extra";
  std::string Err;
  EXPECT_FALSE(decodeBinary(Bytes, &Err));
  EXPECT_NE(Err.find("trailing"), std::string::npos);
}

TEST(BinaryJson, RejectsHostileCounts) {
  // Array claiming 2^40 elements with a 2-byte body.
  std::string Bytes = "CBJ1";
  Bytes.push_back(0x06); // array
  for (int I = 0; I != 5; ++I)
    Bytes.push_back(static_cast<char>(0x80)); // varint continuation
  Bytes.push_back(0x01);
  std::string Err;
  EXPECT_FALSE(decodeBinary(Bytes, &Err));
}

TEST(BinaryJson, RejectsOutOfRangeStringRef) {
  std::string Bytes = "CBJ1";
  Bytes.push_back(0x05); // string ref
  Bytes.push_back(0x09); // id 9, but the table is empty
  std::string Err;
  EXPECT_FALSE(decodeBinary(Bytes, &Err));
  EXPECT_NE(Err.find("reference"), std::string::npos);
}

TEST(BinaryJson, RejectsDepthBomb) {
  // 100k nested single-element arrays must not overflow the stack.
  std::string Bytes = "CBJ1";
  for (int I = 0; I != 100000; ++I) {
    Bytes.push_back(0x06);
    Bytes.push_back(0x01);
  }
  Bytes.push_back(0x00);
  std::string Err;
  EXPECT_FALSE(decodeBinary(Bytes, &Err));
  EXPECT_NE(Err.find("deep"), std::string::npos);
}

TEST(BinaryJson, RejectsMutatedRealProofBytesOrDecodesCleanly) {
  // Flip bytes of a real encoded proof: each mutation either fails with a
  // message, or still decodes — in which case the full untrusted pipeline
  // (proof deserialization + checker) must run without crashing.
  workload::GenOptions G;
  G.Seed = 77;
  ir::Module M = workload::generateModule(G);
  auto P = passes::makePass("mem2reg", passes::BugConfig::fixed());
  passes::PassResult PR = P->run(M, true);
  std::string Bytes = proofgen::proofToBinary(PR.Proof);
  RNG R(5);
  for (int Trial = 0; Trial != 300; ++Trial) {
    std::string Mut = Bytes;
    size_t Pos = R.below(Mut.size());
    Mut[Pos] = static_cast<char>(Mut[Pos] ^ (1 << R.below(8)));
    std::string Err;
    auto V = decodeBinary(Mut, &Err);
    if (!V) {
      EXPECT_FALSE(Err.empty());
      continue;
    }
    auto Proof = proofgen::proofFromJson(*V, &Err);
    if (Proof)
      checker::validate(M, PR.Tgt, *Proof);
  }
}

// --- encode/decode depth symmetry -----------------------------------------------

Value nest(unsigned Depth) {
  Value V; // null leaf
  for (unsigned I = 0; I != Depth; ++I) {
    Value A = Value::array();
    A.push(std::move(V));
    V = std::move(A);
  }
  return V;
}

TEST(BinaryJson, EncodeDepthLimitMatchesDecodeLimit) {
  // Exactly BinaryMaxDepth nested arrays round-trip...
  auto Bytes = encodeBinary(nest(BinaryMaxDepth));
  ASSERT_TRUE(Bytes);
  std::string Err;
  EXPECT_TRUE(decodeBinary(*Bytes, &Err)) << Err;
  // ...and one more level fails at *encode* time with the decoder's own
  // message: the encoder can never emit a frame its decoder rejects.
  EXPECT_FALSE(encodeBinary(nest(BinaryMaxDepth + 1), &Err));
  EXPECT_NE(Err.find("deep"), std::string::npos);
}

// --- session codecs (per-connection intern tables) ------------------------------

TEST(BinaryJson, SessionInterningPersistsAcrossFrames) {
  Value Obj = Value::object();
  Obj.set("a_reasonably_long_identifier", Value("shared_payload_string"));
  BinaryWriter W;
  BinaryReader R;
  auto First = W.encode(Obj);
  auto Second = W.encode(Obj);
  ASSERT_TRUE(First && Second);
  // Frame two back-references the session table instead of re-shipping
  // the strings.
  EXPECT_LT(Second->size(), First->size());
  for (const std::string &Frame : {*First, *Second}) {
    std::string Err;
    auto Back = R.decode(Frame, &Err);
    ASSERT_TRUE(Back) << Err;
    EXPECT_EQ(Back->write(), Obj.write());
  }
  // Both ends of the session agree on the table.
  EXPECT_EQ(W.internedStrings(), R.internedStrings());
  EXPECT_EQ(W.internedStrings(), 2u);
}

TEST(BinaryJson, SessionReaderRollsBackOnBadFrame) {
  BinaryWriter W;
  BinaryReader R;
  Value V1 = Value::object();
  V1.set("first_key", Value("first_value"));
  auto F1 = W.encode(V1);
  ASSERT_TRUE(F1 && R.decode(*F1));
  size_t TableBefore = R.internedStrings();

  Value V2 = Value::object();
  V2.set("second_key", Value("second_value"));
  auto F2 = W.encode(V2);
  ASSERT_TRUE(F2);
  // A truncated frame fails mid-decode after interning new strings; the
  // reader must roll its table back so the session is not desynced...
  EXPECT_FALSE(R.decode(F2->substr(0, F2->size() - 1)));
  EXPECT_EQ(R.internedStrings(), TableBefore);
  // ...and the intact retransmission of the same frame still decodes in
  // lockstep with the writer's table.
  auto Back = R.decode(*F2);
  ASSERT_TRUE(Back);
  EXPECT_EQ(Back->write(), V2.write());
  EXPECT_EQ(W.internedStrings(), R.internedStrings());
}

TEST(BinaryJson, DecodedRepeatsShareOneAllocation) {
  // The zero-copy slice: every TStringRef occurrence of an interned
  // string resolves to the *same* shared buffer, not a copy.
  Value Arr = Value::array();
  for (int I = 0; I != 3; ++I)
    Arr.push(Value("the_interned_identifier"));
  auto Back = decodeBinary(*encodeBinary(Arr));
  ASSERT_TRUE(Back);
  ASSERT_EQ(Back->elements().size(), 3u);
  auto S0 = Back->elements()[0].sharedString();
  auto S1 = Back->elements()[1].sharedString();
  auto S2 = Back->elements()[2].sharedString();
  ASSERT_TRUE(S0 && S1 && S2);
  EXPECT_EQ(S0.get(), S1.get());
  EXPECT_EQ(S0.get(), S2.get());
  EXPECT_EQ(*S0, "the_interned_identifier");
}

// --- the proof exchange ---------------------------------------------------------

TEST(BinaryProof, AgreesWithJsonOnRealProofs) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    workload::GenOptions G;
    G.Seed = Seed;
    ir::Module M = workload::generateModule(G);
    for (const char *PassName : {"mem2reg", "instcombine", "gvn", "licm"}) {
      auto P = passes::makePass(PassName, passes::BugConfig::fixed());
      proofgen::Proof Pr = P->run(M, true).Proof;
      std::string Err;
      auto Back = proofgen::proofFromBinary(proofgen::proofToBinary(Pr),
                                            &Err);
      ASSERT_TRUE(Back) << PassName << " seed " << Seed << ": " << Err;
      // The deterministic JSON text is the canonical comparison form.
      EXPECT_EQ(proofgen::proofToText(*Back), proofgen::proofToText(Pr))
          << PassName << " seed " << Seed;
    }
  }
}

TEST(BinaryProof, IsSmallerThanJsonText) {
  workload::GenOptions G;
  G.Seed = 3;
  ir::Module M = workload::generateModule(G);
  auto P = passes::makePass("gvn", passes::BugConfig::fixed());
  proofgen::Proof Pr = P->run(M, true).Proof;
  std::string Text = proofgen::proofToText(Pr);
  std::string Bin = proofgen::proofToBinary(Pr);
  EXPECT_LT(Bin.size() * 2, Text.size())
      << "binary " << Bin.size() << " vs text " << Text.size();
}

TEST(BinaryProof, DriverRunsTheFullExchangeInBinaryMode) {
  driver::DriverOptions Opts;
  Opts.WriteFiles = true;
  Opts.BinaryProofs = true;
  Opts.ExchangeDir =
      (std::filesystem::temp_directory_path() / "crellvm-binproof-test")
          .string();
  driver::ValidationDriver D(passes::BugConfig::fixed(), Opts);
  driver::StatsMap Stats;
  for (uint64_t Seed = 200; Seed != 205; ++Seed) {
    workload::GenOptions G;
    G.Seed = Seed;
    D.runPipelineValidated(workload::generateModule(G), Stats);
  }
  ASSERT_FALSE(Stats.empty());
  for (const auto &KV : Stats) {
    EXPECT_EQ(KV.second.F, 0u)
        << KV.first << ": "
        << (KV.second.FailureSamples.empty() ? ""
                                             : KV.second.FailureSamples[0]);
    EXPECT_EQ(KV.second.DiffMismatches, 0u) << KV.first;
    EXPECT_GT(KV.second.IO, 0.0) << KV.first;
  }
}

} // namespace
