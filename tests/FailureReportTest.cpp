//===- tests/FailureReportTest.cpp - "pinpoints the bug" claims ----------------===//
//
// The paper's pitch (§1) is not just that validation *fails* on a
// miscompilation but that the failure comes with a usable diagnosis: the
// function, the block and line, and the logical fact the checker could
// not establish. These tests pin that quality down for each historical
// bug and for corrupted proofs, so a refactor cannot silently degrade the
// reports to "validation failed".
//
//===----------------------------------------------------------------------===//

#include "checker/Validator.h"
#include "ir/Parser.h"
#include "passes/Pipeline.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::passes;

namespace {

ir::Module parse(const std::string &Text) {
  std::string Err;
  auto M = ir::parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  return *M;
}

checker::FunctionResult failureOf(const char *PassName, const char *Text,
                                  const BugConfig &Bugs) {
  ir::Module Src = parse(Text);
  auto P = makePass(PassName, Bugs);
  PassResult PR = P->run(Src, /*GenProof=*/true);
  auto VR = checker::validate(Src, PR.Tgt, PR.Proof);
  for (const auto &KV : VR.Functions)
    if (KV.second.Status == checker::ValidationStatus::Failed)
      return KV.second;
  ADD_FAILURE() << "expected a validation failure";
  return {};
}

TEST(FailureReport, Pr28562NamesTheBlockLineAndMissingFact) {
  checker::FunctionResult F = failureOf("gvn", R"(
declare void @bar(ptr, ptr)
define void @gb(ptr %p) {
entry:
  %q1 = gep inbounds ptr %p, i64 2
  %q2 = gep ptr %p, i64 2
  call void @bar(ptr %q1, ptr %q2)
  ret void
}
)",
                                        BugConfig::llvm371());
  // Location: the failing line sits in @gb's entry block.
  EXPECT_NE(F.Where.find("entry:"), std::string::npos) << F.Where;
  // Reason: the logical fact involves the merged register %q2.
  EXPECT_NE(F.Reason.find("%q2"), std::string::npos) << F.Reason;
}

TEST(FailureReport, D38619NamesTheInsertedDivision) {
  checker::FunctionResult F = failureOf("gvn", R"(
declare void @sink(i32)
define i32 @pi(i32 %n, i32 %d, i1 %c) {
entry:
  br i1 %c, label %left, label %right
left:
  %y1 = sdiv i32 %n, %d
  call void @sink(i32 %y1)
  br label %exit
right:
  br label %exit
exit:
  %y3 = sdiv i32 %n, %d
  call void @sink(i32 %y3)
  ret i32 %y3
}
)",
                                        BugConfig::llvm371());
  // The report points into the predecessor where PRE inserted the
  // division and says what kind of command is at fault.
  EXPECT_NE(F.Where.find("right"), std::string::npos) << F.Where;
  EXPECT_NE(F.Reason.find("division"), std::string::npos) << F.Reason;
}

TEST(FailureReport, Pr24179PointsIntoTheLoop) {
  checker::FunctionResult F = failureOf("mem2reg", R"(
declare void @sink(i32)
declare i1 @cond()
declare i32 @get()
define void @h() {
entry:
  %p = alloca i32, 1
  br label %loop
loop:
  %v = load i32, ptr %p
  call void @sink(i32 %v)
  %x = call i32 @get()
  store i32 %x, ptr %p
  %c = call i1 @cond()
  br i1 %c, label %loop, label %done
done:
  ret void
}
)",
                                        BugConfig::llvm371());
  // The broken promotion loses the store around the back edge; the
  // diagnosis lands in the loop block.
  EXPECT_NE(F.Where.find("loop"), std::string::npos) << F.Where;
  EXPECT_FALSE(F.Reason.empty());
}

TEST(FailureReport, CorruptedProofNamesTheCorruptedLine) {
  // Corrupt one rule argument of a valid proof: the report must point at
  // the line whose inclusion check breaks, not at some unrelated place.
  ir::Module Src = parse(R"(
declare void @foo(i32)
define void @f(i32 %a) {
entry:
  %x = add i32 %a, 0
  call void @foo(i32 %x)
  ret void
}
)");
  auto P = makePass("instcombine", BugConfig::fixed());
  PassResult PR = P->run(Src, true);
  ASSERT_EQ(checker::validate(Src, PR.Tgt, PR.Proof).countFailed(), 0u);
  proofgen::BlockProof &BP = PR.Proof.Functions.at("f").Blocks.at("entry");
  bool Corrupted = false;
  for (proofgen::LineEntry &L : BP.Lines)
    for (erhl::Infrule &R : L.Rules)
      if (!R.Args.empty() && !Corrupted &&
          R.K == erhl::InfruleKind::AddZero) {
        // Claim the fold was about a different register.
        R.Args[1] = erhl::Expr::val(
            erhl::ValT::phy(ir::Value::reg("bogus", ir::Type::intTy(32))));
        Corrupted = true;
      }
  ASSERT_TRUE(Corrupted);
  auto VR = checker::validate(Src, PR.Tgt, PR.Proof);
  ASSERT_EQ(VR.countFailed(), 1u);
  const checker::FunctionResult &F = VR.Functions.at("f");
  EXPECT_NE(F.Where.find("entry"), std::string::npos) << F.Where;
  EXPECT_FALSE(F.Reason.empty());
}

TEST(FailureReport, NotSupportedCarriesItsReason) {
  ir::Module Src = parse(R"(
declare void @vsink(<4 x i32>)
define void @v(<4 x i32> %a) {
entry:
  %x = add <4 x i32> %a, %a
  call void @vsink(<4 x i32> %x)
  ret void
}
)");
  auto P = makePass("instcombine", BugConfig::fixed());
  PassResult PR = P->run(Src, true);
  auto VR = checker::validate(Src, PR.Tgt, PR.Proof);
  ASSERT_EQ(VR.countNotSupported(), 1u);
  const checker::FunctionResult &F = VR.Functions.at("v");
  EXPECT_NE(F.Reason.find("vector"), std::string::npos) << F.Reason;
}

} // namespace
