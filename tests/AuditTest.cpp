//===- tests/AuditTest.cpp - Soundness self-audit tests --------------------===//
//
// The audit subsystem's own contract: a fixed tree audits clean, any
// planted bug (historical preset or the test-only unsound rewrite)
// surfaces as at least one structured finding, and the JSON report
// carries every field tooling needs.
//
//===----------------------------------------------------------------------===//

#include "audit/Audit.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::audit;

namespace {

AuditOptions opts(unsigned Rounds, passes::BugConfig Bugs) {
  AuditOptions O;
  O.Seed = 1;
  O.Rounds = Rounds;
  O.Bugs = Bugs;
  return O;
}

TEST(Audit, FixedTreeIsClean) {
  AuditReport R = runAudit(opts(6, passes::BugConfig::fixed()));
  EXPECT_TRUE(R.clean()) << R.Findings.size() << " findings, first: "
                         << (R.Findings.empty()
                                 ? ""
                                 : R.Findings[0].Invariant + ": " +
                                       R.Findings[0].Detail);
  EXPECT_EQ(R.RoundsRun, 6u);
  EXPECT_GT(R.ModulesAudited, 6u); // rounds + adversarial corpus
  EXPECT_GT(R.StepsVerified, 0u);
  EXPECT_GT(R.ChecksRun, 1000u); // the evaluator battery alone is large
}

TEST(Audit, DeterministicForAGivenSeed) {
  AuditReport A = runAudit(opts(3, passes::BugConfig::fixed()));
  AuditReport B = runAudit(opts(3, passes::BugConfig::fixed()));
  EXPECT_EQ(A.ChecksRun, B.ChecksRun);
  EXPECT_EQ(A.Findings.size(), B.Findings.size());
  EXPECT_EQ(A.StepsVerified, B.StepsVerified);
}

// Every historical preset plants pass bugs whose proofs the checker
// rejects; the audit must convert those rejections into findings.
TEST(Audit, PlantedHistoricalBugsAreReported) {
  AuditReport R = runAudit(opts(12, passes::BugConfig::llvm371()));
  ASSERT_FALSE(R.clean());
  bool SawCheckerFinding = false;
  for (const Finding &F : R.Findings)
    SawCheckerFinding |= F.Invariant == "checker-accept";
  EXPECT_TRUE(SawCheckerFinding)
      << "first finding: " << R.Findings[0].Invariant << ": "
      << R.Findings[0].Detail;
}

// The test-only unsound add->or rewrite is rejected by the strict
// checker, so enabling just that flag must also produce findings.
TEST(Audit, UnsoundAddToOrIsReported) {
  passes::BugConfig Bugs;
  Bugs.UnsoundAddToOr = true;
  AuditReport R = runAudit(opts(12, Bugs));
  EXPECT_FALSE(R.clean());
}

TEST(Audit, ReportJsonShape) {
  AuditReport R = runAudit(opts(1, passes::BugConfig::fixed()));
  json::Value J = R.toJson();
  ASSERT_EQ(J.kind(), json::Value::Kind::Object);
  const json::Value *Clean = J.find("clean");
  ASSERT_TRUE(Clean);
  EXPECT_TRUE(Clean->getBool());
  ASSERT_TRUE(J.find("checks_run"));
  EXPECT_GT(J.find("checks_run")->getInt(), 0);
  ASSERT_TRUE(J.find("findings"));
  EXPECT_EQ(J.find("findings")->kind(), json::Value::Kind::Array);

  // Finding serialization carries all structured fields.
  Finding F{"step-verify", "soundness", "detail", 42, 3};
  json::Value FJ = F.toJson();
  EXPECT_EQ(FJ.find("invariant")->getString(), "step-verify");
  EXPECT_EQ(FJ.find("severity")->getString(), "soundness");
  EXPECT_EQ(FJ.find("seed")->getInt(), 42);
  EXPECT_EQ(FJ.find("round")->getInt(), 3);
}

} // namespace
