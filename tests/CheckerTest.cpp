//===- tests/CheckerTest.cpp - Post-assertion computation and checking --------===//
//
// Unit tests for the trusted core: CalcPostAssn for commands (prune,
// alias handling, maydiff), the phi-edge post with the Old-register
// rotation of paper §4 (reproducing the fold-phi walkthrough), the
// CheckEquivBeh cases of Algorithm 4, relatedValues, CheckInit, and the
// automation search.
//
//===----------------------------------------------------------------------===//

#include "checker/Automation.h"
#include "checker/Postcond.h"
#include "checker/Validator.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::checker;
using namespace crellvm::erhl;
using crellvm::ir::IcmpPred;
using crellvm::ir::Opcode;

namespace {

ir::Type I32 = ir::Type::intTy(32);
ir::Type Ptr = ir::Type::ptrTy();

ValT reg(const char *N) { return ValT::phy(ir::Value::reg(N, I32)); }
ValT preg(const char *N) { return ValT::phy(ir::Value::reg(N, Ptr)); }
ValT cst(int64_t C) { return ValT::phy(ir::Value::constInt(C, I32)); }
Expr V(const ValT &X) { return Expr::val(X); }
Expr add(const ValT &A, const ValT &B) {
  return Expr::bop(Opcode::Add, I32, A, B);
}
Expr cell(const char *P) { return Expr::load(I32, preg(P)); }

CmdPair both(ir::Instruction I) { return CmdPair{I, I}; }

// --- calcPostCmd ---------------------------------------------------------------

TEST(PostCmd, IdenticalDefStaysOutOfMaydiff) {
  Assertion A;
  Assertion Post = calcPostCmd(
      A, both(ir::Instruction::binary(Opcode::Add, "x", I32,
                                      ir::Value::reg("a", I32),
                                      ir::Value::constInt(1, I32))));
  EXPECT_FALSE(Post.Maydiff.count(RegT{"x", Tag::Phy}));
  EXPECT_TRUE(Post.Src.count(Pred::lessdef(V(reg("x")), add(reg("a"),
                                                            cst(1)))));
  EXPECT_TRUE(Post.Tgt.count(Pred::lessdef(add(reg("a"), cst(1)),
                                           V(reg("x")))));
}

TEST(PostCmd, DifferentDefsEnterMaydiff) {
  Assertion A;
  CmdPair C{ir::Instruction::binary(Opcode::Add, "x", I32,
                                    ir::Value::reg("a", I32),
                                    ir::Value::constInt(1, I32)),
            ir::Instruction::binary(Opcode::Add, "x", I32,
                                    ir::Value::reg("b", I32),
                                    ir::Value::constInt(1, I32))};
  Assertion Post = calcPostCmd(A, C);
  EXPECT_TRUE(Post.Maydiff.count(RegT{"x", Tag::Phy}));
}

TEST(PostCmd, MaydiffOperandBlocksReduction) {
  Assertion A;
  A.Maydiff.insert(RegT{"a", Tag::Phy});
  Assertion Post = calcPostCmd(
      A, both(ir::Instruction::binary(Opcode::Add, "x", I32,
                                      ir::Value::reg("a", I32),
                                      ir::Value::constInt(1, I32))));
  // Identical instructions, but the operand may differ, so x may too.
  EXPECT_TRUE(Post.Maydiff.count(RegT{"x", Tag::Phy}));
}

TEST(PostCmd, RedefinitionKillsFacts) {
  Assertion A;
  A.Src.insert(Pred::lessdef(V(reg("x")), V(cst(5))));
  Assertion Post = calcPostCmd(
      A, both(ir::Instruction::binary(Opcode::Add, "x", I32,
                                      ir::Value::reg("a", I32),
                                      ir::Value::constInt(2, I32))));
  EXPECT_FALSE(Post.Src.count(Pred::lessdef(V(reg("x")), V(cst(5)))));
}

TEST(PostCmd, StoreKillsOverlappingLoadFacts) {
  Assertion A;
  A.Src.insert(Pred::lessdef(cell("p"), V(cst(1))));
  A.Src.insert(Pred::lessdef(cell("q"), V(cst(2))));
  // Store through q: without alias facts, both cells may be clobbered...
  Assertion Post = calcPostCmd(
      A, both(ir::Instruction::store(ir::Value::reg("v", I32),
                                     ir::Value::reg("q", Ptr))));
  EXPECT_FALSE(Post.Src.count(Pred::lessdef(cell("p"), V(cst(1)))));
  // ... except the stored cell itself gets the new fact.
  EXPECT_TRUE(Post.Src.count(Pred::lessdef(cell("q"), V(reg("v")))));
}

TEST(PostCmd, UniqProtectsOtherCellsAcrossStores) {
  Assertion A;
  A.Src.insert(Pred::unique("p"));
  A.Src.insert(Pred::lessdef(cell("p"), V(cst(1))));
  Assertion Post = calcPostCmd(
      A, both(ir::Instruction::store(ir::Value::reg("v", I32),
                                     ir::Value::reg("q", Ptr))));
  // p is isolated, so the store through q cannot touch *p (paper §3.3).
  EXPECT_TRUE(Post.Src.count(Pred::lessdef(cell("p"), V(cst(1)))));
}

TEST(PostCmd, NoaliasProtectsAcrossStores) {
  Assertion A;
  A.Src.insert(Pred::noalias(preg("p"), preg("q")));
  A.Src.insert(Pred::lessdef(cell("p"), V(cst(1))));
  Assertion Post = calcPostCmd(
      A, both(ir::Instruction::store(ir::Value::reg("v", I32),
                                     ir::Value::reg("q", Ptr))));
  EXPECT_TRUE(Post.Src.count(Pred::lessdef(cell("p"), V(cst(1)))));
}

TEST(PostCmd, CallsKillPublicMemoryFacts) {
  Assertion A;
  A.Src.insert(Pred::unique("p"));
  A.Src.insert(Pred::lessdef(cell("p"), V(cst(1))));
  A.Src.insert(Pred::lessdef(cell("q"), V(cst(2))));
  Assertion Post = calcPostCmd(
      A, both(ir::Instruction::call("", ir::Type::voidTy(), "ext", {})));
  EXPECT_TRUE(Post.Src.count(Pred::lessdef(cell("p"), V(cst(1)))));
  EXPECT_FALSE(Post.Src.count(Pred::lessdef(cell("q"), V(cst(2)))));
}

TEST(PostCmd, LeakKillsUniq) {
  Assertion A;
  A.Src.insert(Pred::unique("p"));
  // Loading through p does not leak it...
  Assertion P1 = calcPostCmd(
      A, both(ir::Instruction::load("x", I32, ir::Value::reg("p", Ptr))));
  EXPECT_TRUE(P1.Src.count(Pred::unique("p")));
  // ... but passing it to a call does.
  Assertion P2 = calcPostCmd(
      A, both(ir::Instruction::call("", ir::Type::voidTy(), "ext",
                                    {ir::Value::reg("p", Ptr)})));
  EXPECT_FALSE(P2.Src.count(Pred::unique("p")));
  // ... and so does storing p as a *value*.
  Assertion P3 = calcPostCmd(
      A, both(ir::Instruction::store(ir::Value::reg("p", Ptr),
                                     ir::Value::reg("q", Ptr))));
  EXPECT_FALSE(P3.Src.count(Pred::unique("p")));
  // ... and deriving another pointer from it with gep.
  Assertion P4 = calcPostCmd(
      A, both(ir::Instruction::gep("q2", false, ir::Value::reg("p", Ptr),
                                   ir::Value::constInt(1,
                                                       ir::Type::intTy(64)))));
  EXPECT_FALSE(P4.Src.count(Pred::unique("p")));
}

TEST(PostCmd, SrcAllocaWithTgtLnopIsPrivate) {
  Assertion A;
  CmdPair C{ir::Instruction::allocaInst("p", I32, 1), std::nullopt};
  Assertion Post = calcPostCmd(A, C);
  EXPECT_TRUE(Post.Src.count(Pred::unique("p")));
  EXPECT_TRUE(Post.Src.count(Pred::priv(preg("p"))));
  EXPECT_TRUE(Post.Maydiff.count(RegT{"p", Tag::Phy}));
  // The fresh cell holds undef.
  EXPECT_TRUE(Post.Src.count(
      Pred::lessdef(cell("p"), V(ValT::phy(ir::Value::undef(I32))))));
}

TEST(PostCmd, PairedCallResultsAgree) {
  Assertion A;
  Assertion Post = calcPostCmd(
      A, both(ir::Instruction::call("r", I32, "ext", {})));
  EXPECT_FALSE(Post.Maydiff.count(RegT{"r", Tag::Phy}));
}

TEST(PostCmd, IdenticalPublicLoadsAgree) {
  Assertion A;
  Assertion Post = calcPostCmd(
      A,
      both(ir::Instruction::load("x", I32, ir::Value::global("G"))));
  EXPECT_FALSE(Post.Maydiff.count(RegT{"x", Tag::Phy}));
}

TEST(PostCmd, IdenticalPrivateLoadsMayDiffer) {
  Assertion A;
  A.Src.insert(Pred::unique("p"));
  Assertion Post = calcPostCmd(
      A, both(ir::Instruction::load("x", I32, ir::Value::reg("p", Ptr))));
  // A Uniq (private) location has no target counterpart; the loads are
  // not forced to agree.
  EXPECT_TRUE(Post.Maydiff.count(RegT{"x", Tag::Phy}));
}

// --- Phi-edge post (§4) -----------------------------------------------------------

TEST(PostPhi, FoldPhiOldRegisterRotation) {
  // Paper §4: src z := phi(x, y), w := phi(42, z); tgt t := phi(a, z),
  // w := phi(42, z), plus z := t + 1 handled at the line level. Here we
  // check the edge computation from B2 to itself.
  ir::Phi SrcZ{"z", I32, {{"b1", ir::Value::reg("x", I32)},
                          {"b2", ir::Value::reg("y", I32)}}};
  ir::Phi SrcW{"w", I32, {{"b1", ir::Value::constInt(42, I32)},
                          {"b2", ir::Value::reg("z", I32)}}};
  ir::Phi TgtT{"t", I32, {{"b1", ir::Value::reg("a", I32)},
                          {"b2", ir::Value::reg("z", I32)}}};
  ir::Phi TgtW = SrcW;

  Assertion Pre;
  Pre.Src.insert(Pred::lessdef(V(reg("y")), add(reg("z"), cst(1))));
  Pre.Maydiff.insert(RegT{"t", Tag::Phy});

  Assertion Post = calcPostPhi(Pre, {SrcZ, SrcW}, {TgtT, TgtW}, "b2");

  // 1. The current fact about y was rotated into the old registers.
  Expr OldAdd = Expr::bop(Opcode::Add, I32, ValT::old("z", I32), cst(1));
  EXPECT_TRUE(Post.Src.count(
      Pred::lessdef(V(ValT::old("y", I32)), OldAdd)));
  // 2. The simultaneous assignments are recorded in terms of olds.
  EXPECT_TRUE(Post.Src.count(
      Pred::lessdef(V(reg("z")), V(ValT::old("y", I32)))));
  EXPECT_TRUE(Post.Src.count(
      Pred::lessdef(V(reg("w")), V(ValT::old("z", I32)))));
  EXPECT_TRUE(Post.Tgt.count(
      Pred::lessdef(V(reg("t")), V(ValT::old("z", I32)))));
  // 3. z and t are updated differently and enter the maydiff set; w is
  //    updated equivalently from a maydiff-free old and stays out.
  EXPECT_TRUE(Post.Maydiff.count(RegT{"z", Tag::Phy}));
  EXPECT_TRUE(Post.Maydiff.count(RegT{"t", Tag::Phy}));
  EXPECT_FALSE(Post.Maydiff.count(RegT{"w", Tag::Phy}));
}

TEST(PostPhi, NonPhiIncomingKeepsCurrentFacts) {
  ir::Phi SrcP{"m", I32, {{"pred", ir::Value::reg("v", I32)}}};
  Assertion Pre;
  Assertion Post = calcPostPhi(Pre, {SrcP}, {SrcP}, "pred");
  // v is not phi-defined, so the current-register equations hold too.
  EXPECT_TRUE(Post.Src.count(Pred::lessdef(V(reg("m")), V(reg("v")))));
  EXPECT_TRUE(Post.Src.count(Pred::lessdef(V(reg("v")), V(reg("m")))));
  EXPECT_FALSE(Post.Maydiff.count(RegT{"m", Tag::Phy}));
}

TEST(PostPhi, TargetOnlyPhiEntersMaydiff) {
  ir::Phi TgtP{"m", I32, {{"pred", ir::Value::constInt(1, I32)}}};
  Assertion Post = calcPostPhi(Assertion(), {}, {TgtP}, "pred");
  EXPECT_TRUE(Post.Maydiff.count(RegT{"m", Tag::Phy}));
}

// --- CheckEquivBeh --------------------------------------------------------------

TEST(EquivBeh, CallArgumentsMustRelate) {
  Assertion A;
  CmdPair Same = both(ir::Instruction::call(
      "", ir::Type::voidTy(), "f", {ir::Value::reg("x", I32)}));
  EXPECT_FALSE(checkEquivBeh(A, Same).has_value());
  A.Maydiff.insert(RegT{"x", Tag::Phy});
  EXPECT_TRUE(checkEquivBeh(A, Same).has_value());
}

TEST(EquivBeh, CallArgumentsRelateThroughGhost) {
  Assertion A;
  A.Maydiff.insert(RegT{"x", Tag::Phy});
  ValT G = ValT::ghost("g", I32);
  A.Src.insert(Pred::lessdef(V(reg("x")), V(G)));
  A.Tgt.insert(Pred::lessdef(V(G), V(cst(42))));
  CmdPair C{ir::Instruction::call("", ir::Type::voidTy(), "f",
                                  {ir::Value::reg("x", I32)}),
            ir::Instruction::call("", ir::Type::voidTy(), "f",
                                  {ir::Value::constInt(42, I32)})};
  EXPECT_FALSE(checkEquivBeh(A, C).has_value());
}

TEST(EquivBeh, RemovedCallIsRejected) {
  Assertion A;
  CmdPair C{ir::Instruction::call("", ir::Type::voidTy(), "f", {}),
            std::nullopt};
  EXPECT_TRUE(checkEquivBeh(A, C).has_value());
}

TEST(EquivBeh, RemovedStoreNeedsPrivacy) {
  Assertion A;
  CmdPair C{ir::Instruction::store(ir::Value::constInt(1, I32),
                                   ir::Value::reg("p", Ptr)),
            std::nullopt};
  EXPECT_TRUE(checkEquivBeh(A, C).has_value());
  A.Src.insert(Pred::unique("p"));
  EXPECT_FALSE(checkEquivBeh(A, C).has_value());
}

TEST(EquivBeh, TargetOnlyDivisionIsRejected) {
  Assertion A;
  CmdPair C{std::nullopt,
            ir::Instruction::binary(Opcode::SDiv, "x", I32,
                                    ir::Value::reg("a", I32),
                                    ir::Value::reg("b", I32))};
  auto Err = checkEquivBeh(A, C);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("division"), std::string::npos);
}

TEST(EquivBeh, RemovedLoadIsAllowedButNotAdded) {
  Assertion A;
  CmdPair Removed{
      ir::Instruction::load("x", I32, ir::Value::reg("p", Ptr)),
      std::nullopt};
  EXPECT_FALSE(checkEquivBeh(A, Removed).has_value());
  CmdPair Added{std::nullopt, ir::Instruction::load(
                                  "x", I32, ir::Value::reg("p", Ptr))};
  EXPECT_TRUE(checkEquivBeh(A, Added).has_value());
}

TEST(EquivBeh, BranchConditionsMustRelate) {
  Assertion A;
  CmdPair C = both(ir::Instruction::condBr(
      ir::Value::reg("c", ir::Type::intTy(1)), "a", "b"));
  EXPECT_FALSE(checkEquivBeh(A, C).has_value());
  A.Maydiff.insert(RegT{"c", Tag::Phy});
  EXPECT_TRUE(checkEquivBeh(A, C).has_value());
}

// --- relatedValues ---------------------------------------------------------------

TEST(RelatedValues, UndefSourceRelatesToAnything) {
  Assertion A;
  EXPECT_TRUE(relatedValues(A, ir::Value::undef(I32),
                            ir::Value::constInt(3, I32)));
}

TEST(RelatedValues, ThroughLessdefChains) {
  Assertion A;
  A.Src.insert(Pred::lessdef(V(reg("x")), V(reg("m"))));
  A.Tgt.insert(Pred::lessdef(V(reg("m")), V(reg("y"))));
  EXPECT_TRUE(relatedValues(A, ir::Value::reg("x", I32),
                            ir::Value::reg("y", I32)));
  // The middle must be maydiff-free.
  A.Maydiff.insert(RegT{"m", Tag::Phy});
  EXPECT_FALSE(relatedValues(A, ir::Value::reg("x", I32),
                             ir::Value::reg("y", I32)));
}

// --- Automation ------------------------------------------------------------------

TEST(AutomationTest, DerivesTransitivityChains) {
  Assertion A;
  A.Src.insert(Pred::lessdef(V(reg("a")), V(reg("b"))));
  A.Src.insert(Pred::lessdef(V(reg("b")), V(reg("c"))));
  A.Src.insert(Pred::lessdef(V(reg("c")), V(reg("d"))));
  EXPECT_TRUE(deriveLessdef(A, Side::Src, V(reg("a")), V(reg("d")),
                            /*GvnMode=*/false));
  EXPECT_TRUE(A.Src.count(Pred::lessdef(V(reg("a")), V(reg("d")))));
}

TEST(AutomationTest, GvnModeUsesCommutativityAndSubstitution) {
  Assertion A;
  // a >= add x y; x >= x'; want a >= add y x'.
  A.Src.insert(Pred::lessdef(V(reg("a")), add(reg("x"), reg("y"))));
  A.Src.insert(Pred::lessdef(V(reg("x")), V(reg("x2"))));
  EXPECT_FALSE(deriveLessdef(A, Side::Src, V(reg("a")),
                             add(reg("y"), reg("x2")), /*GvnMode=*/false));
  EXPECT_TRUE(deriveLessdef(A, Side::Src, V(reg("a")),
                            add(reg("y"), reg("x2")), /*GvnMode=*/true));
}

TEST(AutomationTest, DischargesMaydiffGoals) {
  Assertion Have;
  Have.Maydiff.insert(RegT{"x", Tag::Phy});
  Expr E = add(reg("a"), cst(1));
  Have.Src.insert(Pred::lessdef(V(reg("x")), E));
  Have.Tgt.insert(Pred::lessdef(E, V(reg("x"))));
  Assertion Goal; // empty maydiff
  runAutomation({"reduce_maydiff"}, Have, Goal);
  EXPECT_TRUE(Have.includes(Goal));
}

// --- CheckInit (through the validator) -----------------------------------------

TEST(CheckInitTest, RejectsParamFactsAtEntry) {
  std::string Err;
  auto Src = ir::parseModule(
      "define void @f(i32 %a) {\nentry:\n  ret void\n}", &Err);
  ASSERT_TRUE(Src) << Err;
  proofgen::Proof P;
  proofgen::FunctionProof FP;
  proofgen::BlockProof BP;
  // Claiming something about a parameter at entry is not initially valid.
  BP.AtEntry.Src.insert(Pred::lessdef(V(reg("a")), V(cst(0))));
  proofgen::LineEntry L;
  L.SrcCmd = ir::Instruction::ret(std::nullopt);
  L.TgtCmd = ir::Instruction::ret(std::nullopt);
  L.After = BP.AtEntry;
  BP.Lines.push_back(L);
  FP.Blocks["entry"] = BP;
  P.Functions["f"] = FP;
  auto VR = validate(*Src, *Src, P);
  EXPECT_EQ(VR.countFailed(), 1u);
  EXPECT_NE(VR.firstFailure().find("initially"), std::string::npos)
      << VR.firstFailure();
}

} // namespace
