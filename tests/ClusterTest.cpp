//===- tests/ClusterTest.cpp - Sharded validation cluster tests -----------===//
//
// The crellvm-cluster subsystem, tested at three levels:
//
//   ClusterRing       the consistent-hash ring: determinism, coverage,
//                     removal remapping only the removed member's arc;
//   ClusterAggregate  pure stats aggregation: schema gate naming the
//                     offending member, counter sums, exact histogram
//                     bucket merges;
//   ClusterRouter*    an in-process ClusterRouter fronting fork/exec'd
//                     crellvm-served members: verdict bit-identity vs.
//                     the standalone batch validator, repeat-fingerprint
//                     stickiness, zero accepted-request loss when a
//                     member is SIGKILLed mid-load, and cross-member
//                     warm hits through the shared disk tier.
//
// Suite names all contain "Cluster" so the TSan sweep in ci.yml picks
// the whole file up.
//
//===----------------------------------------------------------------------===//

#include "cluster/Router.h"
#include "ir/Printer.h"
#include "workload/RandomProgram.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::cluster;
using server::PassVerdicts;
using server::Request;
using server::RequestKind;
using server::Response;
using server::ResponseStatus;

namespace {

Request validateSeed(uint64_t Seed, int64_t Id = 0) {
  Request R;
  R.Kind = RequestKind::Validate;
  R.Id = Id;
  R.HasSeed = true;
  R.Seed = Seed;
  return R;
}

/// What crellvm-validate would report for the same seeds.
driver::StatsMap directRun(const std::vector<uint64_t> &Seeds) {
  driver::DriverOptions DOpts;
  DOpts.WriteFiles = false;
  driver::BatchOptions BOpts;
  BOpts.Jobs = 1;
  return driver::runBatchValidated(
             passes::BugConfig::fixed(), DOpts, Seeds.size(),
             [&](size_t I) {
               workload::GenOptions G;
               G.Seed = Seeds[I];
               return workload::generateModule(G);
             },
             BOpts)
      .Stats;
}

void accumulate(std::map<std::string, PassVerdicts> &Into,
                const std::map<std::string, PassVerdicts> &From) {
  for (const auto &KV : From) {
    PassVerdicts &P = Into[KV.first];
    P.V += KV.second.V;
    P.F += KV.second.F;
    P.NS += KV.second.NS;
    P.Diff += KV.second.Diff;
  }
}

//===----------------------------------------------------------------------===//
// ClusterRing
//===----------------------------------------------------------------------===//

TEST(ClusterRing, RouteIsDeterministicAndCoversAllMembers) {
  HashRing R(64);
  R.addMember("m1");
  R.addMember("m2");
  R.addMember("m3");
  std::map<std::string, int> Load;
  for (uint64_t P = 0; P != 3000; ++P) {
    uint64_t Point = P * 0x9e3779b97f4a7c15ull;
    std::string M = R.route(Point);
    EXPECT_EQ(M, R.route(Point)) << "routing must be deterministic";
    ++Load[M];
  }
  ASSERT_EQ(Load.size(), 3u) << "every member must own some arc";
  for (const auto &KV : Load)
    EXPECT_GT(KV.second, 300) << KV.first
                              << ": 64 vnodes should spread load within ~3x";
}

TEST(ClusterRing, RemovalOnlyRemapsTheRemovedMembersKeys) {
  HashRing R(64);
  R.addMember("m1");
  R.addMember("m2");
  R.addMember("m3");
  std::map<uint64_t, std::string> Before;
  for (uint64_t P = 0; P != 2000; ++P) {
    uint64_t Point = P * 0x2545f4914f6cdd1dull + 17;
    Before[Point] = R.route(Point);
  }
  R.removeMember("m2");
  EXPECT_FALSE(R.contains("m2"));
  for (const auto &KV : Before) {
    std::string After = R.route(KV.first);
    if (KV.second != "m2")
      EXPECT_EQ(After, KV.second)
          << "a surviving member's keys must not move (warm caches!)";
    else
      EXPECT_NE(After, "m2");
  }
}

TEST(ClusterRing, RouteNReturnsOwnerFirstThenDistinctSuccessors) {
  HashRing R(32);
  R.addMember("a");
  R.addMember("b");
  R.addMember("c");
  for (uint64_t P = 0; P != 500; ++P) {
    uint64_t Point = P * 0x9e3779b97f4a7c15ull + 3;
    std::vector<std::string> N = R.routeN(Point, 3);
    ASSERT_EQ(N.size(), 3u);
    EXPECT_EQ(N[0], R.route(Point)) << "owner must come first";
    std::set<std::string> Distinct(N.begin(), N.end());
    EXPECT_EQ(Distinct.size(), 3u) << "failover candidates must be distinct";
  }
}

TEST(ClusterRing, EmptyRingRoutesNothing) {
  HashRing R;
  EXPECT_TRUE(R.empty());
  EXPECT_EQ(R.route(123), "");
  EXPECT_TRUE(R.routeN(123, 4).empty());
  R.addMember("solo");
  EXPECT_EQ(R.route(123), "solo");
  R.removeMember("solo");
  EXPECT_TRUE(R.empty());
}

TEST(ClusterRing, RoutePointIsStablePerRequestIdentity) {
  Request A = validateSeed(42, 1);
  Request B = validateSeed(42, 999); // different id, same identity
  EXPECT_EQ(routePointOf(A), routePointOf(B))
      << "the route point is the cache identity, not the wire id";
  Request C = validateSeed(43, 1);
  EXPECT_NE(routePointOf(A), routePointOf(C));
  Request D = validateSeed(42, 1);
  D.Bugs = "pr29057"; // different preset validates different code
  EXPECT_NE(routePointOf(A), routePointOf(D));
}

//===----------------------------------------------------------------------===//
// ClusterAggregate
//===----------------------------------------------------------------------===//

/// A minimal member stats document the aggregator accepts.
json::Value memberDoc(const std::string &Id, uint64_t Received,
                      uint64_t Hits, uint64_t Misses,
                      std::vector<uint64_t> TotalBuckets) {
  json::Value D = json::Value::object();
  D.set("schema_version", json::Value(server::StatsSchemaVersion));
  D.set("member_id", json::Value(Id));
  json::Value Req = json::Value::object();
  Req.set("received", json::Value(Received));
  Req.set("accepted", json::Value(Received));
  D.set("requests", std::move(Req));
  json::Value Cache = json::Value::object();
  Cache.set("hits", json::Value(Hits));
  Cache.set("misses", json::Value(Misses));
  Cache.set("hit_rate_ppm", json::Value(uint64_t(123456))); // bogus on purpose
  D.set("cache", std::move(Cache));
  json::Value Lat = json::Value::object();
  json::Value Total = json::Value::object();
  json::Value Buckets = json::Value::array();
  uint64_t Count = 0, Sum = 0;
  for (size_t B = 0; B != TotalBuckets.size(); ++B) {
    Buckets.push(json::Value(TotalBuckets[B]));
    Count += TotalBuckets[B];
    Sum += TotalBuckets[B] * (B ? (1ull << B) - 1 : 0);
  }
  Total.set("count", json::Value(Count));
  Total.set("sum", json::Value(Sum));
  Total.set("max", json::Value(uint64_t(TotalBuckets.size())));
  Total.set("buckets", std::move(Buckets));
  Lat.set("total", std::move(Total));
  Lat.set("queue", json::Value::object());
  D.set("latency_us", std::move(Lat));
  json::Value Server = json::Value::object();
  Server.set("jobs", json::Value(uint64_t(4)));
  Server.set("oracle", json::Value(true));
  Server.set("draining", json::Value(false));
  D.set("server", std::move(Server));
  return D;
}

TEST(ClusterAggregate, SchemaMismatchIsRefusedNamingTheMember) {
  std::vector<json::Value> Docs;
  Docs.push_back(memberDoc("m1", 10, 1, 2, {}));
  json::Value Bad = memberDoc("m2", 10, 1, 2, {});
  Bad.set("schema_version", json::Value(uint64_t(999)));
  Docs.push_back(std::move(Bad));
  std::string Err;
  auto Agg = aggregateMemberStats(Docs, &Err);
  ASSERT_FALSE(Agg.has_value());
  EXPECT_NE(Err.find("member m2"), std::string::npos) << Err;
  EXPECT_NE(Err.find("999"), std::string::npos) << Err;
}

TEST(ClusterAggregate, MissingSchemaVersionIsRefused) {
  json::Value NoStamp = json::Value::object();
  NoStamp.set("member_id", json::Value("m7"));
  std::string Err;
  auto Agg = aggregateMemberStats({NoStamp}, &Err);
  ASSERT_FALSE(Agg.has_value());
  EXPECT_NE(Err.find("member m7"), std::string::npos) << Err;
  EXPECT_NE(Err.find("schema_version"), std::string::npos) << Err;
}

TEST(ClusterAggregate, SumsCountersAndRecomputesRatios) {
  std::vector<json::Value> Docs;
  Docs.push_back(memberDoc("m1", 10, 30, 10, {}));
  Docs.push_back(memberDoc("m2", 5, 0, 60, {}));
  std::string Err;
  auto Agg = aggregateMemberStats(Docs, &Err);
  ASSERT_TRUE(Agg.has_value()) << Err;
  EXPECT_EQ(Agg->get("requests").get("received").getInt(), 15);
  EXPECT_EQ(Agg->get("cache").get("hits").getInt(), 30);
  EXPECT_EQ(Agg->get("cache").get("misses").getInt(), 70);
  // 30 hits / 100 lookups = 300000 ppm — recomputed, not summed.
  EXPECT_EQ(Agg->get("cache").get("hit_rate_ppm").getInt(), 300000);
  EXPECT_EQ(Agg->get("server").get("jobs").getInt(), 8);
  EXPECT_TRUE(Agg->get("server").get("oracle").getBool());
}

TEST(ClusterAggregate, HistogramsMergeByExactBucketCounts) {
  // m1: 4 samples in bucket 1, m2: 2 in bucket 1 and 2 in bucket 3.
  std::vector<json::Value> Docs;
  Docs.push_back(memberDoc("m1", 1, 0, 0, {0, 4}));
  Docs.push_back(memberDoc("m2", 1, 0, 0, {0, 2, 0, 2}));
  std::string Err;
  auto Agg = aggregateMemberStats(Docs, &Err);
  ASSERT_TRUE(Agg.has_value()) << Err;
  const json::Value &Total = Agg->get("latency_us").get("total");
  EXPECT_EQ(Total.get("count").getInt(), 8);
  const json::Value &Buckets = Total.get("buckets");
  ASSERT_EQ(Buckets.size(), 4u);
  EXPECT_EQ(Buckets.at(1).getInt(), 6);
  EXPECT_EQ(Buckets.at(3).getInt(), 2);
  // p50 of {6 samples <=1, 2 samples <=7}: the 4th sample sits in
  // bucket 1, whose inclusive upper bound is 1.
  EXPECT_EQ(Total.get("p50").getInt(), 1);
  // p99 lands in bucket 3: upper bound 7.
  EXPECT_EQ(Total.get("p99").getInt(), 7);
}

TEST(ClusterAggregate, EmptyClusterAggregatesToZeroes) {
  std::string Err;
  auto Agg = aggregateMemberStats({}, &Err);
  ASSERT_TRUE(Agg.has_value()) << Err;
  EXPECT_EQ(Agg->get("members_aggregated").getInt(), 0);
  EXPECT_FALSE(Agg->get("server").get("oracle").getBool())
      << "an empty cluster cannot claim an oracle";
}

//===----------------------------------------------------------------------===//
// ClusterRouter — in-process router over fork/exec'd crellvm-served
//===----------------------------------------------------------------------===//

struct Daemon {
  pid_t Pid = -1;
  std::string Socket;

  static Daemon spawn(const char *Tag, std::vector<std::string> ExtraArgs) {
    Daemon D;
    D.Socket = "/tmp/crellvm-cluster-test-" + std::to_string(::getpid()) +
               "-" + Tag + ".sock";
    ::unlink(D.Socket.c_str());
    std::vector<std::string> Args = {CRELLVM_SERVED_BIN, "--socket", D.Socket,
                                     "--jobs", "2"};
    Args.insert(Args.end(), ExtraArgs.begin(), ExtraArgs.end());
    D.Pid = ::fork();
    if (D.Pid == 0) {
      std::vector<char *> Argv;
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      ::freopen("/dev/null", "w", stderr);
      ::freopen("/dev/null", "w", stdout);
      ::execv(Argv[0], Argv.data());
      _exit(127);
    }
    return D;
  }

  bool waitReady() const {
    for (int Tries = 0; Tries != 400; ++Tries) {
      sockaddr_un Addr;
      std::memset(&Addr, 0, sizeof(Addr));
      Addr.sun_family = AF_UNIX;
      std::memcpy(Addr.sun_path, Socket.c_str(), Socket.size() + 1);
      int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (Fd >= 0 &&
          ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
              0) {
        ::close(Fd);
        return true;
      }
      if (Fd >= 0)
        ::close(Fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  void kill9() {
    if (Pid <= 0)
      return;
    ::kill(Pid, SIGKILL);
    int Status = 0;
    ::waitpid(Pid, &Status, 0);
    ::unlink(Socket.c_str());
    Pid = -1;
  }

  void stop() {
    if (Pid <= 0)
      return;
    ::kill(Pid, SIGTERM);
    int Status = 0;
    ::waitpid(Pid, &Status, 0);
    ::unlink(Socket.c_str());
    Pid = -1;
  }
};

/// Collects asynchronous router responses with a bounded wait.
struct Collector {
  std::mutex M;
  std::condition_variable Cv;
  std::vector<Response> Rsps;

  ClusterRouter::Callback callback() {
    return [this](Response R) {
      std::lock_guard<std::mutex> L(M);
      Rsps.push_back(std::move(R));
      Cv.notify_all();
    };
  }

  bool waitFor(size_t N, int Seconds = 120) {
    std::unique_lock<std::mutex> L(M);
    return Cv.wait_for(L, std::chrono::seconds(Seconds),
                       [&] { return Rsps.size() >= N; });
  }
};

TEST(ClusterRouter, StartFailsWhenNoMemberIsReachable) {
  ClusterOptions O;
  O.Members = {{"ghost", "/tmp/crellvm-cluster-test-no-such.sock"}};
  ClusterRouter R(O);
  std::string Err;
  EXPECT_FALSE(R.start(&Err));
  EXPECT_NE(Err.find("no cluster member reachable"), std::string::npos)
      << Err;
}

TEST(ClusterRouter, VerdictsBitIdenticalToStandaloneValidator) {
  Daemon M1 = Daemon::spawn("ident1", {"--member-id", "m1"});
  Daemon M2 = Daemon::spawn("ident2", {"--member-id", "m2"});
  ASSERT_TRUE(M1.waitReady());
  ASSERT_TRUE(M2.waitReady());

  std::vector<uint64_t> Seeds;
  for (uint64_t S = 301; S != 317; ++S)
    Seeds.push_back(S);

  std::map<std::string, PassVerdicts> Routed;
  {
    ClusterOptions O;
    O.Members = {{"m1", M1.Socket}, {"m2", M2.Socket}};
    ClusterRouter R(O);
    std::string Err;
    ASSERT_TRUE(R.start(&Err)) << Err;

    Collector C;
    for (size_t I = 0; I != Seeds.size(); ++I)
      R.submit(validateSeed(Seeds[I], static_cast<int64_t>(I)),
               C.callback());
    ASSERT_TRUE(C.waitFor(Seeds.size())) << "responses missing";
    R.beginShutdown();
    R.drain();

    std::set<int64_t> Ids;
    for (const Response &Rsp : C.Rsps) {
      ASSERT_EQ(Rsp.Status, ResponseStatus::Ok) << Rsp.Reason;
      EXPECT_TRUE(Ids.insert(Rsp.Id).second) << "duplicate answer";
      accumulate(Routed, Rsp.Passes);
    }
    RouterCounters RC = R.counters();
    EXPECT_EQ(RC.Received, Seeds.size());
    EXPECT_EQ(RC.answered(), Seeds.size());
    // Both members should carry some of a 16-seed spread.
    EXPECT_EQ(RC.Forwarded, Seeds.size());
  }
  M1.stop();
  M2.stop();

  EXPECT_EQ(Routed, server::passVerdictsOf(directRun(Seeds)))
      << "the router must add scheduling, never semantics";
}

TEST(ClusterRouter, RepeatFingerprintsStickToTheirWarmMember) {
  // Each member gets its OWN private rw cache: a repeat request routed to
  // a different member is then a guaranteed cache miss, so the summed
  // hit count of the second pass measures stickiness directly.
  std::string Base = "/tmp/crellvm-cluster-test-stick-" +
                     std::to_string(::getpid());
  Daemon M1 = Daemon::spawn(
      "stick1", {"--member-id", "m1", "--cache=rw", "--cache-dir",
                 Base + "-c1"});
  Daemon M2 = Daemon::spawn(
      "stick2", {"--member-id", "m2", "--cache=rw", "--cache-dir",
                 Base + "-c2"});
  ASSERT_TRUE(M1.waitReady());
  ASSERT_TRUE(M2.waitReady());

  constexpr size_t NSeeds = 24;
  ClusterOptions O;
  O.Members = {{"m1", M1.Socket}, {"m2", M2.Socket}};
  ClusterRouter R(O);
  std::string Err;
  ASSERT_TRUE(R.start(&Err)) << Err;

  uint64_t FirstPassMisses = 0, SecondPassHits = 0, SecondPassTotal = 0;
  for (int Pass = 0; Pass != 2; ++Pass) {
    Collector C;
    for (size_t I = 0; I != NSeeds; ++I)
      R.submit(validateSeed(9000 + I, static_cast<int64_t>(I)),
               C.callback());
    ASSERT_TRUE(C.waitFor(NSeeds));
    for (const Response &Rsp : C.Rsps) {
      ASSERT_EQ(Rsp.Status, ResponseStatus::Ok) << Rsp.Reason;
      if (Pass == 0)
        FirstPassMisses += Rsp.CacheMisses;
      else {
        SecondPassHits += Rsp.CacheHits;
        SecondPassTotal += Rsp.CacheHits + Rsp.CacheMisses;
      }
    }
  }
  R.beginShutdown();
  R.drain();
  M1.stop();
  M2.stop();

  ASSERT_GT(FirstPassMisses, 0u);
  ASSERT_EQ(SecondPassTotal, FirstPassMisses)
      << "both passes validate the same units";
  EXPECT_GE(SecondPassHits * 10, SecondPassTotal * 9)
      << "at least 90% of repeats must land on their warm member ("
      << SecondPassHits << "/" << SecondPassTotal << " hit)";
}

TEST(ClusterRouter, KillingOneOfThreeMembersLosesNoAcceptedRequest) {
  Daemon M1 = Daemon::spawn("kill1", {"--member-id", "m1"});
  Daemon M2 = Daemon::spawn("kill2", {"--member-id", "m2"});
  Daemon M3 = Daemon::spawn("kill3", {"--member-id", "m3"});
  ASSERT_TRUE(M1.waitReady());
  ASSERT_TRUE(M2.waitReady());
  ASSERT_TRUE(M3.waitReady());

  ClusterOptions O;
  O.Members = {{"m1", M1.Socket}, {"m2", M2.Socket}, {"m3", M3.Socket}};
  O.ReattachBaseMs = 100000; // keep the victim dead for the whole test
  ClusterRouter R(O);
  std::string Err;
  ASSERT_TRUE(R.start(&Err)) << Err;

  constexpr size_t N = 48;
  Collector C;
  // Submit half, murder a member mid-flight, submit the rest.
  for (size_t I = 0; I != N / 2; ++I)
    R.submit(validateSeed(500 + I, static_cast<int64_t>(I)), C.callback());
  M2.kill9();
  for (size_t I = N / 2; I != N; ++I)
    R.submit(validateSeed(500 + I, static_cast<int64_t>(I)), C.callback());

  ASSERT_TRUE(C.waitFor(N)) << "every submitted request must be answered";
  R.beginShutdown();
  R.drain();

  std::set<int64_t> Ids;
  size_t OkCount = 0;
  for (const Response &Rsp : C.Rsps) {
    EXPECT_TRUE(Ids.insert(Rsp.Id).second)
        << "request " << Rsp.Id << " answered twice";
    if (Rsp.Status == ResponseStatus::Ok)
      ++OkCount;
    else
      // The only acceptable non-verdict is an explicit retryable
      // rejection — never a deadline or silent drop.
      EXPECT_EQ(Rsp.Reason, "queue_full") << Rsp.Reason;
  }
  EXPECT_EQ(Ids.size(), N);
  EXPECT_EQ(OkCount, N) << "two live members must absorb the failover";

  RouterCounters RC = R.counters();
  EXPECT_EQ(RC.Received, N);
  EXPECT_EQ(RC.answered(), N) << "zero-loss equation";
  EXPECT_GE(RC.MemberDeaths, 1u);
  EXPECT_EQ(R.liveMembers().size(), 2u);

  std::string Detail;
  EXPECT_TRUE(R.clusterDrainEquationHolds(&Detail)) << Detail;
  M1.stop();
  M3.stop();
}

TEST(ClusterRouter, SharedDiskTierGivesCrossMemberWarmHits) {
  // m1 publishes into the shared tier, dies; a cold m2 sharing the same
  // directory must answer the same units from m1's artifacts.
  std::string Shared = "/tmp/crellvm-cluster-test-shared-" +
                       std::to_string(::getpid());
  std::vector<std::string> CacheArgs = {"--cache=rw", "--cache-dir", Shared,
                                        "--cache-shared"};
  std::vector<uint64_t> Seeds = {7101, 7102, 7103, 7104};

  Daemon M1 = Daemon::spawn("shared1", [&] {
    std::vector<std::string> A = {"--member-id", "m1"};
    A.insert(A.end(), CacheArgs.begin(), CacheArgs.end());
    return A;
  }());
  ASSERT_TRUE(M1.waitReady());
  {
    ClusterOptions O;
    O.Members = {{"m1", M1.Socket}};
    ClusterRouter R(O);
    std::string Err;
    ASSERT_TRUE(R.start(&Err)) << Err;
    Collector C;
    for (size_t I = 0; I != Seeds.size(); ++I)
      R.submit(validateSeed(Seeds[I], static_cast<int64_t>(I)),
               C.callback());
    ASSERT_TRUE(C.waitFor(Seeds.size()));
    for (const Response &Rsp : C.Rsps)
      ASSERT_EQ(Rsp.Status, ResponseStatus::Ok) << Rsp.Reason;
    R.beginShutdown();
    R.drain();
  }
  M1.stop(); // graceful: flushes its publications

  Daemon M2 = Daemon::spawn("shared2", [&] {
    std::vector<std::string> A = {"--member-id", "m2"};
    A.insert(A.end(), CacheArgs.begin(), CacheArgs.end());
    return A;
  }());
  ASSERT_TRUE(M2.waitReady());
  uint64_t Hits = 0;
  {
    ClusterOptions O;
    O.Members = {{"m2", M2.Socket}};
    ClusterRouter R(O);
    std::string Err;
    ASSERT_TRUE(R.start(&Err)) << Err;
    Collector C;
    for (size_t I = 0; I != Seeds.size(); ++I)
      R.submit(validateSeed(Seeds[I], static_cast<int64_t>(I)),
               C.callback());
    ASSERT_TRUE(C.waitFor(Seeds.size()));
    for (const Response &Rsp : C.Rsps) {
      ASSERT_EQ(Rsp.Status, ResponseStatus::Ok) << Rsp.Reason;
      Hits += Rsp.CacheHits;
    }
    R.beginShutdown();
    R.drain();
  }
  M2.stop();

  EXPECT_GT(Hits, 0u)
      << "a cold member must hit artifacts another member published";
}

TEST(ClusterRouter, AggregatedStatsCarrySchemaAndTopology) {
  Daemon M1 = Daemon::spawn("stats1", {"--member-id", "alpha"});
  ASSERT_TRUE(M1.waitReady());

  ClusterOptions O;
  O.Members = {{"alpha", M1.Socket}};
  O.RouterId = "router-under-test";
  ClusterRouter R(O);
  std::string Err;
  ASSERT_TRUE(R.start(&Err)) << Err;

  Collector C;
  R.submit(validateSeed(601, 0), C.callback());
  ASSERT_TRUE(C.waitFor(1));

  json::Value Stats = R.statsJson();
  EXPECT_EQ(Stats.get("schema_version").getInt(),
            static_cast<int64_t>(server::StatsSchemaVersion));
  EXPECT_EQ(Stats.get("member_id").getString(), "router-under-test");
  EXPECT_EQ(Stats.get("requests").get("completed").getInt(), 1);
  const json::Value &Cluster = Stats.get("cluster");
  EXPECT_EQ(Cluster.get("size").getInt(), 1);
  EXPECT_EQ(Cluster.get("live").getInt(), 1);
  const json::Value &Members = Cluster.get("members");
  ASSERT_EQ(Members.size(), 1u);
  EXPECT_EQ(Members.at(0).get("member_id").getString(), "alpha");
  EXPECT_EQ(Members.at(0).get("stats").get("member_id").getString(),
            "alpha");

  R.beginShutdown();
  R.drain();
  M1.stop();
}

TEST(ClusterRouter, ReattachLoopIsQuiescentWhileAllMembersAreHealthy) {
  // The reattach loop parks on its condition variable; with every member
  // attached there is nothing to poll, so an idle interval must count
  // exactly zero work passes (the loop used to wake every 100 ms
  // unconditionally — this pins the event-driven rewrite).
  Daemon M1 = Daemon::spawn("quiesce1", {"--member-id", "q1"});
  ASSERT_TRUE(M1.waitReady());

  ClusterOptions O;
  O.Members = {{"q1", M1.Socket}};
  ClusterRouter R(O);
  std::string Err;
  ASSERT_TRUE(R.start(&Err)) << Err;

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_EQ(R.counters().ReattachWakeups, 0u)
      << "an all-healthy cluster must not spin its reattach loop";

  // A death wakes it up for real work...
  M1.kill9();
  Collector C;
  R.submit(validateSeed(701, 0), C.callback());
  ASSERT_TRUE(C.waitFor(1));
  bool Woke = false;
  for (int Tries = 0; !Woke && Tries != 500; ++Tries) {
    Woke = R.counters().ReattachWakeups > 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(Woke) << "a member death must wake the reattach loop";

  R.beginShutdown();
  R.drain();
}

} // namespace
