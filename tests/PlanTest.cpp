//===- tests/PlanTest.cpp - Per-preset checker-plan pipeline --------------===//
//
// The plan subsystem (src/plan, DESIGN.md §17), tested bottom-up:
//
//   PlanJson       serialization: round trip, schema gate, unknown-name
//                  rejection — a plan that cannot be fully understood is
//                  a miss, never a partially-applied plan;
//   PlanBuild      profile-guided derivation is deterministic;
//   PlanChecker    the soundness core: checker::validateWithPlan agrees
//                  with checker::validate on every verdict, across the
//                  fixed tree and every historical bug preset, and the
//                  guard hard-falls-back on out-of-profile proofs;
//   PlanCache      LRU + shared disk tier + corrupt-payload handling;
//   PlanManager    mode dispatch, once-per-key builds at any concurrency,
//                  the shadow comparison and the divergence demotion
//                  ladder;
//   PlanServer     the service stats document carries the "plan" and
//                  "batching" sections cluster aggregation sums. (Suite
//                  name contains "Server" so the TSan sweep in ci.yml
//                  picks it up.)
//
//===----------------------------------------------------------------------===//

#include "cache/DiskStore.h"
#include "cache/Fingerprint.h"
#include "checker/Validator.h"
#include "checker/Version.h"
#include "erhl/Infrule.h"
#include "json/Json.h"
#include "passes/Pipeline.h"
#include "plan/Plan.h"
#include "plan/PlanBuilder.h"
#include "plan/PlanCache.h"
#include "plan/PlanManager.h"
#include "server/Service.h"
#include "workload/RandomProgram.h"

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include <unistd.h>

using namespace crellvm;

namespace {

std::string freshDir(const char *Tag) {
  static std::atomic<unsigned> Counter{0};
  return (std::filesystem::temp_directory_path() /
          ("crellvm-plan-" + std::string(Tag) + "." +
           std::to_string(::getpid()) + "." +
           std::to_string(Counter.fetch_add(1))))
      .string();
}

struct DirGuard {
  std::string Dir;
  explicit DirGuard(std::string D) : Dir(std::move(D)) {}
  ~DirGuard() {
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
  }
};

/// Full per-function comparison — stricter than summary counts: the
/// specialized path must reproduce Status, Where and Reason exactly.
void expectSameResults(const checker::ModuleResult &A,
                       const checker::ModuleResult &B,
                       const std::string &Context) {
  ASSERT_EQ(A.Functions.size(), B.Functions.size()) << Context;
  for (const auto &KV : A.Functions) {
    auto It = B.Functions.find(KV.first);
    ASSERT_NE(It, B.Functions.end()) << Context << " @" << KV.first;
    EXPECT_EQ(static_cast<int>(KV.second.Status),
              static_cast<int>(It->second.Status))
        << Context << " @" << KV.first;
    EXPECT_EQ(KV.second.Where, It->second.Where) << Context << " @" << KV.first;
    EXPECT_EQ(KV.second.Reason, It->second.Reason)
        << Context << " @" << KV.first;
  }
}

int64_t statInt(const json::Value &Stats, const char *Section,
                const char *Key) {
  const json::Value *S = Stats.find(Section);
  if (!S)
    return -1;
  const json::Value *V = S->find(Key);
  return V ? V->getInt() : -1;
}

//===----------------------------------------------------------------------===//
// PlanJson
//===----------------------------------------------------------------------===//

TEST(PlanJson, RoundTripPreservesEveryField) {
  plan::PlanBuildOptions BO;
  BO.FeedstockModules = 2;
  plan::CheckerPlan P =
      plan::buildPlan("gvn", passes::BugConfig::fixed(), BO);

  std::string Err;
  auto Back = plan::planFromJson(plan::planToJson(P), &Err);
  ASSERT_TRUE(Back) << Err;
  EXPECT_EQ(Back->PassName, P.PassName);
  EXPECT_EQ(Back->Bugs, P.Bugs);
  EXPECT_EQ(Back->Spec.AllowedRules, P.Spec.AllowedRules);
  EXPECT_EQ(Back->Spec.AllowedAutos, P.Spec.AllowedAutos);
  EXPECT_EQ(Back->Spec.SkipNonphysSweepCmd, P.Spec.SkipNonphysSweepCmd);
  EXPECT_EQ(Back->Spec.SkipLoadBridge, P.Spec.SkipLoadBridge);
  EXPECT_EQ(Back->Spec.MaydiffRoundCap, P.Spec.MaydiffRoundCap);
  EXPECT_EQ(Back->Spec.ReuseEqualPostCmd, P.Spec.ReuseEqualPostCmd);
  EXPECT_EQ(Back->Spec.ReuseEqualPostPhi, P.Spec.ReuseEqualPostPhi);
  EXPECT_EQ(Back->Spec.MaydiffCandidatesDefinedOnlyCmd,
            P.Spec.MaydiffCandidatesDefinedOnlyCmd);
  EXPECT_EQ(Back->Spec.MaydiffCandidatesDefinedOnlyPhi,
            P.Spec.MaydiffCandidatesDefinedOnlyPhi);
  EXPECT_EQ(Back->Spec.RelatedProbeFirst, P.Spec.RelatedProbeFirst);
  EXPECT_EQ(Back->FeedstockModules, P.FeedstockModules);
  EXPECT_EQ(Back->ProfiledFunctions, P.ProfiledFunctions);
  EXPECT_EQ(Back->ProfiledValidated, P.ProfiledValidated);

  // Serialization is canonical: round-tripping reproduces the bytes, the
  // property that makes plans shareable through the content-addressed
  // store (two members building the same key store the same object).
  EXPECT_EQ(plan::planToJson(*Back), plan::planToJson(P));
}

TEST(PlanJson, RejectsForeignSchemaUnknownNamesAndGarbage) {
  plan::PlanBuildOptions BO;
  BO.FeedstockModules = 1;
  plan::CheckerPlan P =
      plan::buildPlan("instcombine", passes::BugConfig::fixed(), BO);
  std::string Good = plan::planToJson(P);

  std::string Err;
  ASSERT_TRUE(plan::planFromJson(Good, &Err)) << Err;

  // Schema version from a future (or past) writer: refused, named.
  std::string Schema = Good;
  std::string Needle = "\"schema_version\":" +
                       std::to_string(checker::PlanSchemaVersion);
  size_t At = Schema.find(Needle);
  ASSERT_NE(At, std::string::npos) << Good;
  Schema.replace(At, Needle.size(), "\"schema_version\":999");
  EXPECT_FALSE(plan::planFromJson(Schema, &Err));
  EXPECT_NE(Err.find("schema"), std::string::npos) << Err;

  // An unknown rule name (e.g. after a rule was removed) poisons the
  // whole plan: a guard over a rule set we cannot name is no guard.
  ASSERT_FALSE(P.Spec.AllowedRules.empty());
  std::string FirstRule;
  for (uint16_t K = 0; K != erhl::NumInfruleKinds; ++K)
    if (P.Spec.AllowedRules[K]) {
      FirstRule = erhl::infruleKindName(static_cast<erhl::InfruleKind>(K));
      break;
    }
  if (!FirstRule.empty()) {
    std::string Renamed = Good;
    At = Renamed.find("\"" + FirstRule + "\"");
    ASSERT_NE(At, std::string::npos);
    Renamed.replace(At, FirstRule.size() + 2, "\"no-such-rule\"");
    EXPECT_FALSE(plan::planFromJson(Renamed, &Err));
    EXPECT_NE(Err.find("no-such-rule"), std::string::npos) << Err;
  }

  EXPECT_FALSE(plan::planFromJson("not json", &Err));
  EXPECT_FALSE(plan::planFromJson("{}", &Err));
  EXPECT_FALSE(plan::planFromJson("[1,2,3]", &Err));
}

//===----------------------------------------------------------------------===//
// PlanBuild
//===----------------------------------------------------------------------===//

TEST(PlanBuild, DerivationIsDeterministic) {
  for (const char *Pass : {"mem2reg", "instcombine", "licm", "gvn"}) {
    plan::CheckerPlan A = plan::buildPlan(Pass, passes::BugConfig::fixed());
    plan::CheckerPlan B = plan::buildPlan(Pass, passes::BugConfig::fixed());
    EXPECT_EQ(plan::planToJson(A), plan::planToJson(B)) << Pass;
    EXPECT_GT(A.ProfiledFunctions, 0u) << Pass;
  }
}

//===----------------------------------------------------------------------===//
// PlanChecker — the soundness core
//===----------------------------------------------------------------------===//

// Specialized dispatch must reproduce the general checker's verdicts
// function-for-function on the fixed tree AND on every historical bug
// preset — on the buggy trees the *failures* (Where, Reason) must match
// too, because that is what a campaign reports and an engineer debugs.
TEST(PlanChecker, SpecializedAgreesWithGeneralAcrossPresets) {
  std::vector<std::pair<std::string, passes::BugConfig>> Presets;
  Presets.emplace_back("fixed", passes::BugConfig::fixed());
  for (const auto &KV : passes::BugConfig::historicalPresets())
    Presets.emplace_back(KV.first, KV.second);

  for (const auto &Preset : Presets) {
    auto Pipe = passes::makeO2Pipeline(Preset.second);
    std::map<std::string, plan::CheckerPlan> Plans;
    for (const auto &P : Pipe)
      if (!Plans.count(P->name())) {
        plan::PlanBuildOptions BO;
        BO.FeedstockModules = 2;
        Plans.emplace(P->name(),
                      plan::buildPlan(P->name(), Preset.second, BO));
      }

    for (uint64_t Seed : {11ull, 12ull}) {
      workload::GenOptions G;
      G.Seed = Seed;
      ir::Module Cur = workload::generateModule(G);
      for (const auto &P : Pipe) {
        passes::PassResult PR = P->run(Cur, /*GenProof=*/true);
        checker::ModuleResult General = checker::validate(Cur, PR.Tgt, PR.Proof);
        checker::PlanRunStats PS;
        checker::ModuleResult Spec = checker::validateWithPlan(
            Cur, PR.Tgt, PR.Proof, Plans.at(P->name()).Spec, &PS);
        expectSameResults(General, Spec,
                          Preset.first + "/" + P->name() + "/seed " +
                              std::to_string(Seed));
        EXPECT_EQ(PS.Specialized + PS.Fallbacks, General.Functions.size())
            << "every function is either specialized or fell back";
        Cur = std::move(PR.Tgt);
      }
    }
  }
}

// A plan whose profile never saw the proof's rules must fail the guard
// and fall back — and still produce the general checker's verdict.
TEST(PlanChecker, OutOfProfileProofHardFallsBack) {
  workload::GenOptions G;
  G.Seed = 21;
  ir::Module Src = workload::generateModule(G);
  auto P = passes::makePass("instcombine", passes::BugConfig::fixed());
  passes::PassResult PR = P->run(Src, /*GenProof=*/true);

  checker::PlanSpec Paranoid; // admits no rules, no autos
  Paranoid.AllowedRules.assign(erhl::NumInfruleKinds, 0);
  checker::PlanRunStats PS;
  checker::ModuleResult Spec =
      checker::validateWithPlan(Src, PR.Tgt, PR.Proof, Paranoid, &PS);
  checker::ModuleResult General = checker::validate(Src, PR.Tgt, PR.Proof);
  expectSameResults(General, Spec, "paranoid plan");
  EXPECT_GT(PS.Fallbacks, 0u)
      << "an instcombine proof applies rules an empty guard cannot admit";
}

//===----------------------------------------------------------------------===//
// PlanCache
//===----------------------------------------------------------------------===//

plan::CheckerPlan tinyPlan(const char *Pass) {
  plan::PlanBuildOptions BO;
  BO.FeedstockModules = 1;
  return plan::buildPlan(Pass, passes::BugConfig::fixed(), BO);
}

TEST(PlanCache, LruEvictsLeastRecentlyUsed) {
  plan::PlanCacheOptions CO;
  CO.MaxMemEntries = 1;
  plan::PlanCache C(CO);
  cache::Fingerprint K1{1, 1}, K2{2, 2};
  C.store(K1, std::make_shared<plan::CheckerPlan>(tinyPlan("mem2reg")));
  C.store(K2, std::make_shared<plan::CheckerPlan>(tinyPlan("gvn")));
  EXPECT_EQ(C.load(K2) != nullptr, true) << "newest entry survives";
  EXPECT_EQ(C.load(K1), nullptr) << "capacity 1: oldest entry evicted";
  plan::PlanCacheCounters N = C.counters();
  EXPECT_EQ(N.MemHits, 1u);
  EXPECT_EQ(N.Misses, 1u);
  EXPECT_EQ(N.Stores, 2u);
}

TEST(PlanCache, DiskTierSharesPlansAcrossInstances) {
  DirGuard Dir(freshDir("share"));
  cache::DiskStoreOptions DO;
  DO.Dir = Dir.Dir;
  cache::DiskStore Disk(DO);
  ASSERT_TRUE(Disk.ok());

  cache::Fingerprint Key = cache::fingerprintPlan(
      "gvn", passes::BugConfig::fixed(), checker::versionFingerprint(),
      checker::PlanSchemaVersion);

  {
    plan::PlanCacheOptions CO;
    CO.Disk = &Disk;
    plan::PlanCache Writer(CO);
    Writer.store(Key, std::make_shared<plan::CheckerPlan>(tinyPlan("gvn")));
  }

  // A second cache (another "member") over the same tier warm-hits disk.
  plan::PlanCacheOptions CO;
  CO.Disk = &Disk;
  plan::PlanCache Reader(CO);
  auto Hit = Reader.load(Key);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->PassName, "gvn");
  plan::PlanCacheCounters N = Reader.counters();
  EXPECT_EQ(N.DiskHits, 1u);
  // The disk hit was promoted: the next load is a memory hit.
  EXPECT_NE(Reader.load(Key), nullptr);
  EXPECT_EQ(Reader.counters().MemHits, 1u);
}

TEST(PlanCache, CorruptDiskPayloadIsACountedMissNeverAnError) {
  DirGuard Dir(freshDir("corrupt"));
  cache::DiskStoreOptions DO;
  DO.Dir = Dir.Dir;
  cache::DiskStore Disk(DO);
  ASSERT_TRUE(Disk.ok());

  cache::Fingerprint Key{0xbad, 0xf00d};
  Disk.store(Key, "this is not a plan");

  plan::PlanCacheOptions CO;
  CO.Disk = &Disk;
  plan::PlanCache C(CO);
  EXPECT_EQ(C.load(Key), nullptr);
  plan::PlanCacheCounters N = C.counters();
  EXPECT_EQ(N.CorruptPlans, 1u);
  EXPECT_EQ(N.Misses, 1u);
}

//===----------------------------------------------------------------------===//
// PlanManager
//===----------------------------------------------------------------------===//

struct Unit {
  ir::Module Src;
  ir::Module Tgt;
  proofgen::Proof Proof;
  std::string Pass;
};

Unit makeUnit(uint64_t Seed, const char *Pass,
              const passes::BugConfig &Bugs = passes::BugConfig::fixed()) {
  workload::GenOptions G;
  G.Seed = Seed;
  Unit U;
  U.Src = workload::generateModule(G);
  auto P = passes::makePass(Pass, Bugs);
  passes::PassResult PR = P->run(U.Src, /*GenProof=*/true);
  U.Tgt = std::move(PR.Tgt);
  U.Proof = std::move(PR.Proof);
  U.Pass = Pass;
  return U;
}

TEST(PlanManager, OffModeRunsTheGeneralCheckerOnly) {
  plan::PlanManagerOptions PO; // Mode = Off
  plan::PlanManager M(PO);
  Unit U = makeUnit(31, "instcombine");
  plan::PlanCallStats PS;
  checker::ModuleResult R = M.validate(U.Pass, passes::BugConfig::fixed(),
                                       U.Src, U.Tgt, U.Proof, &PS);
  expectSameResults(checker::validate(U.Src, U.Tgt, U.Proof), R, "off mode");
  EXPECT_EQ(PS.Builds, 0u);
  EXPECT_EQ(PS.Specialized, 0u);
  EXPECT_EQ(PS.ShadowChecks, 0u);
}

TEST(PlanManager, BuildsOncePerKeyAtAnyConcurrency) {
  plan::PlanManagerOptions PO;
  PO.Mode = plan::PlanMode::On;
  plan::PlanManager M(PO);

  constexpr unsigned Threads = 8;
  std::atomic<uint64_t> Builds{0}, Hits{0};
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I != Threads; ++I)
    Ts.emplace_back([&] {
      plan::PlanCallStats PS;
      auto P = M.getOrBuild("gvn", passes::BugConfig::fixed(), &PS);
      EXPECT_NE(P, nullptr);
      Builds += PS.Builds;
      Hits += PS.Hits;
    });
  for (auto &T : Ts)
    T.join();

  // Deterministic at any interleaving: the first caller builds, every
  // other caller blocks on the build and then hits memory — never a
  // timing-dependent second build or miss.
  EXPECT_EQ(Builds.load(), 1u);
  EXPECT_EQ(Hits.load(), Threads - 1);
}

TEST(PlanManager, ShadowModeEmitsGeneralVerdictAndCountsChecks) {
  plan::PlanManagerOptions PO;
  PO.Mode = plan::PlanMode::Shadow;
  plan::PlanManager M(PO);
  Unit U = makeUnit(33, "gvn");
  plan::PlanCallStats PS;
  checker::ModuleResult R = M.validate(U.Pass, passes::BugConfig::fixed(),
                                       U.Src, U.Tgt, U.Proof, &PS);
  expectSameResults(checker::validate(U.Src, U.Tgt, U.Proof), R, "shadow");
  EXPECT_EQ(PS.ShadowChecks, R.Functions.size());
  EXPECT_EQ(PS.Divergences, 0u)
      << "divergence is unreachable absent a checker bug";
  EXPECT_EQ(M.effectiveMode(), plan::PlanMode::Shadow);
}

TEST(PlanManager, InjectedDivergenceWalksTheDemotionLadder) {
  plan::PlanManagerOptions PO;
  PO.Mode = plan::PlanMode::Shadow;
  plan::PlanManager M(PO);
  Unit U = makeUnit(34, "instcombine");

  M.injectDivergenceForTest();
  plan::PlanCallStats PS;
  checker::ModuleResult R = M.validate(U.Pass, passes::BugConfig::fixed(),
                                       U.Src, U.Tgt, U.Proof, &PS);
  // Even the diverging call emits the general verdict — shadow mode's
  // specialized run is observation, never the answer.
  expectSameResults(checker::validate(U.Src, U.Tgt, U.Proof), R, "diverged");
  EXPECT_EQ(PS.Divergences, 1u);
  EXPECT_EQ(M.divergences(), 1u);
  EXPECT_EQ(M.demotions(), 1u);
  EXPECT_EQ(M.configuredMode(), plan::PlanMode::Shadow);
  EXPECT_EQ(M.effectiveMode(), plan::PlanMode::Off)
      << "one strike: plans stop influencing the hot path";

  // Demoted: later calls run the general checker with no plan activity.
  plan::PlanCallStats After;
  checker::ModuleResult R2 = M.validate(U.Pass, passes::BugConfig::fixed(),
                                        U.Src, U.Tgt, U.Proof, &After);
  expectSameResults(R, R2, "post-demotion");
  EXPECT_EQ(After.Specialized, 0u);
  EXPECT_EQ(After.ShadowChecks, 0u);
  EXPECT_EQ(M.demotions(), 1u) << "the ladder demotes once, not per call";
}

TEST(PlanManager, StatsJsonCarriesFlatTotalsAndPerPreset) {
  plan::PlanManagerOptions PO;
  PO.Mode = plan::PlanMode::On;
  plan::PlanManager M(PO);
  Unit U = makeUnit(35, "mem2reg");
  M.validate(U.Pass, passes::BugConfig::fixed(), U.Src, U.Tgt, U.Proof);
  M.validate(U.Pass, passes::BugConfig::fixed(), U.Src, U.Tgt, U.Proof);

  json::Value S = M.statsJson();
  const json::Value *Mode = S.find("mode");
  ASSERT_NE(Mode, nullptr);
  EXPECT_EQ(Mode->getString(), "on");
  EXPECT_EQ(S.find("builds")->getInt(), 1);
  EXPECT_EQ(S.find("mem_hits")->getInt(), 1);
  EXPECT_EQ(S.find("divergences")->getInt(), 0);
  const json::Value *PerPreset = S.find("per_preset");
  ASSERT_NE(PerPreset, nullptr);
  EXPECT_EQ(PerPreset->members().size(), 1u);
  for (const auto &KV : PerPreset->members())
    EXPECT_EQ(KV.second.find("requests")->getInt(), 2);
}

TEST(PlanManager, SharedDiskTierSkipsRebuildInSecondManager) {
  DirGuard Dir(freshDir("mgr-share"));
  cache::DiskStoreOptions DO;
  DO.Dir = Dir.Dir;
  cache::DiskStore Disk(DO);
  ASSERT_TRUE(Disk.ok());

  plan::PlanManagerOptions PO;
  PO.Mode = plan::PlanMode::On;
  PO.Disk = &Disk;
  {
    plan::PlanManager First(PO);
    plan::PlanCallStats PS;
    First.getOrBuild("licm", passes::BugConfig::fixed(), &PS);
    EXPECT_EQ(PS.Builds, 1u);
  }
  plan::PlanManager Second(PO); // fresh memory, same tier
  plan::PlanCallStats PS;
  auto P = Second.getOrBuild("licm", passes::BugConfig::fixed(), &PS);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(PS.Builds, 0u) << "the plan came from the shared disk tier";
  EXPECT_EQ(PS.Hits, 1u);
}

//===----------------------------------------------------------------------===//
// PlanServer — the stats document contract
//===----------------------------------------------------------------------===//

TEST(PlanServerStats, ServiceDocumentCarriesPlanAndBatchingSections) {
  server::ServiceOptions O;
  O.Jobs = 2;
  O.Driver.WriteFiles = false;
  O.Plan = plan::PlanMode::Shadow;
  server::ValidationService S(O);
  server::LoopbackTransport T(S);

  for (uint64_t Seed : {61, 62, 63}) {
    server::Request R;
    R.Kind = server::RequestKind::Validate;
    R.Id = static_cast<int64_t>(Seed);
    R.HasSeed = true;
    R.Seed = Seed;
    server::Response Resp = T.call(R);
    ASSERT_EQ(Resp.Status, server::ResponseStatus::Ok) << Resp.Reason;
  }

  server::Request StatsReq;
  StatsReq.Kind = server::RequestKind::Stats;
  server::Response R = T.call(StatsReq);
  ASSERT_EQ(R.Status, server::ResponseStatus::Ok);

  // The plan section: mode strings plus cluster-summable flat ints.
  const json::Value *Plan = R.Stats.find("plan");
  ASSERT_NE(Plan, nullptr);
  EXPECT_EQ(Plan->find("mode")->getString(), "shadow");
  EXPECT_EQ(Plan->find("effective_mode")->getString(), "shadow");
  EXPECT_GT(statInt(R.Stats, "plan", "shadow_checks"), 0);
  EXPECT_EQ(statInt(R.Stats, "plan", "divergences"), 0);
  EXPECT_GT(statInt(R.Stats, "plan", "builds"), 0);
  ASSERT_NE(Plan->find("per_preset"), nullptr);

  // The micro-batch section: per-preset counters under the same roof.
  const json::Value *Batching = R.Stats.find("batching");
  ASSERT_NE(Batching, nullptr);
  EXPECT_GT(statInt(R.Stats, "batching", "batches_formed"), 0);
  EXPECT_GE(statInt(R.Stats, "batching", "batched_units"),
            statInt(R.Stats, "batching", "batches_formed"));
  EXPECT_GE(statInt(R.Stats, "batching", "mean_batch_size_ppm"), 1000000);
  ASSERT_NE(Batching->find("per_preset"), nullptr);

  // Verdicts under shadow plans are the general checker's: the document
  // must show zero divergences after real traffic.
  EXPECT_EQ(S.counters().InternalErrors, 0u);
}

} // namespace
