//===- tests/ErhlTest.cpp - Assertion language and rules ----------------------===//
//
// Unit tests for the ERHL layer: expression/predicate structure, the
// semantic evaluator (including its trap handling, which is what lets the
// rule verifier refute constexpr_no_ub), serialization round-trips, and
// direct applications of the core inference rules.
//
//===----------------------------------------------------------------------===//

#include "erhl/Eval.h"
#include "erhl/Infrule.h"
#include "erhl/Serialize.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::erhl;
using crellvm::interp::RtValue;

namespace {

ir::Type I32 = ir::Type::intTy(32);

ValT reg(const char *N) { return ValT::phy(ir::Value::reg(N, I32)); }
ValT cst(int64_t C) { return ValT::phy(ir::Value::constInt(C, I32)); }
Expr V(const ValT &X) { return Expr::val(X); }
Expr add(const ValT &A, const ValT &B) {
  return Expr::bop(ir::Opcode::Add, I32, A, B);
}

TEST(ExprTest, ShapeAndEquality) {
  EXPECT_TRUE(add(reg("a"), cst(1)).sameShape(add(reg("b"), cst(2))));
  EXPECT_FALSE(add(reg("a"), cst(1)).sameShape(
      Expr::bop(ir::Opcode::Sub, I32, reg("a"), cst(1))));
  EXPECT_FALSE(Expr::gep(true, reg("p"), cst(1))
                   .sameShape(Expr::gep(false, reg("p"), cst(1))));
  EXPECT_EQ(add(reg("a"), cst(1)), add(reg("a"), cst(1)));
  EXPECT_NE(add(reg("a"), cst(1)), add(reg("a"), cst(2)));
}

TEST(ExprTest, TagsDistinguishRegisters) {
  ValT Phy = reg("x");
  ValT Ghost = ValT::ghost("x", I32);
  ValT Old = ValT::old("x", I32);
  EXPECT_NE(V(Phy), V(Ghost));
  EXPECT_NE(V(Ghost), V(Old));
  EXPECT_EQ(Ghost.regT().T, Tag::Ghost);
  EXPECT_EQ(V(Ghost).str(), "%x^");
  EXPECT_EQ(V(Old).str(), "%x~old");
}

TEST(ExprTest, Substitution) {
  Expr E = add(reg("a"), reg("a"));
  EXPECT_EQ(E.substituted(reg("a"), cst(3)), add(cst(3), cst(3)));
  EXPECT_EQ(E.substitutedAt(1, cst(3)), add(reg("a"), cst(3)));
  EXPECT_EQ(E.substitutedAt(0, cst(3)), add(cst(3), reg("a")));
}

TEST(PredTest, NoaliasIsNormalized) {
  EXPECT_EQ(Pred::noalias(reg("p"), reg("q")),
            Pred::noalias(reg("q"), reg("p")));
}

TEST(AssertionTest, Includes) {
  Assertion Strong, Weak;
  Strong.Src.insert(Pred::lessdef(V(reg("x")), V(cst(1))));
  Strong.Src.insert(Pred::unique("p"));
  Weak.Src.insert(Pred::unique("p"));
  Weak.Maydiff.insert(RegT{"x", Tag::Phy});
  EXPECT_TRUE(Strong.includes(Weak));  // more facts, smaller maydiff
  EXPECT_FALSE(Weak.includes(Strong)); // missing the lessdef
  Strong.Maydiff.insert(RegT{"y", Tag::Phy});
  EXPECT_FALSE(Strong.includes(Weak)); // y may differ but Weak forbids it
}

// --- Semantic evaluation -------------------------------------------------------

EvalState stateWith(std::map<std::string, RtValue> Regs) {
  EvalState S;
  for (auto &KV : Regs)
    S.Regs[RegT{KV.first, Tag::Phy}] = KV.second;
  S.Memory[0] = {RtValue::intVal(7, 32), RtValue::intVal(8, 32)};
  S.Globals["G"] = 0;
  return S;
}

TEST(EvalTest, LessdefBasics) {
  EvalState S = stateWith({{"a", RtValue::intVal(5, 32)}});
  EXPECT_TRUE(holdsLessdef(V(reg("a")), V(cst(5)), S));
  EXPECT_FALSE(holdsLessdef(V(reg("a")), V(cst(6)), S));
  // Undef on the left refines to anything.
  EvalState U = stateWith({{"a", RtValue::undef()}});
  EXPECT_TRUE(holdsLessdef(V(reg("a")), V(cst(6)), U));
  // ... but not on the right.
  EXPECT_FALSE(holdsLessdef(V(cst(6)),
                            V(ValT::phy(ir::Value::undef(I32))), U));
}

TEST(EvalTest, UnboundRegistersAreUndef) {
  EvalState S;
  EXPECT_TRUE(holdsLessdef(V(reg("nope")), V(cst(1)), S));
}

TEST(EvalTest, TrappingRhsFalsifiesLessdef) {
  // The semantic core of the constexpr_no_ub refutation: `undef >= C`
  // is FALSE when evaluating C traps.
  ir::Value G = ir::Value::global("G");
  ir::Value P2I = ir::Value::constExpr(ir::Opcode::PtrToInt, I32, {G});
  ir::Value Diff = ir::Value::constExpr(ir::Opcode::Sub, I32, {P2I, P2I});
  ir::Value C = ir::Value::constExpr(
      ir::Opcode::SDiv, I32, {ir::Value::constInt(1, I32), Diff});
  EvalState S = stateWith({});
  Expr Undef = V(ValT::phy(ir::Value::undef(I32)));
  EXPECT_FALSE(holdsLessdef(Undef, V(ValT::phy(C)), S));
  // A non-trapping constant is fine.
  EXPECT_TRUE(holdsLessdef(Undef, V(cst(7)), S));
}

TEST(EvalTest, LoadsReadTheStateMemory) {
  EvalState S = stateWith({{"p", RtValue::ptrVal(0, 1)}});
  Expr L = Expr::load(I32, reg("p"));
  EXPECT_TRUE(holdsLessdef(L, V(cst(8)), S));
  // Out-of-bounds load traps and falsifies.
  S.Regs[RegT{"p", Tag::Phy}] = RtValue::ptrVal(0, 9);
  EXPECT_FALSE(holdsLessdef(L, V(cst(8)), S));
}

TEST(EvalTest, MemoryPredicatesAreUndecidable) {
  EvalState S = stateWith({});
  EXPECT_FALSE(holdsPred(Pred::unique("p"), S).has_value());
  EXPECT_FALSE(
      holdsPred(Pred::priv(reg("p")), S).has_value());
}

TEST(EvalTest, NoaliasSemantics) {
  EvalState S = stateWith({{"p", RtValue::ptrVal(0, 0)},
                           {"q", RtValue::ptrVal(1, 0)},
                           {"r", RtValue::ptrVal(0, 1)}});
  EXPECT_EQ(holdsPred(Pred::noalias(reg("p"), reg("q")), S),
            std::optional<bool>(true));
  EXPECT_EQ(holdsPred(Pred::noalias(reg("p"), reg("r")), S),
            std::optional<bool>(false));
}

// --- Serialization ---------------------------------------------------------------

TEST(SerializeTest, ExprRoundTrip) {
  std::vector<Expr> Cases = {
      V(reg("x")),
      V(cst(-7)),
      V(ValT::ghost("g", I32)),
      V(ValT::old("o", I32)),
      add(reg("a"), cst(1)),
      Expr::icmp(ir::IcmpPred::Sle, reg("a"), reg("b")),
      Expr::select(I32, ValT::phy(ir::Value::reg("c", ir::Type::intTy(1))),
                   reg("a"), cst(0)),
      Expr::cast(ir::Opcode::ZExt, ir::Type::intTy(64), reg("a")),
      Expr::gep(true, ValT::phy(ir::Value::global("G")),
                ValT::phy(ir::Value::constInt(2, ir::Type::intTy(64)))),
      Expr::load(I32, reg("p")),
  };
  for (const Expr &E : Cases) {
    auto Back = exprFromJson(exprToJson(E));
    ASSERT_TRUE(Back) << E.str();
    EXPECT_EQ(*Back, E) << E.str();
  }
}

TEST(SerializeTest, PredAndAssertionRoundTrip) {
  Assertion A;
  A.Src.insert(Pred::lessdef(add(reg("a"), cst(1)), V(reg("x"))));
  A.Src.insert(Pred::unique("p"));
  A.Tgt.insert(Pred::priv(reg("q")));
  A.Tgt.insert(Pred::noalias(reg("p"), reg("q")));
  A.Maydiff.insert(RegT{"x", Tag::Phy});
  A.Maydiff.insert(RegT{"g", Tag::Ghost});
  auto Back = assertionFromJson(assertionToJson(A));
  ASSERT_TRUE(Back);
  EXPECT_TRUE(*Back == A);
}

TEST(SerializeTest, InfruleRoundTrip) {
  Infrule R;
  R.K = InfruleKind::AddAssoc;
  R.S = Side::Tgt;
  R.Args = {V(reg("y")), V(reg("x")), V(reg("a")), V(cst(1)), V(cst(2)),
            V(cst(3))};
  auto Back = infruleFromJson(infruleToJson(R));
  ASSERT_TRUE(Back);
  EXPECT_EQ(Back->K, R.K);
  EXPECT_EQ(Back->S, R.S);
  EXPECT_EQ(Back->Args, R.Args);
}

TEST(SerializeTest, EveryRuleNameRoundTrips) {
  for (uint16_t K = 0; K != NumInfruleKinds; ++K) {
    auto Kind = static_cast<InfruleKind>(K);
    auto Back = infruleKindFromName(infruleKindName(Kind));
    ASSERT_TRUE(Back) << infruleKindName(Kind);
    EXPECT_EQ(*Back, Kind);
  }
}

// --- Direct rule applications ------------------------------------------------------

TEST(RuleTest, TransitivityRequiresBothPremises) {
  Assertion A;
  A.Src.insert(Pred::lessdef(V(reg("a")), V(reg("b"))));
  Infrule R;
  R.K = InfruleKind::Transitivity;
  R.S = Side::Src;
  R.Args = {V(reg("a")), V(reg("b")), V(reg("c"))};
  EXPECT_TRUE(applyInfrule(R, A).has_value()); // missing b >= c
  A.Src.insert(Pred::lessdef(V(reg("b")), V(reg("c"))));
  EXPECT_FALSE(applyInfrule(R, A).has_value());
  EXPECT_TRUE(A.Src.count(Pred::lessdef(V(reg("a")), V(reg("c")))));
}

TEST(RuleTest, IntroGhostRefreshesTheGhost) {
  Assertion A;
  ValT G = ValT::ghost("g", I32);
  // A stale fact about g and g in the maydiff set.
  A.Src.insert(Pred::lessdef(V(G), V(cst(9))));
  A.Maydiff.insert(G.regT());
  Infrule R;
  R.K = InfruleKind::IntroGhost;
  R.Args = {V(G), V(reg("a"))};
  EXPECT_FALSE(applyInfrule(R, A).has_value());
  EXPECT_FALSE(A.Src.count(Pred::lessdef(V(G), V(cst(9))))); // dropped
  EXPECT_FALSE(A.Maydiff.count(G.regT()));
  EXPECT_TRUE(A.Src.count(Pred::lessdef(V(reg("a")), V(G))));
  EXPECT_TRUE(A.Tgt.count(Pred::lessdef(V(G), V(reg("a")))));
}

TEST(RuleTest, IntroGhostRejectsMaydiffOperands) {
  Assertion A;
  A.Maydiff.insert(RegT{"a", Tag::Phy});
  Infrule R;
  R.K = InfruleKind::IntroGhost;
  R.Args = {V(ValT::ghost("g", I32)), V(reg("a"))};
  EXPECT_TRUE(applyInfrule(R, A).has_value());
}

TEST(RuleTest, ReduceMaydiffLessdef) {
  Assertion A;
  A.Maydiff.insert(RegT{"x", Tag::Phy});
  Expr E = add(reg("a"), cst(1));
  A.Src.insert(Pred::lessdef(V(reg("x")), E));
  A.Tgt.insert(Pred::lessdef(E, V(reg("x"))));
  Infrule R;
  R.K = InfruleKind::ReduceMaydiffLessdef;
  R.Args = {V(reg("x")), E, E};
  EXPECT_FALSE(applyInfrule(R, A).has_value());
  EXPECT_TRUE(A.Maydiff.empty());
}

TEST(RuleTest, ReduceMaydiffLessdefRejectsMaydiffMiddle) {
  Assertion A;
  A.Maydiff.insert(RegT{"x", Tag::Phy});
  A.Maydiff.insert(RegT{"a", Tag::Phy}); // middle operand may differ
  Expr E = add(reg("a"), cst(1));
  A.Src.insert(Pred::lessdef(V(reg("x")), E));
  A.Tgt.insert(Pred::lessdef(E, V(reg("x"))));
  Infrule R;
  R.K = InfruleKind::ReduceMaydiffLessdef;
  R.Args = {V(reg("x")), E, E};
  EXPECT_TRUE(applyInfrule(R, A).has_value());
  EXPECT_TRUE(A.Maydiff.count(RegT{"x", Tag::Phy}));
}

TEST(RuleTest, FusedRuleForwardAndReverse) {
  // add_zero with both def directions present concludes both directions.
  Assertion A;
  Expr Def = add(reg("a"), cst(0));
  A.Src.insert(Pred::lessdef(V(reg("y")), Def));
  A.Src.insert(Pred::lessdef(Def, V(reg("y"))));
  Infrule R;
  R.K = InfruleKind::AddZero;
  R.S = Side::Src;
  R.Args = {V(reg("y")), V(reg("a"))};
  EXPECT_FALSE(applyInfrule(R, A).has_value());
  EXPECT_TRUE(A.Src.count(Pred::lessdef(V(reg("y")), V(reg("a")))));
  EXPECT_TRUE(A.Src.count(Pred::lessdef(V(reg("a")), V(reg("y")))));
}

TEST(RuleTest, SubstituteOpRespectsDivisorBan) {
  Assertion A;
  A.Src.insert(Pred::lessdef(V(reg("a")), V(reg("b"))));
  Expr Div = Expr::bop(ir::Opcode::SDiv, I32, reg("x"), reg("a"));
  Infrule R;
  R.K = InfruleKind::SubstituteOp;
  R.S = Side::Src;
  R.Args = {Div, V(cst(1)), V(reg("a")), V(reg("b"))};
  EXPECT_TRUE(applyInfrule(R, A).has_value()); // divisor position refused
  Expr Div2 = Expr::bop(ir::Opcode::SDiv, I32, reg("a"), reg("x"));
  Infrule R2;
  R2.K = InfruleKind::SubstituteOp;
  R2.S = Side::Src;
  R2.Args = {Div2, V(cst(0)), V(reg("a")), V(reg("b"))};
  EXPECT_FALSE(applyInfrule(R2, A).has_value()); // dividend is fine
}

TEST(RuleTest, WrongConstantIsRejected) {
  Assertion A;
  A.Src.insert(Pred::lessdef(V(reg("x")), add(reg("a"), cst(1))));
  A.Src.insert(Pred::lessdef(V(reg("y")), add(reg("x"), cst(2))));
  Infrule R;
  R.K = InfruleKind::AddAssoc;
  R.S = Side::Src;
  R.Args = {V(reg("y")), V(reg("x")), V(reg("a")), V(cst(1)), V(cst(2)),
            V(cst(4))}; // 1 + 2 != 4
  auto Err = applyInfrule(R, A);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("constant"), std::string::npos);
}

} // namespace
