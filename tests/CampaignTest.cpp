//===- tests/CampaignTest.cpp - Streaming campaign driver tests -----------===//
//
// The campaign subsystem (src/campaign), tested at three levels:
//
//   CampaignUnit      unit identity: seed mixing, fingerprints, stream;
//   CampaignLocal     the in-process windowed backend: digest-level
//                     determinism at any (window, jobs), the bounded
//                     in-flight window, local bug-hunts, and replays that
//                     reproduce their findings from (seed, index) alone;
//   CampaignServer    the acceptance path: a REAL crellvm-served daemon
//                     (fork/exec of the installed binary, --oracle armed)
//                     driven over its socket — the end-to-end bug hunt
//                     must rediscover all 4+1 historical presets through
//                     the service, and a soak must pass the stats
//                     monotonicity + drain-equation gates.
//
// Suite names: "CampaignServer" contains "Server" on purpose, so the TSan
// sweep in ci.yml (-R '...|Server|...') exercises the socket campaign
// loop too.
//
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"

#include "ir/Printer.h"
#include "workload/RandomProgram.h"

#include <chrono>
#include <csignal>
#include <cstring>
#include <set>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::campaign;

namespace {

//===----------------------------------------------------------------------===//
// CampaignUnit
//===----------------------------------------------------------------------===//

TEST(CampaignUnit, UnitSeedsAreDeterministicDistinctAnd63Bit) {
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I != 512; ++I) {
    uint64_t S = unitSeed(1, I);
    EXPECT_EQ(S, unitSeed(1, I)) << "unit seed must be a pure function";
    EXPECT_EQ(S & (1ull << 63), 0u)
        << "seeds must survive signed wire integers";
    Seen.insert(S);
  }
  EXPECT_EQ(Seen.size(), 512u) << "neighboring units must decorrelate";
  EXPECT_NE(unitSeed(1, 7), unitSeed(2, 7))
      << "campaigns with different seeds must not share units";
}

TEST(CampaignUnit, FingerprintMatchesGeneratedModuleText) {
  // The fingerprint is FNV-1a-64 of exactly what the generator prints for
  // the unit's seed — the same module a replay or a seed-named daemon
  // request materializes.
  workload::GenOptions G;
  G.Seed = unitSeed(3, 11);
  EXPECT_EQ(unitFingerprint(3, 11),
            fnv1a64(ir::printModule(workload::generateModule(G))));
}

TEST(CampaignUnit, StreamYieldsIndexOrderWithoutMaterializing) {
  UnitStream S(9, 5, 8);
  EXPECT_EQ(S.remaining(), 3u);
  for (uint64_t I = 5; I != 8; ++I) {
    auto D = S.next();
    ASSERT_TRUE(D.has_value());
    EXPECT_EQ(D->Index, I);
    EXPECT_EQ(D->Seed, unitSeed(9, I));
  }
  EXPECT_FALSE(S.next().has_value());
  EXPECT_EQ(S.remaining(), 0u);
}

//===----------------------------------------------------------------------===//
// CampaignLocal
//===----------------------------------------------------------------------===//

CampaignOptions localOptions(Mode M) {
  CampaignOptions O;
  O.M = M;
  O.CampaignSeed = 1;
  O.ProgressEveryUnits = 0; // silent
  return O;
}

// The seed-determinism satellite: the same campaign swept at any window
// size and any job count touches exactly the same units — the
// order-independent fingerprint digest and all verdict sums must be
// bit-identical, and the observed in-flight high-water mark must respect
// each run's window.
TEST(CampaignLocal, DigestAndVerdictsIdenticalAtAnyWindowAndJobs) {
  const struct {
    size_t Window;
    unsigned Jobs;
  } Shapes[] = {{3, 1}, {16, 4}, {5, 2}};
  CampaignReport Base;
  for (size_t I = 0; I != std::size(Shapes); ++I) {
    CampaignOptions O = localOptions(Mode::Throughput);
    O.Units = 16;
    O.Window = Shapes[I].Window;
    O.Jobs = Shapes[I].Jobs;
    O.ComputeDigest = true;
    CampaignReport R = runCampaign(O);
    ASSERT_TRUE(R.success()) << R.GateFailure << R.TransportError;
    EXPECT_EQ(R.Submitted, 16u);
    EXPECT_EQ(R.Completed, 16u);
    EXPECT_NE(R.UnitsDigest, 0u);
    EXPECT_LE(R.MaxInFlight, Shapes[I].Window)
        << "the in-flight window is the memory bound";
    EXPECT_GT(R.PeakRssBytes, 0u);
    if (I == 0) {
      Base = R;
      continue;
    }
    EXPECT_EQ(R.UnitsDigest, Base.UnitsDigest)
        << "window/jobs must not change which units a campaign names";
    EXPECT_EQ(R.V, Base.V);
    EXPECT_EQ(R.F, Base.F);
    EXPECT_EQ(R.NS, Base.NS);
    EXPECT_EQ(R.Diff, Base.Diff);
  }
}

TEST(CampaignLocal, BugHuntFindsEveryHistoricalPresetWithReplayableSeed) {
  CampaignOptions O = localOptions(Mode::BugHunt);
  O.Units = 100; // per-preset budget; all five trip well inside it
  O.Window = 8;
  O.Jobs = 4;
  CampaignReport R = runCampaign(O);
  ASSERT_TRUE(R.TransportError.empty()) << R.TransportError;
  EXPECT_TRUE(R.HuntMissed.empty()) << R.GateFailure;
  ASSERT_TRUE(R.success()) << R.GateFailure;

  // One finding per preset, each fully named by (campaign seed, index):
  // replaying that single unit standalone must reproduce the same kind of
  // finding — no corpus, no window, no daemon required.
  std::set<std::string> Presets;
  for (const Finding &F : R.Findings) {
    EXPECT_EQ(F.Seed, unitSeed(O.CampaignSeed, F.UnitIndex));
    if (!Presets.insert(F.Preset).second)
      continue; // replay only each preset's first (minimal-index) finding
    CampaignOptions Rp = localOptions(Mode::Replay);
    Rp.ReplayUnit = F.UnitIndex;
    Rp.Bugs = F.Preset;
    Rp.Oracle = F.Kind == "oracle_divergence";
    CampaignReport RR = runCampaign(Rp);
    ASSERT_TRUE(RR.TransportError.empty()) << RR.TransportError;
    ASSERT_FALSE(RR.Findings.empty())
        << F.Preset << " unit " << F.UnitIndex << " did not reproduce";
    EXPECT_EQ(RR.Findings.front().Kind, F.Kind) << F.Preset;
    EXPECT_EQ(RR.Findings.front().UnitIndex, F.UnitIndex);
  }
  EXPECT_EQ(Presets.size(), 5u)
      << "expected findings for all 4+1 historical presets";
  // The 4 validation-visible bugs and the one checker-accepted
  // miscompilation, which only the differential oracle can see.
  for (const char *P : {"pr24179", "pr28562", "pr29057", "d38619"})
    EXPECT_TRUE(Presets.count(P)) << P;
  ASSERT_TRUE(Presets.count("pr33673"));
  for (const Finding &F : R.Findings) {
    if (F.Preset == "pr33673") {
      EXPECT_EQ(F.Kind, "oracle_divergence")
          << "pr33673 must be invisible to the checker and caught by the "
             "oracle";
    }
  }
}

// The minimal reproducer is deterministic: because units are issued in
// index order and the stream drains before concluding, the first
// (minimal-index) finding of a hunt is the same at any window size.
TEST(CampaignLocal, MinimalReproducerStableAcrossWindowSizes) {
  Finding First;
  for (size_t Window : {2, 23}) {
    CampaignOptions O = localOptions(Mode::BugHunt);
    O.HuntPresets = {"pr29057"}; // the latest-tripping preset (unit 45)
    O.Units = 100;
    O.Window = Window;
    O.Jobs = 4;
    CampaignReport R = runCampaign(O);
    ASSERT_TRUE(R.success()) << R.GateFailure << R.TransportError;
    ASSERT_FALSE(R.Findings.empty());
    if (Window == 2) {
      First = R.Findings.front();
      continue;
    }
    EXPECT_EQ(R.Findings.front().UnitIndex, First.UnitIndex)
        << "the minimal reproducer index must not depend on the window";
    EXPECT_EQ(R.Findings.front().Seed, First.Seed);
    EXPECT_EQ(R.Findings.front().Kind, First.Kind);
  }
}

TEST(CampaignLocal, SoakRequiresADaemon) {
  CampaignOptions O = localOptions(Mode::Soak);
  O.Units = 4;
  CampaignReport R = runCampaign(O);
  EXPECT_FALSE(R.TransportError.empty());
}

//===----------------------------------------------------------------------===//
// CampaignServer — against a real fork/exec'd crellvm-served
//===----------------------------------------------------------------------===//

struct Daemon {
  pid_t Pid = -1;
  std::string Socket;

  static Daemon spawn(const char *Tag, std::vector<std::string> ExtraArgs) {
    Daemon D;
    D.Socket = "/tmp/crellvm-campaign-test-" + std::to_string(::getpid()) +
               "-" + Tag + ".sock";
    ::unlink(D.Socket.c_str());
    std::vector<std::string> Args = {CRELLVM_SERVED_BIN, "--socket", D.Socket,
                                     "--jobs", "4"};
    Args.insert(Args.end(), ExtraArgs.begin(), ExtraArgs.end());
    D.Pid = ::fork();
    if (D.Pid == 0) {
      std::vector<char *> Argv;
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      // Quiet child: the daemon's log lines are noise inside gtest.
      ::freopen("/dev/null", "w", stderr);
      ::freopen("/dev/null", "w", stdout);
      ::execv(Argv[0], Argv.data());
      _exit(127);
    }
    return D;
  }

  /// True once the daemon accepts connections (bounded wait).
  bool waitReady() const {
    for (int Tries = 0; Tries != 400; ++Tries) {
      sockaddr_un Addr;
      std::memset(&Addr, 0, sizeof(Addr));
      Addr.sun_family = AF_UNIX;
      std::memcpy(Addr.sun_path, Socket.c_str(), Socket.size() + 1);
      int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (Fd >= 0 &&
          ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
              0) {
        ::close(Fd);
        return true;
      }
      if (Fd >= 0)
        ::close(Fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  void stop() {
    if (Pid <= 0)
      return;
    ::kill(Pid, SIGTERM);
    int Status = 0;
    ::waitpid(Pid, &Status, 0);
    ::unlink(Socket.c_str());
    Pid = -1;
  }
};

// THE acceptance criterion: the differential bug hunt rediscovers every
// historical preset end-to-end through a running crellvm-served — wire
// protocol, admission queue, batching, oracle and all — and each finding
// carries the standalone replay identity.
TEST(CampaignServer, EndToEndBugHuntRediscoversAllPresetsThroughDaemon) {
  Daemon D = Daemon::spawn("hunt", {"--oracle"});
  ASSERT_TRUE(D.waitReady()) << "daemon did not come up at " << D.Socket;

  CampaignOptions O = localOptions(Mode::BugHunt);
  O.Socket = D.Socket;
  O.Units = 100;
  O.Window = 16;
  O.MaxRetries = 10;
  CampaignReport R = runCampaign(O);
  D.stop();

  ASSERT_TRUE(R.TransportError.empty()) << R.TransportError;
  ASSERT_TRUE(R.success()) << R.GateFailure;
  EXPECT_TRUE(R.HuntMissed.empty());
  std::set<std::string> Presets;
  for (const Finding &F : R.Findings) {
    Presets.insert(F.Preset);
    EXPECT_EQ(F.Seed, unitSeed(O.CampaignSeed, F.UnitIndex)) << F.Preset;
  }
  EXPECT_EQ(Presets.size(), 5u);
  EXPECT_TRUE(Presets.count("pr33673"))
      << "the checker-accepted miscompilation must surface through the "
         "daemon's oracle divergences";
}

// A hunt that needs the oracle against a daemon that does not run it must
// fail loudly up front (scraping server.oracle), not silently miss.
TEST(CampaignServer, HuntingPr33673WithoutDaemonOracleFailsTheGate) {
  Daemon D = Daemon::spawn("nooracle", {});
  ASSERT_TRUE(D.waitReady());

  CampaignOptions O = localOptions(Mode::BugHunt);
  O.Socket = D.Socket;
  O.HuntPresets = {"pr33673"};
  O.Units = 10;
  CampaignReport R = runCampaign(O);
  D.stop();

  ASSERT_TRUE(R.TransportError.empty()) << R.TransportError;
  EXPECT_FALSE(R.success());
  EXPECT_NE(R.GateFailure.find("--oracle"), std::string::npos)
      << R.GateFailure;
  EXPECT_EQ(R.Submitted, 0u) << "must fail before streaming any unit";
}

// The soak gate against a live daemon: every scraped observation is
// monotone and satisfies the drain inequality; the final quiesced scrape
// satisfies the drain equation exactly.
TEST(CampaignServer, SoakPassesMonotonicityAndDrainGates) {
  // A small queue forces real queue_full backpressure and retries.
  Daemon D = Daemon::spawn("soak", {"--queue-max", "8"});
  ASSERT_TRUE(D.waitReady());

  CampaignOptions O = localOptions(Mode::Soak);
  O.Socket = D.Socket;
  O.Units = 60;
  O.Window = 24;
  O.MaxRetries = 20;
  O.StatsEveryUnits = 7;
  CampaignReport R = runCampaign(O);
  D.stop();

  ASSERT_TRUE(R.TransportError.empty()) << R.TransportError;
  ASSERT_TRUE(R.success()) << R.GateFailure;
  EXPECT_TRUE(R.StatsMonotonic);
  EXPECT_TRUE(R.DrainHolds);
  EXPECT_GE(R.StatsScrapes, 2u) << "mid-run scrapes must have happened";
  EXPECT_EQ(R.Submitted, 60u);
  EXPECT_LE(R.MaxInFlight, 24u);
}

} // namespace
