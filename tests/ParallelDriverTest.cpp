//===- tests/ParallelDriverTest.cpp - Parallel batch validation ---------------===//
//
// The work-stealing pool and the deterministic batch reduction: the same
// corpus validated at --jobs 1 and --jobs 8 must produce bit-identical
// #V/#F/#NS, diff-mismatch and oracle counts, and even the same retained
// failure samples (driver/Driver.h merges per-unit stats in unit-index
// order). This test is the one to run under CRELLVM_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "support/ThreadPool.h"
#include "workload/RandomProgram.h"

#include <atomic>
#include <filesystem>
#include <gtest/gtest.h>

using namespace crellvm;

namespace {

// --- ThreadPool ---------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I != 200; ++I)
    Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 200);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int I = 0; I != 16; ++I)
    Pool.submit([&Pool, &Count] {
      Count.fetch_add(1, std::memory_order_relaxed);
      Pool.submit(
          [&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), 32);
}

TEST(ThreadPool, GaugesQuiesceToZero) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.queueDepth(), 0u);
  EXPECT_EQ(Pool.activeWorkers(), 0u);
  for (int I = 0; I != 100; ++I)
    Pool.submit([] {});
  Pool.wait();
  // After wait() every task has both left the queue and finished running.
  EXPECT_EQ(Pool.queueDepth(), 0u);
  EXPECT_EQ(Pool.activeWorkers(), 0u);
}

TEST(ThreadPool, GaugesObserveBlockedTasks) {
  ThreadPool Pool(2);
  std::mutex M;
  std::condition_variable Cv;
  int Running = 0;
  bool Release = false;
  // Two tasks occupy both workers and park; two more must sit queued.
  for (int I = 0; I != 4; ++I)
    Pool.submit([&] {
      std::unique_lock<std::mutex> L(M);
      ++Running;
      Cv.notify_all();
      Cv.wait(L, [&] { return Release; });
    });
  {
    std::unique_lock<std::mutex> L(M);
    Cv.wait(L, [&] { return Running == 2; });
  }
  EXPECT_EQ(Pool.activeWorkers(), 2u);
  EXPECT_EQ(Pool.queueDepth(), 2u);
  {
    std::lock_guard<std::mutex> L(M);
    Release = true;
    Cv.notify_all();
  }
  Pool.wait();
  EXPECT_EQ(Pool.activeWorkers(), 0u);
  EXPECT_EQ(Pool.queueDepth(), 0u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool Pool(8);
  const size_t N = 1000;
  std::vector<int> Hits(N, 0);
  parallelFor(Pool, N, [&Hits](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I != N; ++I)
    ASSERT_EQ(Hits[I], 1) << "index " << I;
}

// --- Deterministic batch reduction --------------------------------------------

driver::BatchReport runBatch(unsigned Jobs, const passes::BugConfig &Bugs,
                             bool WriteFiles, ThreadPool *Pool = nullptr) {
  driver::DriverOptions DOpts;
  DOpts.WriteFiles = WriteFiles;
  DOpts.RunOracle = true;
  if (WriteFiles)
    DOpts.ExchangeDir =
        (std::filesystem::temp_directory_path() / "crellvm-parallel-test")
            .string();
  driver::BatchOptions BOpts;
  BOpts.Jobs = Jobs;
  return driver::runBatchValidated(
      Bugs, DOpts, 16,
      [](size_t I) {
        workload::GenOptions G;
        G.Seed = 40 + I;
        return workload::generateModule(G);
      },
      BOpts, Pool);
}

void expectSameStats(const driver::StatsMap &A, const driver::StatsMap &B) {
  ASSERT_EQ(A.size(), B.size());
  for (const auto &KV : A) {
    auto It = B.find(KV.first);
    ASSERT_NE(It, B.end()) << KV.first;
    const driver::PassStats &X = KV.second, &Y = It->second;
    EXPECT_EQ(X.V, Y.V) << KV.first;
    EXPECT_EQ(X.F, Y.F) << KV.first;
    EXPECT_EQ(X.NS, Y.NS) << KV.first;
    EXPECT_EQ(X.DiffMismatches, Y.DiffMismatches) << KV.first;
    EXPECT_EQ(X.FailureSamples, Y.FailureSamples) << KV.first;
    EXPECT_EQ(X.OracleRuns, Y.OracleRuns) << KV.first;
    EXPECT_EQ(X.OracleDivergences, Y.OracleDivergences) << KV.first;
    EXPECT_EQ(X.OracleSamples, Y.OracleSamples) << KV.first;
  }
}

TEST(ParallelDriver, JobCountDoesNotChangeResults) {
  // The buggy configuration matters: failures, failure samples and oracle
  // divergences (not just happy-path counts) must reduce deterministically.
  passes::BugConfig Bugs = passes::BugConfig::llvm371();
  driver::BatchReport R1 = runBatch(1, Bugs, /*WriteFiles=*/false);
  driver::BatchReport R8 = runBatch(8, Bugs, /*WriteFiles=*/false);
  EXPECT_EQ(R1.JobsUsed, 1u);
  EXPECT_EQ(R8.JobsUsed, 8u);
  EXPECT_EQ(R1.Units, 16u);
  EXPECT_EQ(R8.Units, 16u);
  expectSameStats(R1.Stats, R8.Stats);
  // The corpus really exercises the checker and the oracle.
  ASSERT_NE(R1.Stats.find("mem2reg"), R1.Stats.end());
  EXPECT_GT(R1.Stats.at("mem2reg").V, 0u);
  uint64_t OracleRuns = 0;
  for (const auto &KV : R1.Stats)
    OracleRuns += KV.second.OracleRuns;
  EXPECT_GT(OracleRuns, 0u);
}

TEST(ParallelDriver, FileExchangeIsCollisionFreeAcrossWorkers) {
  // With WriteFiles the workers share one exchange directory; per-unit
  // ExchangeTags must keep src/tgt/proof files from clobbering each other,
  // so the parallel run still matches the serial one exactly.
  passes::BugConfig Bugs = passes::BugConfig::fixed();
  driver::BatchReport R1 = runBatch(1, Bugs, /*WriteFiles=*/true);
  driver::BatchReport R8 = runBatch(8, Bugs, /*WriteFiles=*/true);
  expectSameStats(R1.Stats, R8.Stats);
  for (const auto &KV : R8.Stats) {
    EXPECT_EQ(KV.second.F, 0u)
        << KV.first << ": "
        << (KV.second.FailureSamples.empty() ? ""
                                             : KV.second.FailureSamples[0]);
    EXPECT_EQ(KV.second.DiffMismatches, 0u) << KV.first;
  }
}

TEST(ParallelDriver, ExternalPoolIsReusableAcrossBatches) {
  passes::BugConfig Bugs = passes::BugConfig::llvm371();
  driver::BatchReport Serial = runBatch(1, Bugs, /*WriteFiles=*/false);
  ThreadPool Pool(4);
  driver::BatchReport A = runBatch(0, Bugs, /*WriteFiles=*/false, &Pool);
  driver::BatchReport B = runBatch(0, Bugs, /*WriteFiles=*/false, &Pool);
  EXPECT_EQ(A.JobsUsed, 4u);
  expectSameStats(Serial.Stats, A.Stats);
  expectSameStats(A.Stats, B.Stats);
}

} // namespace
