//===- tests/SoundnessRegressionTest.cpp - Audit bug backlog -------------------===//
//
// Regression tests for the first crop of bugs the soundness audit
// (src/audit/, DESIGN.md §11) flushed out of our own stack:
//
//   1. Host-side UB in constant folding: -(int64_t(1) << 63), signed
//      C1 + C2 overflow in InstCombine and the ERHL infrule evaluator,
//      and the interp evaluator's width guards (i1 / i63 / i64 edges).
//   2. LICM's preheader precondition: an unreachable "unique outside
//      predecessor" or one that does not dominate the header must never
//      become a hoist target.
//   3. Verifier/Dominators unreachable-block handling: phi operands must
//      pair 1:1 with actual predecessors even in dead code, dead uses
//      must still resolve to definitions, and GVN-PRE must not plan
//      insertions into unreachable predecessors.
//
// Every "fixed" behavior here is also an audit invariant; these tests
// pin the minimal reproducers.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "checker/Validator.h"
#include "interp/Interp.h"
#include "interp/Ops.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "passes/Pipeline.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::passes;

namespace {

ir::Module parseValid(const std::string &Text) {
  std::string Err;
  auto M = ir::parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  std::vector<std::string> VErrs;
  EXPECT_TRUE(analysis::verifyModule(*M, VErrs))
      << (VErrs.empty() ? "" : VErrs[0]);
  return *M;
}

/// Parse without verifying: passes must stay robust on merely parseable
/// modules too — they run before any verifier in the Fig. 1 protocol.
ir::Module parseAny(const std::string &Text) {
  std::string Err;
  auto M = ir::parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  return M ? *M : ir::Module{};
}

struct Outcome {
  PassResult PR;
  checker::ModuleResult VR;
};

Outcome runValidated(const std::string &PassName, const ir::Module &Src) {
  auto P = makePass(PassName, BugConfig::fixed());
  Outcome O;
  O.PR = P->run(Src, /*GenProof=*/true);
  std::vector<std::string> VErrs;
  EXPECT_TRUE(analysis::verifyModule(O.PR.Tgt, VErrs))
      << PassName << ": " << (VErrs.empty() ? "" : VErrs[0]) << "\n"
      << ir::printModule(O.PR.Tgt);
  O.VR = checker::validate(Src, O.PR.Tgt, O.PR.Proof);
  return O;
}

void expectRefines(const ir::Module &Src, const ir::Module &Tgt,
                   std::vector<int64_t> Args) {
  for (const ir::Function &F : Src.Funcs) {
    interp::InterpOptions Opts;
    auto RS = interp::run(Src, F.Name, Args, Opts);
    auto RT = interp::run(Tgt, F.Name, Args, Opts);
    EXPECT_TRUE(interp::refines(RS, RT)) << "@" << F.Name;
  }
}

// --- 1. Edge-width constant folding (the truncTo / shift UB class) -----------

// sub 0 (shl a 63) at i64: the fold produces mul by -(2^63). Before the
// fix both InstCombine and the SubShl infrule negated INT64_MIN (signed
// overflow, UB); now both go through wrapping uint64_t arithmetic. The
// UBSan CI job keeps this class dead.
TEST(EdgeWidthFold, SubShlAtSignBitI64) {
  ir::Module Src = parseValid(R"(
define i64 @f(i64 %a) {
entry:
  %s = shl i64 %a, 63
  %y = sub i64 0, %s
  ret i64 %y
}
)");
  auto O = runValidated("instcombine", Src);
  EXPECT_EQ(O.VR.countValidated(), 1u) << O.VR.firstFailure();
  EXPECT_NE(ir::printModule(O.PR.Tgt).find("mul"), std::string::npos)
      << ir::printModule(O.PR.Tgt);
  expectRefines(Src, O.PR.Tgt, {3});
  expectRefines(Src, O.PR.Tgt, {-1});
}

TEST(EdgeWidthFold, SubShlAtSignBitI63AndI1) {
  for (const char *Text : {
           "define i63 @f(i63 %a) {\nentry:\n  %s = shl i63 %a, 62\n"
           "  %y = sub i63 0, %s\n  ret i63 %y\n}\n",
           "define i1 @f(i1 %a) {\nentry:\n  %s = shl i1 %a, 0\n"
           "  %y = sub i1 0, %s\n  ret i1 %y\n}\n",
       }) {
    ir::Module Src = parseValid(Text);
    auto O = runValidated("instcombine", Src);
    EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
    expectRefines(Src, O.PR.Tgt, {1});
  }
}

// add (add a INT64_MAX) INT64_MAX: the reassociated constant wraps to -2.
// Before the fix the C1 + C2 fold was a signed overflow.
TEST(EdgeWidthFold, AssocAddWrapsAtInt64Max) {
  ir::Module Src = parseValid(R"(
define i64 @f(i64 %a) {
entry:
  %x = add i64 %a, 9223372036854775807
  %y = add i64 %x, 9223372036854775807
  ret i64 %y
}
)");
  auto O = runValidated("instcombine", Src);
  EXPECT_EQ(O.VR.countValidated(), 1u) << O.VR.firstFailure();
  EXPECT_NE(ir::printModule(O.PR.Tgt).find("add i64 %a, -2"),
            std::string::npos)
      << ir::printModule(O.PR.Tgt);
  expectRefines(Src, O.PR.Tgt, {5});
}

// sub (add a C1) C2 and sub C (xor a -1) with INT64_MIN in play: the
// folded constants wrap instead of overflowing the host's int64_t.
TEST(EdgeWidthFold, SubConstFoldsWrap) {
  ir::Module Src = parseValid(R"(
define i64 @f(i64 %a) {
entry:
  %x = add i64 %a, -9223372036854775808
  %y = sub i64 %x, 1
  ret i64 %y
}
)");
  auto O = runValidated("instcombine", Src);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
  expectRefines(Src, O.PR.Tgt, {7});
}

// shl (shl a 2^62) 2^62: the old range guard computed C1 + C2 with
// signed overflow; the wrapped sum looked in-range and licensed a bogus
// rewrite. The widened guard must reject the chain outright.
TEST(EdgeWidthFold, ShlShlGuardDoesNotOverflow) {
  ir::Module Src = parseValid(R"(
define i64 @f(i64 %a) {
entry:
  %x = shl i64 %a, 4611686018427387904
  %y = shl i64 %x, 4611686018427387904
  ret i64 %y
}
)");
  auto O = runValidated("instcombine", Src);
  // Whatever else fires, the shift chain must not be merged.
  EXPECT_EQ(ir::printModule(O.PR.Tgt).find("shl i64 %a, -"),
            std::string::npos)
      << ir::printModule(O.PR.Tgt);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
  expectRefines(Src, O.PR.Tgt, {1});
}

// add a SIGNBIT -> xor across the width catalog, including both ends.
TEST(EdgeWidthFold, AddSignbitAcrossWidths) {
  struct Case {
    unsigned W;
    const char *SignBit;
  };
  for (const Case &C : std::initializer_list<Case>{
           {1, "1"},
           {8, "-128"},
           {32, "-2147483648"},
           {63, "-4611686018427387904"},
           {64, "-9223372036854775808"}}) {
    std::string Ty = "i" + std::to_string(C.W);
    ir::Module Src = parseValid("define " + Ty + " @f(" + Ty +
                                " %a) {\nentry:\n  %y = add " + Ty + " %a, " +
                                C.SignBit + "\n  ret " + Ty + " %y\n}\n");
    auto O = runValidated("instcombine", Src);
    EXPECT_EQ(O.VR.countValidated(), 1u)
        << "width " << C.W << ": " << O.VR.firstFailure();
    EXPECT_NE(ir::printModule(O.PR.Tgt).find("xor"), std::string::npos)
        << "width " << C.W;
    expectRefines(Src, O.PR.Tgt, {9});
  }
}

// The shared evaluator refuses widths outside [1, 64] instead of feeding
// them to host shifts (Type::intTy's assert vanishes under NDEBUG).
TEST(EdgeWidthFold, EvalBinaryOpGuardsWidth) {
  interp::RtValue A = interp::RtValue::intVal(1, 1);
  interp::RtValue B = interp::RtValue::intVal(1, 1);
  EXPECT_TRUE(interp::evalBinaryOp(ir::Opcode::SDiv, 0, A, B).Trap);
  EXPECT_TRUE(interp::evalBinaryOp(ir::Opcode::Add, 65, A, B).Trap);
  EXPECT_FALSE(interp::evalBinaryOp(ir::Opcode::Add, 64, A, B).Trap);
  EXPECT_FALSE(interp::evalBinaryOp(ir::Opcode::Add, 1, A, B).Trap);
}

// Shift amounts at exactly the width are poison, not host UB, at both
// ends of the width range.
TEST(EdgeWidthFold, ShiftAtWidthIsPoison) {
  for (unsigned W : {1u, 63u, 64u}) {
    interp::RtValue A = interp::RtValue::intVal(1, W);
    interp::RtValue S = interp::RtValue::intVal(W, W);
    for (ir::Opcode Op :
         {ir::Opcode::Shl, ir::Opcode::LShr, ir::Opcode::AShr}) {
      auto R = interp::evalBinaryOp(Op, W, A, S);
      ASSERT_FALSE(R.Trap);
      EXPECT_TRUE(R.V.isPoison()) << "width " << W;
    }
  }
}

// --- 2. LICM preheader precondition ------------------------------------------

// A self-loop on the entry block whose only outside predecessor is a
// dead block: the old preheader selection picked the dead block and
// hoisted %x into it, leaving the exit's use of %x undominated. The
// module is parseable but not verifier-valid (branch to entry), exactly
// the kind of input a pass must refuse to make worse.
TEST(LicmPreheader, UnreachableOutsidePredIsNotAPreheader) {
  ir::Module Src = parseAny(R"(
define i64 @f(i64 %a, i1 %c) {
entry:
  %x = add i64 %a, 1
  br i1 %c, label %entry, label %exit
exit:
  ret i64 %x
dead:
  br label %entry
}
)");
  auto P = makePass("licm", BugConfig::fixed());
  PassResult R = P->run(Src, /*GenProof=*/true);
  EXPECT_EQ(R.Rewrites, 0u) << ir::printModule(R.Tgt);
  // %x stays in the entry block; the dead block keeps its lone branch.
  const ir::Function &F = R.Tgt.Funcs.front();
  EXPECT_EQ(F.getBlock("dead")->Insts.size(), 1u);
  EXPECT_EQ(F.getBlock("entry")->Insts.size(), 2u);
}

// Two genuine out-of-loop predecessors: no preheader, no hoisting, and
// the (identity) translation still validates.
TEST(LicmPreheader, MultipleOutsidePredsBail) {
  ir::Module Src = parseValid(R"(
define i64 @f(i64 %a, i1 %c) {
entry:
  br i1 %c, label %ph1, label %ph2
ph1:
  br label %header
ph2:
  br label %header
header:
  %i = phi i64 [ 0, %ph1 ], [ 1, %ph2 ], [ %i2, %header ]
  %x = add i64 %a, 5
  %i2 = add i64 %i, %x
  %d = icmp eq i64 %i2, %a
  br i1 %d, label %header, label %exit
exit:
  ret i64 %i2
}
)");
  auto O = runValidated("licm", Src);
  EXPECT_EQ(O.PR.Rewrites, 0u) << ir::printModule(O.PR.Tgt);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
}

// Positive control: with a legitimate preheader the same loop body does
// hoist, and the proof validates — the bail conditions must not
// over-trigger.
TEST(LicmPreheader, ProperPreheaderStillHoists) {
  ir::Module Src = parseValid(R"(
define i64 @f(i64 %a) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i2, %header ]
  %x = add i64 %a, 5
  %i2 = add i64 %i, %x
  %d = icmp eq i64 %i2, %a
  br i1 %d, label %header, label %exit
exit:
  ret i64 %i2
}
)");
  auto O = runValidated("licm", Src);
  EXPECT_GE(O.PR.Rewrites, 1u);
  EXPECT_EQ(O.VR.countValidated(), 1u) << O.VR.firstFailure();
  // %x now lives in the entry (preheader) block.
  const ir::Function &F = O.PR.Tgt.Funcs.front();
  bool InEntry = false;
  for (const ir::Instruction &I : F.getBlock("entry")->Insts)
    if (I.result() && *I.result() == "x")
      InEntry = true;
  EXPECT_TRUE(InEntry) << ir::printModule(O.PR.Tgt);
}

// --- 3. Verifier / GVN unreachable-block handling -----------------------------

TEST(VerifierUnreachable, PhiMustPairWithPredsEvenInDeadCode) {
  std::string Err;
  auto M = ir::parseModule(R"(
define void @f(i1 %c) {
entry:
  ret void
deadA:
  br i1 %c, label %deadJ, label %deadB
deadB:
  br label %deadJ
deadJ:
  %p = phi i32 [ 1, %deadA ]
  ret void
}
)",
                           &Err);
  ASSERT_TRUE(M) << Err;
  std::vector<std::string> Errs;
  EXPECT_FALSE(analysis::verifyModule(*M, Errs));
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("misses predecessor"), std::string::npos)
      << Errs[0];
}

TEST(VerifierUnreachable, UndefinedUseInDeadCodeIsAnError) {
  std::string Err;
  auto M = ir::parseModule(R"(
define void @f() {
entry:
  ret void
dead:
  %y = add i32 %nope, 1
  ret void
}
)",
                           &Err);
  ASSERT_TRUE(M) << Err;
  std::vector<std::string> Errs;
  EXPECT_FALSE(analysis::verifyModule(*M, Errs));
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("undefined register"), std::string::npos)
      << Errs[0];
}

// Well-formed dead code must still verify: dominance is not demanded
// where it is meaningless, only def-existence and phi/CFG consistency.
TEST(VerifierUnreachable, ConsistentDeadCodeStillVerifies) {
  std::string Err;
  auto M = ir::parseModule(R"(
define void @f() {
entry:
  ret void
dead1:
  %z = add i32 7, 1
  br label %dead2
dead2:
  %q = phi i32 [ %z, %dead1 ]
  ret void
}
)",
                           &Err);
  ASSERT_TRUE(M) << Err;
  std::vector<std::string> Errs;
  EXPECT_TRUE(analysis::verifyModule(*M, Errs))
      << (Errs.empty() ? "" : Errs[0]);
}

// GVN-PRE over a merge with a dead predecessor: the old planner fell
// through to "insert into the dead block". Now the whole PRE attempt
// bails; the dead block must come out untouched.
TEST(GvnUnreachable, NoPREInsertionIntoDeadPredecessor) {
  ir::Module Src = parseValid(R"(
define i64 @f(i64 %a) {
entry:
  %x = add i64 %a, 9
  br label %join
join:
  %y = add i64 %a, 9
  ret i64 %y
dead:
  br label %join
}
)");
  auto O = runValidated("gvn", Src);
  const ir::Function &F = O.PR.Tgt.Funcs.front();
  EXPECT_EQ(F.getBlock("dead")->Insts.size(), 1u)
      << ir::printModule(O.PR.Tgt);
  EXPECT_EQ(F.getBlock("dead")->Phis.size(), 0u);
  EXPECT_EQ(ir::printModule(O.PR.Tgt).find(".pre"), std::string::npos)
      << ir::printModule(O.PR.Tgt);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
}

} // namespace
