//===- tests/CacheTest.cpp - Validation cache & artifact store ----------------===//
//
// The content-addressed verdict cache (DESIGN.md §10), bottom-up:
//
//   - Fingerprint: the key must change when *any* verdict-relevant input
//     changes — module text, proof structure, pass name, checker version,
//     every bug-configuration flag — and must be stable otherwise.
//   - MemCache: sharded LRU semantics (hit refreshes recency, bound holds).
//   - DiskStore: atomic persistence across instances, corruption-tolerant
//     loads (truncated / garbage entries are misses, never crashes),
//     index rebuild, size-bounded eviction.
//   - Verdict: total decoder over untrusted bytes.
//   - Driver integration: cache on/off and cold/warm runs produce
//     bit-identical #V/#F/#NS and failure samples, at --jobs 1 and 8.
//
//===----------------------------------------------------------------------===//

#include "cache/DiskStore.h"
#include "cache/Fingerprint.h"
#include "cache/ValidationCache.h"
#include "cache/Verdict.h"
#include "checker/Version.h"
#include "driver/Driver.h"
#include "ir/Printer.h"
#include "passes/Pipeline.h"
#include "plan/PlanBuilder.h"
#include "plan/PlanCache.h"
#include "workload/RandomProgram.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

using namespace crellvm;
using cache::Fingerprint;
using cache::FingerprintBuilder;

namespace {

std::string freshDir(const char *Tag) {
  static std::atomic<unsigned> Counter{0};
  return (std::filesystem::temp_directory_path() /
          ("crellvm-cache-test-" + std::string(Tag) + "." +
           std::to_string(::getpid()) + "." +
           std::to_string(Counter.fetch_add(1))))
      .string();
}

struct DirGuard {
  std::string Dir;
  explicit DirGuard(std::string D) : Dir(std::move(D)) {}
  ~DirGuard() {
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
  }
};

Fingerprint fp(uint64_t Seed) {
  FingerprintBuilder B;
  B.u64(Seed);
  return B.digest();
}

// A real validation input tuple: a generated module, mem2reg's output and
// proof over it, and the default key context.
struct KeyInputs {
  std::string Src, Tgt;
  proofgen::Proof Proof;
  std::string Pass = "mem2reg";
  std::string Version = checker::versionFingerprint();
  passes::BugConfig Bugs;

  Fingerprint key() const {
    return cache::fingerprintValidation(Src, Tgt, Proof, Pass, Version, Bugs);
  }
};

KeyInputs makeKeyInputs(uint64_t Seed = 7) {
  workload::GenOptions G;
  G.Seed = Seed;
  ir::Module M = workload::generateModule(G);
  KeyInputs K;
  K.Src = ir::printModule(M);
  auto P = passes::makePass("mem2reg", K.Bugs);
  passes::PassResult R = P->run(M, /*GenProof=*/true);
  K.Tgt = ir::printModule(R.Tgt);
  K.Proof = std::move(R.Proof);
  return K;
}

// --- Fingerprint --------------------------------------------------------------

TEST(Fingerprint, DeterministicAcrossBuilders) {
  KeyInputs K = makeKeyInputs();
  EXPECT_EQ(K.key(), K.key());
  EXPECT_EQ(K.key(), makeKeyInputs().key());
}

TEST(Fingerprint, LengthPrefixingPreventsConcatenationAliasing) {
  FingerprintBuilder A, B;
  A.str("ab").str("c");
  B.str("a").str("bc");
  EXPECT_NE(A.digest(), B.digest());

  FingerprintBuilder C, D;
  C.str("").str("x");
  D.str("x").str("");
  EXPECT_NE(C.digest(), D.digest());
}

TEST(Fingerprint, HexRoundtrip) {
  Fingerprint F = fp(0xdeadbeef);
  std::string H = F.hex();
  EXPECT_EQ(H.size(), 32u);
  auto Back = Fingerprint::fromHex(H);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, F);

  EXPECT_FALSE(Fingerprint::fromHex("").has_value());
  EXPECT_FALSE(Fingerprint::fromHex("xyz").has_value());
  EXPECT_FALSE(Fingerprint::fromHex(H.substr(1)).has_value());
  EXPECT_FALSE(Fingerprint::fromHex(H + "0").has_value());
  std::string Bad = H;
  Bad[5] = 'g';
  EXPECT_FALSE(Fingerprint::fromHex(Bad).has_value());
}

// The cache-soundness property: every input the verdict depends on must
// perturb the key. A stale hit after any of these flips would replay a
// verdict for a different question.
TEST(Fingerprint, SensitiveToSourceText) {
  KeyInputs K = makeKeyInputs();
  Fingerprint Base = K.key();
  K.Src += " ";
  EXPECT_NE(K.key(), Base);
}

TEST(Fingerprint, SensitiveToTargetText) {
  KeyInputs K = makeKeyInputs();
  Fingerprint Base = K.key();
  K.Tgt[K.Tgt.size() / 2] ^= 1;
  EXPECT_NE(K.key(), Base);
}

TEST(Fingerprint, SensitiveToPassName) {
  KeyInputs K = makeKeyInputs();
  Fingerprint Base = K.key();
  K.Pass = "gvn";
  EXPECT_NE(K.key(), Base);
}

TEST(Fingerprint, SensitiveToCheckerVersion) {
  KeyInputs K = makeKeyInputs();
  Fingerprint Base = K.key();
  K.Version += ";weakened-extra=1";
  EXPECT_NE(K.key(), Base);
}

TEST(Fingerprint, SensitiveToEveryBugConfigFlag) {
  KeyInputs K = makeKeyInputs();
  Fingerprint Base = K.key();
  passes::BugConfig Clean = K.Bugs;

  auto Flipped = [&K, &Clean, Base](bool passes::BugConfig::*Field) {
    K.Bugs = Clean;
    K.Bugs.*Field = !(K.Bugs.*Field);
    return K.key() != Base;
  };
  EXPECT_TRUE(Flipped(&passes::BugConfig::Mem2RegUndefLoop));
  EXPECT_TRUE(Flipped(&passes::BugConfig::Mem2RegConstexprSpeculate));
  EXPECT_TRUE(Flipped(&passes::BugConfig::GvnIgnoreInbounds));
  EXPECT_TRUE(Flipped(&passes::BugConfig::GvnIgnoreInboundsPRE));
  EXPECT_TRUE(Flipped(&passes::BugConfig::GvnPREWrongLeader));
  EXPECT_TRUE(Flipped(&passes::BugConfig::UnsoundAddToOr));
}

// Structural proof perturbations must reach the key even when the module
// text is unchanged (cache/ProofHash.h walks the proof tree directly).
TEST(Fingerprint, SensitiveToProofStructure) {
  KeyInputs K = makeKeyInputs();
  ASSERT_FALSE(K.Proof.Functions.empty());
  Fingerprint Base = K.key();
  proofgen::Proof Orig = K.Proof;

  proofgen::FunctionProof &FP = K.Proof.Functions.begin()->second;
  FP.NotSupported = !FP.NotSupported;
  EXPECT_NE(K.key(), Base) << "NotSupported flag not in key";

  K.Proof = Orig;
  K.Proof.Functions.begin()->second.NotSupportedReason += "!";
  EXPECT_NE(K.key(), Base) << "NotSupportedReason not in key";

  K.Proof = Orig;
  K.Proof.Functions.begin()->second.AutoFuncs.insert("phantom_func");
  EXPECT_NE(K.key(), Base) << "AutoFuncs not in key";

  K.Proof = Orig;
  K.Proof.Functions["phantom_func"] = proofgen::FunctionProof();
  EXPECT_NE(K.key(), Base) << "added function proof not in key";

  K.Proof = Orig;
  EXPECT_EQ(K.key(), Base) << "restoring the proof must restore the key";
}

// --- Plan fingerprints --------------------------------------------------------

// Plan keys live in the same DiskStore as verdict keys; the domain tag
// plus both version numbers must keep every lane separate.
TEST(Fingerprint, PlanKeySensitiveToBothVersionNumbers) {
  passes::BugConfig Bugs = passes::BugConfig::fixed();
  Fingerprint Base = cache::fingerprintPlan("gvn", Bugs,
                                            checker::versionFingerprint(),
                                            checker::PlanSchemaVersion);
  EXPECT_EQ(Base, cache::fingerprintPlan("gvn", Bugs,
                                         checker::versionFingerprint(),
                                         checker::PlanSchemaVersion))
      << "plan keys are deterministic";

  // A checker-semantics bump (new version fingerprint string) must move
  // the key: a plan profiled against older semantics may admit proofs
  // the new checker would judge differently.
  EXPECT_NE(Base, cache::fingerprintPlan(
                      "gvn", Bugs,
                      checker::versionFingerprint() + ";semantics-bump=1",
                      checker::PlanSchemaVersion));
  // A plan-schema bump alone must also move it — the serialized layout
  // changed even though verdict semantics did not.
  EXPECT_NE(Base, cache::fingerprintPlan("gvn", Bugs,
                                         checker::versionFingerprint(),
                                         checker::PlanSchemaVersion + 1));
  EXPECT_NE(Base, cache::fingerprintPlan("licm", Bugs,
                                         checker::versionFingerprint(),
                                         checker::PlanSchemaVersion));
  passes::BugConfig Buggy = passes::BugConfig::llvm371();
  EXPECT_NE(Base, cache::fingerprintPlan("gvn", Buggy,
                                         checker::versionFingerprint(),
                                         checker::PlanSchemaVersion));
}

// The end-to-end invalidation story: a plan cached on disk under today's
// versions is unreachable after either version bumps — the lookup key
// moves, the stale object is never loaded, and the cache rebuilds.
TEST(Fingerprint, VersionBumpInvalidatesCachedPlans) {
  std::string Dir = freshDir("plan-inval");
  DirGuard G(Dir);
  cache::DiskStoreOptions DO;
  DO.Dir = Dir;
  cache::DiskStore Disk(DO);
  ASSERT_TRUE(Disk.ok());

  plan::PlanCacheOptions CO;
  CO.Disk = &Disk;

  passes::BugConfig Bugs = passes::BugConfig::fixed();
  Fingerprint Today = cache::fingerprintPlan("mem2reg", Bugs,
                                             checker::versionFingerprint(),
                                             checker::PlanSchemaVersion);
  {
    plan::PlanCache Writer(CO);
    plan::PlanBuildOptions BO;
    BO.FeedstockModules = 1;
    Writer.store(Today, std::make_shared<plan::CheckerPlan>(
                            plan::buildPlan("mem2reg", Bugs, BO)));
  }

  // Same store, bumped semantics: the cached plan must be invisible.
  plan::PlanCache Reader(CO);
  Fingerprint Bumped = cache::fingerprintPlan(
      "mem2reg", Bugs, checker::versionFingerprint() + ";semantics-bump=1",
      checker::PlanSchemaVersion);
  EXPECT_EQ(Reader.load(Bumped), nullptr)
      << "a semantics bump must cold-start the plan cache";
  Fingerprint NewSchema = cache::fingerprintPlan(
      "mem2reg", Bugs, checker::versionFingerprint(),
      checker::PlanSchemaVersion + 1);
  EXPECT_EQ(Reader.load(NewSchema), nullptr)
      << "a schema bump must cold-start the plan cache";
  EXPECT_EQ(Reader.counters().Misses, 2u);

  // Under today's versions the object is still there — invalidation is
  // key movement, not deletion.
  EXPECT_NE(Reader.load(Today), nullptr);
}

// --- MemCache -----------------------------------------------------------------

TEST(MemCache, RoundtripAndMiss) {
  cache::MemCache C(16, 4);
  EXPECT_FALSE(C.lookup(fp(1)).has_value());
  C.insert(fp(1), "one");
  C.insert(fp(2), "two");
  auto V = C.lookup(fp(1));
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, "one");
  EXPECT_EQ(C.size(), 2u);
  EXPECT_EQ(C.evictions(), 0u);
}

TEST(MemCache, InsertRefreshesValue) {
  cache::MemCache C(16, 1);
  C.insert(fp(1), "old");
  C.insert(fp(1), "new");
  EXPECT_EQ(C.size(), 1u);
  EXPECT_EQ(*C.lookup(fp(1)), "new");
}

TEST(MemCache, EvictsLeastRecentlyUsedWithinBound) {
  // One shard so the LRU order is fully observable.
  cache::MemCache C(3, 1);
  C.insert(fp(1), "1");
  C.insert(fp(2), "2");
  C.insert(fp(3), "3");
  // Touch 1 so 2 becomes the LRU entry.
  EXPECT_TRUE(C.lookup(fp(1)).has_value());
  C.insert(fp(4), "4");
  EXPECT_EQ(C.size(), 3u);
  EXPECT_EQ(C.evictions(), 1u);
  EXPECT_FALSE(C.lookup(fp(2)).has_value()) << "LRU entry should be gone";
  EXPECT_TRUE(C.lookup(fp(1)).has_value());
  EXPECT_TRUE(C.lookup(fp(3)).has_value());
  EXPECT_TRUE(C.lookup(fp(4)).has_value());
}

TEST(MemCache, BoundHoldsAcrossManyInserts) {
  cache::MemCache C(8, 4);
  for (uint64_t I = 0; I != 100; ++I)
    C.insert(fp(I), std::to_string(I));
  EXPECT_LE(C.size(), 8u);
  EXPECT_GE(C.evictions(), 92u);
}

// --- DiskStore ----------------------------------------------------------------

TEST(DiskStore, PersistsAcrossInstances) {
  DirGuard G(freshDir("persist"));
  Fingerprint F = fp(42);
  {
    cache::DiskStore S({G.Dir});
    ASSERT_TRUE(S.ok());
    EXPECT_FALSE(S.load(F).has_value());
    S.store(F, "payload-bytes");
  }
  cache::DiskStore S2({G.Dir});
  auto V = S2.load(F);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, "payload-bytes");
  EXPECT_EQ(S2.counters().Hits, 1u);
}

TEST(DiskStore, TruncatedEntryIsAMissNotACrash) {
  DirGuard G(freshDir("trunc"));
  Fingerprint F = fp(43);
  {
    cache::DiskStore S({G.Dir});
    S.store(F, "some payload that will be cut short");
  }
  // Truncate the object file mid-payload.
  std::string Obj;
  for (const auto &E :
       std::filesystem::recursive_directory_iterator(G.Dir + "/objects"))
    if (E.is_regular_file())
      Obj = E.path().string();
  ASSERT_FALSE(Obj.empty());
  std::filesystem::resize_file(Obj, std::filesystem::file_size(Obj) / 2);

  cache::DiskStore S({G.Dir});
  EXPECT_FALSE(S.load(F).has_value());
  EXPECT_EQ(S.counters().CorruptEntries, 1u);
  EXPECT_FALSE(std::filesystem::exists(Obj))
      << "corrupt object should be removed";
  // And a removed corrupt entry must stay a miss, not resurface.
  EXPECT_FALSE(S.load(F).has_value());
}

TEST(DiskStore, GarbageEntryIsAMissNotACrash) {
  DirGuard G(freshDir("garbage"));
  Fingerprint F = fp(44);
  {
    cache::DiskStore S({G.Dir});
    S.store(F, "real payload");
  }
  std::string Obj;
  for (const auto &E :
       std::filesystem::recursive_directory_iterator(G.Dir + "/objects"))
    if (E.is_regular_file())
      Obj = E.path().string();
  ASSERT_FALSE(Obj.empty());
  {
    std::ofstream Out(Obj, std::ios::trunc | std::ios::binary);
    Out << "this is not a cache object at all \0 binary junk";
  }
  cache::DiskStore S({G.Dir});
  EXPECT_FALSE(S.load(F).has_value());
  EXPECT_GE(S.counters().CorruptEntries, 1u);
}

TEST(DiskStore, MissingIndexIsRebuiltFromObjects) {
  DirGuard G(freshDir("reindex"));
  Fingerprint A = fp(45), B = fp(46);
  {
    cache::DiskStore S({G.Dir});
    S.store(A, "aaa");
    S.store(B, "bbbb");
  }
  std::filesystem::remove(G.Dir + "/index");
  cache::DiskStore S({G.Dir});
  EXPECT_EQ(S.numEntries(), 2u);
  EXPECT_EQ(*S.load(A), "aaa");
  EXPECT_EQ(*S.load(B), "bbbb");
  EXPECT_EQ(S.counters().IndexRebuilds, 1u)
      << "recovering orphaned objects is a rebuild";
}

TEST(DiskStore, FreshDirIsNotARebuildAndWritesNoIndex) {
  DirGuard G(freshDir("fresh"));
  cache::DiskStore S({G.Dir});
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(S.counters().IndexRebuilds, 0u)
      << "an empty cache dir is the normal cold state, not a recovery";
  EXPECT_FALSE(std::filesystem::exists(G.Dir + "/index"))
      << "constructing over a fresh dir must not write an index";
  EXPECT_FALSE(S.load(fp(48)).has_value());
  EXPECT_EQ(S.counters().Misses, 1u);
}

TEST(DiskStore, ReadOnlyMissingDirIsAnAlwaysMissStore) {
  DirGuard G(freshDir("ro-missing"));
  cache::DiskStoreOptions Opts;
  Opts.Dir = G.Dir; // never created
  Opts.ReadOnly = true;
  cache::DiskStore S(Opts);
  EXPECT_TRUE(S.ok());
  EXPECT_FALSE(S.load(fp(49)).has_value());
  EXPECT_EQ(S.store(fp(49), "x"), 0u);
  auto C = S.counters();
  EXPECT_EQ(C.Stores, 0u);
  EXPECT_EQ(C.StoreErrors, 0u) << "a refused ro store is policy, not an error";
  EXPECT_EQ(C.Evictions, 0u);
  EXPECT_EQ(C.IndexRebuilds, 0u);
  EXPECT_FALSE(std::filesystem::exists(G.Dir))
      << "read-only mode must not create the cache directory";
}

TEST(DiskStore, ReadOnlyNeverWritesIndexOrRemovesCorruptObjects) {
  DirGuard G(freshDir("ro-pure"));
  Fingerprint A = fp(50), B = fp(51);
  {
    cache::DiskStore S({G.Dir});
    S.store(A, "alpha");
    S.store(B, "beta");
  }
  // Lose the index and corrupt one object, then reopen read-only.
  std::filesystem::remove(G.Dir + "/index");
  std::string CorruptObj;
  for (const auto &E :
       std::filesystem::recursive_directory_iterator(G.Dir + "/objects"))
    if (E.is_regular_file() && CorruptObj.empty())
      CorruptObj = E.path().string();
  ASSERT_FALSE(CorruptObj.empty());
  {
    std::ofstream Out(CorruptObj, std::ios::trunc | std::ios::binary);
    Out << "junk";
  }
  cache::DiskStoreOptions Opts;
  Opts.Dir = G.Dir;
  Opts.ReadOnly = true;
  cache::DiskStore S(Opts);
  EXPECT_EQ(S.numEntries(), 2u) << "orphans are recovered in memory";
  EXPECT_EQ(S.counters().IndexRebuilds, 1u);
  EXPECT_FALSE(std::filesystem::exists(G.Dir + "/index"))
      << "read-only rebuild must not persist an index";
  // One of the two loads hits, the corrupted one misses — but the corrupt
  // file must survive: a reader has no business deleting it.
  unsigned Hits = 0;
  Hits += S.load(A).has_value();
  Hits += S.load(B).has_value();
  EXPECT_EQ(Hits, 1u);
  EXPECT_TRUE(std::filesystem::exists(CorruptObj))
      << "read-only mode must not remove corrupt objects";
  auto C = S.counters();
  EXPECT_EQ(C.Stores, 0u);
  EXPECT_EQ(C.Evictions, 0u);
  EXPECT_EQ(C.StoreErrors, 0u);
}

TEST(DiskStore, WriterLockIsExclusiveAndReleasedOnClose) {
  DirGuard G(freshDir("lock"));
  {
    cache::DiskStore First({G.Dir});
    ASSERT_TRUE(First.ok());
    EXPECT_TRUE(First.lockHeld());
    EXPECT_TRUE(std::filesystem::exists(G.Dir + "/lock"));

    // A second writer on the same live directory is refused cleanly: it
    // degrades to the unusable state instead of interleaving evictions.
    cache::DiskStore Second({G.Dir});
    EXPECT_FALSE(Second.ok());
    EXPECT_FALSE(Second.lockHeld());
    EXPECT_FALSE(Second.load(fp(60)).has_value());
    EXPECT_EQ(Second.store(fp(60), "x"), 0u);
    EXPECT_EQ(Second.counters().StoreErrors, 1u);

    // The holder keeps working.
    First.store(fp(61), "payload");
    EXPECT_EQ(*First.load(fp(61)), "payload");
  }
  // Destruction released the lock: the next writer acquires it.
  EXPECT_FALSE(std::filesystem::exists(G.Dir + "/lock"));
  cache::DiskStore Next({G.Dir});
  EXPECT_TRUE(Next.ok());
  EXPECT_TRUE(Next.lockHeld());
  EXPECT_EQ(*Next.load(fp(61)), "payload");
}

TEST(DiskStore, StaleLockFromDeadProcessIsStolen) {
  DirGuard G(freshDir("stalelock"));
  std::filesystem::create_directories(G.Dir);
  {
    // A lock naming a pid that cannot exist (pid_max caps well below
    // 2^22+ on Linux; kill(2) reports ESRCH) is a crashed writer's
    // leftover, not a live owner.
    std::ofstream Out(G.Dir + "/lock");
    Out << 999999999 << "\n";
  }
  cache::DiskStore S({G.Dir});
  EXPECT_TRUE(S.ok()) << "a dead owner's lock must be stolen, not obeyed";
  EXPECT_TRUE(S.lockHeld());
  S.store(fp(62), "after-steal");
  EXPECT_EQ(*S.load(fp(62)), "after-steal");
}

TEST(DiskStore, LiveLockIsRespected) {
  DirGuard G(freshDir("livelock"));
  std::filesystem::create_directories(G.Dir);
  {
    // Our own pid is definitely alive.
    std::ofstream Out(G.Dir + "/lock");
    Out << ::getpid() << "\n";
  }
  cache::DiskStore S({G.Dir});
  EXPECT_FALSE(S.ok());
  EXPECT_FALSE(S.lockHeld());
  EXPECT_TRUE(std::filesystem::exists(G.Dir + "/lock"))
      << "a live owner's lock must survive the refused open";
}

TEST(DiskStore, ReadOnlyTakesNoLockAndCoexistsWithWriter) {
  DirGuard G(freshDir("ro-nolock"));
  cache::DiskStore Writer({G.Dir});
  ASSERT_TRUE(Writer.ok());
  Writer.store(fp(63), "shared");

  cache::DiskStoreOptions Opts;
  Opts.Dir = G.Dir;
  Opts.ReadOnly = true;
  cache::DiskStore Reader(Opts);
  EXPECT_TRUE(Reader.ok()) << "readers must not contend for the writer lock";
  EXPECT_FALSE(Reader.lockHeld());
  EXPECT_EQ(*Reader.load(fp(63)), "shared");
}

// Regression for the lock-steal TOCTOU: two processes could both see the
// same stale breadcrumb, both unlink + recreate, and both believe they
// held the lock. The fix re-verifies the breadcrumb right before the
// steal unlink and re-reads the lock file after creating it, backing off
// unless it carries our own pid. With N processes racing for one stale
// lock, at most one may win.
TEST(DiskStore, StaleLockStealRaceAdmitsAtMostOneWinner) {
  constexpr int Racers = 8;
  for (int Iter = 0; Iter != 5; ++Iter) {
    DirGuard G(freshDir("toctou"));
    std::filesystem::create_directories(G.Dir);
    {
      std::ofstream Out(G.Dir + "/lock");
      Out << 999999999 << "\n"; // a pid that cannot be alive
    }
    int Pipe[2];
    ASSERT_EQ(::pipe(Pipe), 0);
    std::vector<pid_t> Kids;
    for (int R = 0; R != Racers; ++R) {
      pid_t Pid = ::fork();
      ASSERT_GE(Pid, 0);
      if (Pid == 0) {
        ::close(Pipe[0]);
        cache::DiskStore S({G.Dir});
        char Won = S.lockHeld() ? 1 : 0;
        [[maybe_unused]] ssize_t W = ::write(Pipe[1], &Won, 1);
        ::close(Pipe[1]);
        // _exit skips the destructor: the winner's lock file survives
        // with the (now dead) child's pid, like a crashed writer.
        ::_exit(0);
      }
      Kids.push_back(Pid);
    }
    ::close(Pipe[1]);
    int Winners = 0;
    char B;
    while (::read(Pipe[0], &B, 1) == 1)
      Winners += B;
    ::close(Pipe[0]);
    for (pid_t Pid : Kids) {
      int Status = 0;
      ::waitpid(Pid, &Status, 0);
    }
    EXPECT_LE(Winners, 1) << "iteration " << Iter
                          << ": concurrent steal produced " << Winners
                          << " lock holders";
  }
}

TEST(DiskStore, SharedModeSecondWriterIsUsableWithoutTheLease) {
  DirGuard G(freshDir("shared-basic"));
  cache::DiskStoreOptions Opts;
  Opts.Dir = G.Dir;
  Opts.Shared = true;

  cache::DiskStore A(Opts);
  ASSERT_TRUE(A.ok());
  EXPECT_TRUE(A.lockHeld()) << "first opener takes the writer lease";

  cache::DiskStore B(Opts);
  ASSERT_TRUE(B.ok()) << "shared mode must not refuse the second writer";
  EXPECT_FALSE(B.lockHeld());

  // Both directions publish; loads probe the object path directly, so
  // neither member needs the other's index to hit.
  A.store(fp(70), "from-A");
  B.store(fp(71), "from-B");
  EXPECT_GE(B.counters().SharedAppends, 1u)
      << "a non-lease member publishes via O_APPEND index lines";
  EXPECT_EQ(*B.load(fp(70)), "from-A");
  EXPECT_EQ(*A.load(fp(71)), "from-B");
}

TEST(DiskStore, SharedModeLeaseRotatesAndMergesForeignLines) {
  DirGuard G(freshDir("shared-lease"));
  cache::DiskStoreOptions Opts;
  Opts.Dir = G.Dir;
  Opts.Shared = true;

  auto A = std::make_unique<cache::DiskStore>(Opts);
  ASSERT_TRUE(A->lockHeld()) << "first opener takes the lease";
  auto B = std::make_unique<cache::DiskStore>(Opts);
  ASSERT_FALSE(B->lockHeld());

  A->store(fp(80), "lease-holder-entry");
  B->store(fp(81), "appended-entry");
  // A's next store folds B's appended line into the merged index.
  A->store(fp(82), "second-holder-entry");
  EXPECT_GE(A->counters().SharedMerged, 1u);

  A.reset(); // releases the lease
  B->store(fp(83), "post-rotation-entry");
  EXPECT_TRUE(B->lockHeld())
      << "the lease must rotate to a surviving member on its next store";
  // Everything all writers ever published is loadable.
  EXPECT_EQ(*B->load(fp(80)), "lease-holder-entry");
  EXPECT_EQ(*B->load(fp(81)), "appended-entry");
  EXPECT_EQ(*B->load(fp(82)), "second-holder-entry");
  EXPECT_EQ(*B->load(fp(83)), "post-rotation-entry");

  // A fresh single-process store over the directory sees the union too:
  // the rotated lease holder's index covers foreign publications.
  B.reset();
  cache::DiskStore Fresh({G.Dir});
  ASSERT_TRUE(Fresh.ok());
  for (uint64_t K = 80; K != 84; ++K)
    EXPECT_TRUE(Fresh.load(fp(K)).has_value()) << "key " << K;
}

TEST(DiskStore, ReadOnlyOpenWinsOverSharedFlag) {
  DirGuard G(freshDir("shared-ro"));
  {
    cache::DiskStore Seeded({G.Dir});
    Seeded.store(fp(90), "seeded");
  }
  cache::DiskStoreOptions Opts;
  Opts.Dir = G.Dir;
  Opts.ReadOnly = true;
  Opts.Shared = true; // contradictory: ro must win
  cache::DiskStore S(Opts);
  ASSERT_TRUE(S.ok());
  EXPECT_FALSE(S.lockHeld());
  EXPECT_EQ(*S.load(fp(90)), "seeded");
  EXPECT_EQ(S.store(fp(91), "x"), 0u);
  EXPECT_FALSE(S.load(fp(91)).has_value());
}

// Satellite: the shared tier under real process concurrency. N forked
// readers hammer the store while a forked writer publishes; a torn read
// would surface as a wrong payload (the checksummed blob format turns
// tears into misses, never wrong bytes), and afterwards a single fresh
// store must see every publication exactly once.
TEST(DiskStore, MultiProcessSharedTierNoTornReadsAndNoLostWrites) {
  DirGuard G(freshDir("shared-mp"));
  constexpr uint64_t Preloaded = 12, Written = 12;
  constexpr int Readers = 4;
  auto PayloadOf = [](uint64_t K) {
    // Big enough to span several write(2)-sized chunks if a tear were
    // possible, and unique per key so replays of the wrong verdict
    // cannot masquerade as hits.
    return "payload-" + std::to_string(K) + "-" +
           std::string(4096 + K, static_cast<char>('a' + K % 23));
  };

  cache::DiskStoreOptions SharedOpts;
  SharedOpts.Dir = G.Dir;
  SharedOpts.Shared = true;

  // The parent holds the lease for the whole run, so the forked writer
  // exercises the append path and the readers race real publications.
  auto Parent = std::make_unique<cache::DiskStore>(SharedOpts);
  ASSERT_TRUE(Parent->ok());
  ASSERT_TRUE(Parent->lockHeld());
  for (uint64_t K = 0; K != Preloaded; ++K)
    Parent->store(fp(K), PayloadOf(K));
  ASSERT_EQ(Parent->counters().StoreErrors, 0u);
  ASSERT_EQ(Parent->counters().Stores, Preloaded);

  std::vector<pid_t> Kids;
  pid_t Writer = ::fork();
  ASSERT_GE(Writer, 0);
  if (Writer == 0) {
    cache::DiskStore W(SharedOpts);
    int Bad = W.ok() && !W.lockHeld() ? 0 : 1;
    for (uint64_t K = Preloaded; K != Preloaded + Written; ++K)
      W.store(fp(K), PayloadOf(K));
    Bad += static_cast<int>(W.counters().StoreErrors);
    if (W.counters().Stores != Written)
      ++Bad;
    ::_exit(Bad > 250 ? 250 : Bad);
  }
  Kids.push_back(Writer);
  for (int R = 0; R != Readers; ++R) {
    pid_t Reader = ::fork();
    ASSERT_GE(Reader, 0);
    if (Reader == 0) {
      cache::DiskStoreOptions RO;
      RO.Dir = G.Dir;
      RO.ReadOnly = true;
      cache::DiskStore S(RO);
      int Bad = S.ok() ? 0 : 1;
      uint64_t Hits = 0;
      for (int Round = 0; Round != 40; ++Round)
        for (uint64_t K = 0; K != Preloaded + Written; ++K) {
          auto V = S.load(fp(K));
          if (!V)
            continue; // not published yet: a miss is always legal
          ++Hits;
          if (*V != PayloadOf(K))
            ++Bad; // torn read or wrong-verdict replay
        }
      // Preloaded entries were on disk before the fork: every round
      // must have hit all of them.
      if (Hits < 40 * Preloaded)
        ++Bad;
      ::_exit(Bad > 250 ? 250 : Bad);
    }
    Kids.push_back(Reader);
  }
  for (pid_t Pid : Kids) {
    int Status = 0;
    ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
    ASSERT_TRUE(WIFEXITED(Status));
    EXPECT_EQ(WEXITSTATUS(Status), 0)
        << (Pid == Writer ? "writer" : "reader") << " saw failures";
  }

  // The parent's next store merges the writer's appended lines.
  Parent->store(fp(1000), "tail");
  EXPECT_EQ(Parent->counters().StoreErrors, 0u);
  EXPECT_GE(Parent->counters().SharedMerged, Written);
  Parent.reset(); // release the lease for the fresh single-process store

  // A fresh single-process store sees exactly the union: every key, the
  // right bytes, and hit counters equal to what a single process doing
  // all the work would report.
  cache::DiskStore Fresh({G.Dir});
  ASSERT_TRUE(Fresh.ok());
  for (uint64_t K = 0; K != Preloaded + Written; ++K) {
    auto V = Fresh.load(fp(K));
    ASSERT_TRUE(V.has_value()) << "lost write, key " << K;
    EXPECT_EQ(*V, PayloadOf(K)) << "key " << K;
  }
  EXPECT_EQ(Fresh.counters().Hits, Preloaded + Written);
  EXPECT_EQ(Fresh.counters().Misses, 0u);
}

TEST(DiskStore, CorruptIndexLinesAreSkipped) {
  DirGuard G(freshDir("badindex"));
  Fingerprint F = fp(47);
  {
    cache::DiskStore S({G.Dir});
    S.store(F, "payload");
  }
  {
    std::ofstream Out(G.Dir + "/index", std::ios::app);
    Out << "not a valid line\n"
        << "00112233445566778899aabbccddeeff notanumber 3\n";
  }
  cache::DiskStore S({G.Dir});
  EXPECT_EQ(*S.load(F), "payload");
}

TEST(DiskStore, EvictsOldestBeyondMaxBytes) {
  DirGuard G(freshDir("evict"));
  cache::DiskStoreOptions Opts;
  Opts.Dir = G.Dir;
  Opts.MaxBytes = 100; // tiny budget: a few 40-byte payloads
  cache::DiskStore S(Opts);
  std::string Payload(40, 'x');
  for (uint64_t I = 0; I != 10; ++I)
    S.store(fp(100 + I), Payload);
  EXPECT_LE(S.totalBytes(), Opts.MaxBytes);
  EXPECT_GE(S.counters().Evictions, 7u);
  // Newest entry survives, oldest is gone.
  EXPECT_TRUE(S.load(fp(109)).has_value());
  EXPECT_FALSE(S.load(fp(100)).has_value());
}

TEST(DiskStore, UnusableDirectoryDegradesToMisses) {
  // A path that cannot be a directory: a file stands in its way.
  DirGuard G(freshDir("blocked"));
  {
    std::ofstream Out(G.Dir);
    Out << "a file, not a directory";
  }
  cache::DiskStore S({G.Dir + "/sub"});
  EXPECT_FALSE(S.ok());
  EXPECT_FALSE(S.load(fp(1)).has_value());
  S.store(fp(1), "x");
  EXPECT_GE(S.counters().StoreErrors, 1u);
}

// --- Verdict ------------------------------------------------------------------

TEST(Verdict, RoundtripAllStatuses) {
  cache::Verdict V;
  V.DiffMismatches = 3;
  V.Checker.Functions["ok"] = {checker::ValidationStatus::Validated, "", ""};
  V.Checker.Functions["bad"] = {checker::ValidationStatus::Failed, "b1:4",
                                "lessdef does not hold"};
  V.Checker.Functions["ns"] = {checker::ValidationStatus::NotSupported, "",
                               "lifetime intrinsics"};
  auto Back = cache::verdictFromBytes(cache::verdictToBytes(V));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->DiffMismatches, 3u);
  ASSERT_EQ(Back->Checker.Functions.size(), 3u);
  EXPECT_EQ(Back->Checker.Functions["bad"].Status,
            checker::ValidationStatus::Failed);
  EXPECT_EQ(Back->Checker.Functions["bad"].Where, "b1:4");
  EXPECT_EQ(Back->Checker.Functions["bad"].Reason, "lessdef does not hold");
  EXPECT_EQ(Back->Checker.Functions["ns"].Status,
            checker::ValidationStatus::NotSupported);
}

TEST(Verdict, DecoderRejectsMalformedBytes) {
  std::string Err;
  EXPECT_FALSE(cache::verdictFromBytes("", &Err).has_value());
  EXPECT_FALSE(cache::verdictFromBytes("not json", &Err).has_value());
  EXPECT_FALSE(cache::verdictFromBytes("[1,2,3]", &Err).has_value());
  EXPECT_FALSE(
      cache::verdictFromBytes("{\"v\":999,\"diff_mismatches\":0,\"functions\":[]}",
                              &Err)
          .has_value());
  EXPECT_FALSE(cache::verdictFromBytes(
                   "{\"v\":1,\"diff_mismatches\":0,\"functions\":["
                   "{\"name\":\"f\",\"status\":7,\"where\":\"\",\"reason\":\"\"}]}",
                   &Err)
                   .has_value())
      << "out-of-range status must be rejected";
}

// --- ValidationCache (two-tier facade) ----------------------------------------

TEST(ValidationCache, OffPolicyNeverStoresOrHits) {
  cache::ValidationCacheOptions Opts;
  Opts.Policy = cache::CachePolicy::Off;
  cache::ValidationCache C(Opts);
  EXPECT_FALSE(C.enabled());
  cache::Verdict V;
  EXPECT_FALSE(C.store(fp(1), V).Stored);
  EXPECT_FALSE(C.lookup(fp(1)).has_value());
}

TEST(ValidationCache, ReadOnlyHitsExistingStoreButNeverWrites) {
  DirGuard G(freshDir("ro"));
  cache::Verdict V;
  V.Checker.Functions["f"] = {checker::ValidationStatus::Validated, "", ""};
  {
    cache::ValidationCacheOptions Opts;
    Opts.Policy = cache::CachePolicy::ReadWrite;
    Opts.Dir = G.Dir;
    cache::ValidationCache RW(Opts);
    EXPECT_TRUE(RW.store(fp(1), V).Stored);
  }
  cache::ValidationCacheOptions Opts;
  Opts.Policy = cache::CachePolicy::ReadOnly;
  Opts.Dir = G.Dir;
  cache::ValidationCache RO(Opts);
  EXPECT_TRUE(RO.lookup(fp(1)).has_value());
  EXPECT_FALSE(RO.store(fp(2), V).Stored);
  EXPECT_FALSE(RO.lookup(fp(2)).has_value());
  EXPECT_EQ(RO.diskCounters().Stores, 0u);
  EXPECT_EQ(RO.diskCounters().Evictions, 0u);
  EXPECT_EQ(RO.diskCounters().StoreErrors, 0u);
}

TEST(ValidationCache, ReadOnlyFreshDirStaysUntouched) {
  DirGuard G(freshDir("ro-fresh"));
  cache::ValidationCacheOptions Opts;
  Opts.Policy = cache::CachePolicy::ReadOnly;
  Opts.Dir = G.Dir; // never created
  cache::ValidationCache RO(Opts);
  EXPECT_TRUE(RO.enabled());
  EXPECT_FALSE(RO.writable());
  EXPECT_FALSE(RO.lookup(fp(3)).has_value());
  cache::Verdict V;
  EXPECT_FALSE(RO.store(fp(3), V).Stored);
  auto C = RO.diskCounters();
  EXPECT_EQ(C.Stores, 0u);
  EXPECT_EQ(C.Evictions, 0u);
  EXPECT_EQ(C.StoreErrors, 0u);
  EXPECT_EQ(C.IndexRebuilds, 0u);
  EXPECT_FALSE(std::filesystem::exists(G.Dir))
      << "--cache=ro against a fresh dir must leave the filesystem alone";
}

TEST(ValidationCache, DiskHitsArePromotedToMemory) {
  DirGuard G(freshDir("promote"));
  cache::Verdict V;
  {
    cache::ValidationCacheOptions Opts;
    Opts.Policy = cache::CachePolicy::ReadWrite;
    Opts.Dir = G.Dir;
    cache::ValidationCache RW(Opts);
    RW.store(fp(5), V);
  }
  cache::ValidationCacheOptions Opts;
  Opts.Policy = cache::CachePolicy::ReadWrite;
  Opts.Dir = G.Dir;
  cache::ValidationCache C(Opts);
  EXPECT_EQ(C.memSize(), 0u);
  EXPECT_TRUE(C.lookup(fp(5)).has_value()); // disk hit
  EXPECT_EQ(C.memSize(), 1u);               // promoted
  EXPECT_TRUE(C.lookup(fp(5)).has_value()); // now a memory hit
  EXPECT_EQ(C.diskCounters().Hits, 1u) << "second hit must come from memory";
}

TEST(ValidationCache, ParseCachePolicy) {
  EXPECT_EQ(cache::parseCachePolicy("off"), cache::CachePolicy::Off);
  EXPECT_EQ(cache::parseCachePolicy("ro"), cache::CachePolicy::ReadOnly);
  EXPECT_EQ(cache::parseCachePolicy("rw"), cache::CachePolicy::ReadWrite);
  EXPECT_FALSE(cache::parseCachePolicy("").has_value());
  EXPECT_FALSE(cache::parseCachePolicy("readwrite").has_value());
}

// --- Driver integration -------------------------------------------------------

driver::BatchReport runCorpus(cache::ValidationCache *Cache, unsigned Jobs,
                              size_t N = 12) {
  driver::DriverOptions DOpts;
  DOpts.WriteFiles = false;
  DOpts.Cache = Cache;
  driver::BatchOptions BOpts;
  BOpts.Jobs = Jobs;
  return driver::runBatchValidated(
      passes::BugConfig::llvm371(), DOpts, N,
      [](size_t I) {
        workload::GenOptions G;
        G.Seed = 0xcafe + I;
        G.GepPairPct = 40; // make the gvn bug fire: nonempty #F column
        return workload::generateModule(G);
      },
      BOpts);
}

// Everything deterministic in PassStats — counts and samples, not times.
void expectSameVerdicts(const driver::StatsMap &A, const driver::StatsMap &B,
                        const char *What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  for (const auto &KV : A) {
    auto It = B.find(KV.first);
    ASSERT_NE(It, B.end()) << What << ": pass " << KV.first;
    const driver::PassStats &X = KV.second, &Y = It->second;
    EXPECT_EQ(X.V, Y.V) << What << ": " << KV.first;
    EXPECT_EQ(X.F, Y.F) << What << ": " << KV.first;
    EXPECT_EQ(X.NS, Y.NS) << What << ": " << KV.first;
    EXPECT_EQ(X.DiffMismatches, Y.DiffMismatches) << What << ": " << KV.first;
    EXPECT_EQ(X.FailureSamples, Y.FailureSamples) << What << ": " << KV.first;
  }
}

TEST(DriverCache, CacheOnProducesIdenticalVerdictsColdAndWarm) {
  DirGuard G(freshDir("driver"));
  driver::BatchReport Off = runCorpus(nullptr, 1);

  cache::ValidationCacheOptions Opts;
  Opts.Policy = cache::CachePolicy::ReadWrite;
  Opts.Dir = G.Dir;
  cache::ValidationCache Cache(Opts);

  driver::BatchReport Cold = runCorpus(&Cache, 1);
  expectSameVerdicts(Off.Stats, Cold.Stats, "off vs cold");
  uint64_t ColdHits = 0, ColdMisses = 0, ColdStores = 0;
  for (const auto &KV : Cold.Stats) {
    ColdHits += KV.second.CacheHits;
    ColdMisses += KV.second.CacheMisses;
    ColdStores += KV.second.CacheStores;
  }
  EXPECT_EQ(ColdHits, 0u);
  EXPECT_GT(ColdMisses, 0u);
  EXPECT_EQ(ColdStores, ColdMisses) << "every cold miss must populate";

  driver::BatchReport Warm = runCorpus(&Cache, 1);
  expectSameVerdicts(Off.Stats, Warm.Stats, "off vs warm");
  uint64_t WarmHits = 0, WarmMisses = 0;
  for (const auto &KV : Warm.Stats) {
    WarmHits += KV.second.CacheHits;
    WarmMisses += KV.second.CacheMisses;
  }
  EXPECT_EQ(WarmMisses, 0u) << "an unchanged corpus must hit everywhere";
  EXPECT_EQ(WarmHits, ColdMisses);
}

TEST(DriverCache, WarmStatsAreBitIdenticalAcrossJobCounts) {
  DirGuard G(freshDir("jobs"));
  cache::ValidationCacheOptions Opts;
  Opts.Policy = cache::CachePolicy::ReadWrite;
  Opts.Dir = G.Dir;
  cache::ValidationCache Cache(Opts);
  runCorpus(&Cache, 1); // populate

  driver::BatchReport J1 = runCorpus(&Cache, 1);
  driver::BatchReport J8 = runCorpus(&Cache, 8);
  expectSameVerdicts(J1.Stats, J8.Stats, "jobs 1 vs 8");
  for (const auto &KV : J1.Stats) {
    const driver::PassStats &X = KV.second;
    const driver::PassStats &Y = J8.Stats.at(KV.first);
    EXPECT_EQ(X.CacheHits, Y.CacheHits) << KV.first;
    EXPECT_EQ(X.CacheMisses, Y.CacheMisses) << KV.first;
    EXPECT_EQ(X.CacheStores, Y.CacheStores) << KV.first;
    EXPECT_EQ(X.CacheEvictions, Y.CacheEvictions) << KV.first;
    EXPECT_EQ(X.CacheStoreErrors, Y.CacheStoreErrors) << KV.first;
  }
}

TEST(DriverCache, DifferentBugConfigDoesNotReuseCachedVerdicts) {
  // Same corpus, clean vs buggy compiler: the second run must miss, and
  // its verdicts must differ from the first (the gvn bug fires).
  DirGuard G(freshDir("bugs"));
  cache::ValidationCacheOptions Opts;
  Opts.Policy = cache::CachePolicy::ReadWrite;
  Opts.Dir = G.Dir;
  cache::ValidationCache Cache(Opts);

  auto Run = [&Cache](const passes::BugConfig &Bugs) {
    driver::DriverOptions DOpts;
    DOpts.WriteFiles = false;
    DOpts.Cache = &Cache;
    return driver::runBatchValidated(Bugs, DOpts, 8, [](size_t I) {
      workload::GenOptions G;
      G.Seed = 0xbeef + I;
      G.GepPairPct = 60;
      return workload::generateModule(G);
    });
  };
  driver::BatchReport Clean = Run(passes::BugConfig());
  driver::BatchReport Buggy = Run(passes::BugConfig::llvm371());

  uint64_t BuggyHits = 0;
  for (const auto &KV : Buggy.Stats)
    BuggyHits += KV.second.CacheHits;
  EXPECT_EQ(BuggyHits, 0u)
      << "a different bug config must never replay cached verdicts";
  uint64_t CleanF = 0, BuggyF = 0;
  for (const auto &KV : Clean.Stats)
    CleanF += KV.second.F;
  for (const auto &KV : Buggy.Stats)
    BuggyF += KV.second.F;
  EXPECT_EQ(CleanF, 0u);
  EXPECT_GT(BuggyF, 0u);
}

} // namespace
