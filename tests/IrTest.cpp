//===- tests/IrTest.cpp - IR core unit tests --------------------------------===//
//
// Types, values (including constant expressions and the canonical
// sign-extended constant representation), instruction factories, textual
// round-trips per construct, and parser diagnostics.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::ir;

namespace {

TEST(Type, Printing) {
  EXPECT_EQ(Type::voidTy().str(), "void");
  EXPECT_EQ(Type::intTy(1).str(), "i1");
  EXPECT_EQ(Type::intTy(64).str(), "i64");
  EXPECT_EQ(Type::ptrTy().str(), "ptr");
  EXPECT_EQ(Type::vecTy(4, 32).str(), "<4 x i32>");
}

TEST(Type, EqualityAndOrder) {
  EXPECT_EQ(Type::intTy(32), Type::intTy(32));
  EXPECT_NE(Type::intTy(32), Type::intTy(64));
  EXPECT_NE(Type::intTy(32), Type::ptrTy());
  EXPECT_TRUE(Type::intTy(8) < Type::intTy(16) ||
              Type::intTy(16) < Type::intTy(8));
}

TEST(Value, ConstIntCanonicalization) {
  // i1 "1" and i1 "-1" are the same bit pattern and must compare equal.
  EXPECT_EQ(Value::constInt(1, Type::intTy(1)),
            Value::constInt(-1, Type::intTy(1)));
  EXPECT_EQ(Value::constInt(255, Type::intTy(8)),
            Value::constInt(-1, Type::intTy(8)));
  EXPECT_EQ(Value::constInt(256, Type::intTy(8)).intValue(), 0);
  EXPECT_EQ(Value::constInt(130, Type::intTy(8)).intValue(), 130 - 256);
  EXPECT_EQ(Value::constInt(-5, Type::intTy(64)).intValue(), -5);
}

TEST(Value, Kinds) {
  Value R = Value::reg("x", Type::intTy(32));
  EXPECT_TRUE(R.isReg());
  EXPECT_EQ(R.regName(), "x");
  EXPECT_FALSE(R.isConstant());
  Value G = Value::global("G");
  EXPECT_TRUE(G.isGlobal());
  EXPECT_TRUE(G.type().isPtr());
  EXPECT_TRUE(Value::undef(Type::intTy(8)).isUndef());
  EXPECT_TRUE(Value::undef(Type::intTy(8)).isConstant());
}

TEST(Value, ConstExprTrapsDetection) {
  Type I32 = Type::intTy(32);
  Value G = Value::global("G");
  Value P2I = Value::constExpr(Opcode::PtrToInt, I32, {G});
  EXPECT_FALSE(P2I.mayTrapWhenEvaluated());
  Value Diff = Value::constExpr(Opcode::Sub, I32, {P2I, P2I});
  EXPECT_FALSE(Diff.mayTrapWhenEvaluated());
  Value Div = Value::constExpr(Opcode::SDiv, I32,
                               {Value::constInt(1, I32), Diff});
  EXPECT_TRUE(Div.mayTrapWhenEvaluated());
  // Literal nonzero (and non -1) divisors cannot trap.
  Value Safe = Value::constExpr(Opcode::SDiv, I32,
                                {P2I, Value::constInt(7, I32)});
  EXPECT_FALSE(Safe.mayTrapWhenEvaluated());
}

TEST(Value, ConstExprPrinting) {
  Type I32 = Type::intTy(32);
  Value G = Value::global("G");
  Value P2I = Value::constExpr(Opcode::PtrToInt, I32, {G});
  EXPECT_EQ(P2I.str(), "ptrtoint (ptr @G)");
  Value Sum = Value::constExpr(Opcode::Add, I32,
                               {P2I, Value::constInt(4, I32)});
  EXPECT_EQ(Sum.str(), "add (i32 ptrtoint (ptr @G), i32 4)");
}

TEST(Instruction, ReplaceUses) {
  Type I32 = Type::intTy(32);
  Instruction I = Instruction::binary(Opcode::Add, "y", I32,
                                      Value::reg("x", I32),
                                      Value::reg("x", I32));
  EXPECT_EQ(I.replaceUses("x", Value::constInt(3, I32)), 2u);
  EXPECT_EQ(I.str(), "%y = add i32 3, 3");
  EXPECT_EQ(I.replaceUses("x", Value::constInt(4, I32)), 0u);
}

TEST(Instruction, WithResult) {
  Type I32 = Type::intTy(32);
  Instruction I = Instruction::binary(Opcode::Mul, "y", I32,
                                      Value::reg("a", I32),
                                      Value::reg("b", I32));
  Instruction J = I.withResult("z");
  EXPECT_EQ(*J.result(), "z");
  EXPECT_EQ(J.operands(), I.operands());
  EXPECT_FALSE(I == J);
}

TEST(Instruction, TerminatorPredicates) {
  EXPECT_TRUE(Instruction::br("b").isTerminator());
  EXPECT_TRUE(Instruction::ret(std::nullopt).isTerminator());
  EXPECT_TRUE(Instruction::unreachable().isTerminator());
  EXPECT_FALSE(Instruction::load("x", Type::intTy(8),
                                 Value::reg("p", Type::ptrTy()))
                   .isTerminator());
}

class InstructionRoundTrip : public ::testing::TestWithParam<const char *> {
};

TEST_P(InstructionRoundTrip, PrintParsePrint) {
  std::string Err;
  auto I = parseInstructionText(GetParam(), &Err);
  ASSERT_TRUE(I) << Err;
  EXPECT_EQ(I->str(), GetParam());
  auto I2 = parseInstructionText(I->str(), &Err);
  ASSERT_TRUE(I2) << Err;
  EXPECT_TRUE(*I == *I2);
}

INSTANTIATE_TEST_SUITE_P(
    AllConstructs, InstructionRoundTrip,
    ::testing::Values(
        "%y = add i32 %a, 1", "%y = sub i8 %a, -2",
        "%y = mul i64 %a, %b", "%y = sdiv i32 %a, 3",
        "%y = urem i32 %a, %b", "%y = shl i32 %a, 4",
        "%y = ashr i32 %a, %b", "%y = xor i1 %a, %b",
        "%c = icmp slt i32 %a, %b", "%c = icmp eq i64 %a, 10",
        "%y = select i1 %c, i32 %a, %b",
        "%y = trunc i64 %a to i32", "%y = zext i8 %a to i64",
        "%y = sext i16 %a to i32", "%y = ptrtoint ptr %p to i64",
        "%y = inttoptr i64 %a to ptr", "%y = bitcast i32 %a to i32",
        "%p = alloca i32, 4", "%x = load i32, ptr %p",
        "store i32 %x, ptr %p", "%q = gep ptr %p, i64 3",
        "%q = gep inbounds ptr %p, i64 %i",
        "%r = call i32 @f(i32 %a, ptr %p)", "call void @g()",
        "br label %next", "br i1 %c, label %t, label %f",
        "switch i32 %v, label %d [0: label %a 1: label %b]",
        "ret i32 %v", "ret void", "unreachable",
        "%y = add <4 x i32> %a, %b",
        "store i32 sdiv (i32 1, i32 sub (i32 ptrtoint (ptr @G), i32 "
        "ptrtoint (ptr @G))), ptr %p"));

TEST(Parser, RejectsMalformedInput) {
  std::string Err;
  EXPECT_FALSE(parseModule("define i32 @f( {", &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(parseModule("define i32 @f() {\nentry:\n  %x = frobnicate "
                           "i32 %a\n  ret i32 %x\n}",
                           &Err));
  EXPECT_FALSE(parseModule("declare foo @f()", &Err));
  EXPECT_FALSE(parseModule("@G = global i32", &Err)); // missing size
}

TEST(Parser, ReportsLineNumbers) {
  std::string Err;
  EXPECT_FALSE(parseModule(
      "define void @f() {\nentry:\n  %x = bogus i32 1\n}", &Err));
  EXPECT_NE(Err.find("line 3"), std::string::npos) << Err;
}

TEST(Parser, ParsesComments) {
  std::string Err;
  auto M = parseModule("; header comment\n"
                       "define void @f() { ; trailing\n"
                       "entry: ; block\n"
                       "  ret void\n}",
                       &Err);
  ASSERT_TRUE(M) << Err;
  EXPECT_EQ(M->Funcs[0].Blocks.size(), 1u);
}

TEST(Module, Lookups) {
  std::string Err;
  auto M = parseModule(R"(
@G = global i32, 2
declare i32 @ext(i32)
define void @f() {
entry:
  ret void
}
)",
                       &Err);
  ASSERT_TRUE(M) << Err;
  EXPECT_NE(M->getFunction("f"), nullptr);
  EXPECT_EQ(M->getFunction("nope"), nullptr);
  ASSERT_NE(M->getGlobal("G"), nullptr);
  EXPECT_EQ(M->getGlobal("G")->Size, 2u);
  ASSERT_NE(M->getDecl("ext"), nullptr);
  EXPECT_EQ(M->getDecl("ext")->ParamTys.size(), 1u);
}

TEST(Function, FindDef) {
  std::string Err;
  auto M = parseModule(R"(
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  br label %next
next:
  %p = phi i32 [ %x, %entry ]
  ret i32 %p
}
)",
                       &Err);
  ASSERT_TRUE(M) << Err;
  const Function &F = M->Funcs[0];
  std::string Blk;
  size_t Idx;
  ASSERT_TRUE(F.findDef("x", Blk, Idx));
  EXPECT_EQ(Blk, "entry");
  EXPECT_EQ(Idx, 0u);
  ASSERT_TRUE(F.findDef("p", Blk, Idx));
  EXPECT_EQ(Blk, "next");
  EXPECT_EQ(Idx, ~size_t(0)); // phi definition
  ASSERT_TRUE(F.findDef("a", Blk, Idx));
  EXPECT_TRUE(Blk.empty()); // parameter
  EXPECT_FALSE(F.findDef("nope", Blk, Idx));
}

TEST(IRBuilderApi, BuildsAWellFormedFunction) {
  Function F;
  F.Name = "built";
  F.RetTy = Type::intTy(32);
  F.Params.push_back(Param{"a", Type::intTy(32)});
  IRBuilder B(F);
  B.block("entry");
  Value X = B.binary(Opcode::Add, "x", B.reg("a", Type::intTy(32)),
                     B.i32(1));
  B.condBr(B.icmp("c", IcmpPred::Slt, X, B.i32(10)), "then", "els");
  B.block("then");
  B.br("join");
  B.block("els");
  B.br("join");
  B.block("join");
  Value M = B.phi("m", Type::intTy(32), {{"then", X}, {"els", B.i32(0)}});
  B.ret(M);
  // Round-trip through text.
  std::string Err;
  Module Mod;
  Mod.Funcs.push_back(F);
  auto Back = parseModule(printModule(Mod), &Err);
  ASSERT_TRUE(Back) << Err;
  EXPECT_EQ(printModule(*Back), printModule(Mod));
}

} // namespace
