//===- tests/PassValidationTest.cpp - Pass + proof + checker e2e -----------===//
//
// For each optimization pass: run it with proof generation on hand-written
// programs, check that the proof validates, that the target module is
// well-formed, and that the target refines the source under the
// interpreter.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "checker/Validator.h"
#include "interp/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "passes/Pipeline.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::passes;

namespace {

ir::Module parse(const std::string &Text) {
  std::string Err;
  auto M = ir::parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  std::vector<std::string> VErrs;
  EXPECT_TRUE(analysis::verifyModule(*M, VErrs))
      << (VErrs.empty() ? "" : VErrs[0]);
  return *M;
}

struct RunOutcome {
  PassResult PR;
  checker::ModuleResult VR;
};

RunOutcome runPass(const std::string &PassName, const ir::Module &Src,
                   const BugConfig &Bugs = BugConfig::fixed()) {
  auto P = makePass(PassName, Bugs);
  EXPECT_TRUE(P);
  RunOutcome Out;
  Out.PR = P->run(Src, /*GenProof=*/true);
  std::vector<std::string> VErrs;
  EXPECT_TRUE(analysis::verifyModule(Out.PR.Tgt, VErrs))
      << "target ill-formed: " << (VErrs.empty() ? "" : VErrs[0]) << "\n"
      << ir::printModule(Out.PR.Tgt);
  Out.VR = checker::validate(Src, Out.PR.Tgt, Out.PR.Proof);
  return Out;
}

void expectRefines(const ir::Module &Src, const ir::Module &Tgt,
                   const std::string &Fn, std::vector<int64_t> Args) {
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    interp::InterpOptions Opts;
    Opts.OracleSeed = Seed;
    auto RS = interp::run(Src, Fn, Args, Opts);
    auto RT = interp::run(Tgt, Fn, Args, Opts);
    EXPECT_TRUE(interp::refines(RS, RT))
        << "refinement broken for seed " << Seed << "\nsrc: "
        << (RS.Trace.empty() ? "(no events)" : RS.Trace[0].str())
        << "\ntgt: "
        << (RT.Trace.empty() ? "(no events)" : RT.Trace[0].str());
  }
}

// --- instcombine ----------------------------------------------------------

TEST(InstCombineValidation, AssocAdd) {
  ir::Module Src = parse(R"(
declare void @sink(i32)
define void @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  %y = add i32 %x, 2
  call void @sink(i32 %y)
  ret void
}
)");
  auto Out = runPass("instcombine", Src);
  EXPECT_GE(Out.PR.Rewrites, 1u);
  EXPECT_EQ(Out.VR.countValidated(), 1u) << Out.VR.firstFailure();
  expectRefines(Src, Out.PR.Tgt, "f", {7});
}

TEST(InstCombineValidation, FoldAddZeroWithUses) {
  ir::Module Src = parse(R"(
declare void @sink(i32)
define i32 @g(i32 %a) {
entry:
  %y = add i32 %a, 0
  call void @sink(i32 %y)
  ret i32 %y
}
)");
  auto Out = runPass("instcombine", Src);
  EXPECT_GE(Out.PR.Rewrites, 1u);
  EXPECT_EQ(Out.VR.countValidated(), 1u) << Out.VR.firstFailure();
  expectRefines(Src, Out.PR.Tgt, "g", {5});
}

TEST(InstCombineValidation, FoldAcrossPhi) {
  ir::Module Src = parse(R"(
define i32 @h(i1 %c, i32 %a) {
entry:
  %y = and i32 %a, -1
  br i1 %c, label %l, label %r
l:
  br label %exit
r:
  br label %exit
exit:
  %m = phi i32 [ %y, %l ], [ 3, %r ]
  ret i32 %m
}
)");
  auto Out = runPass("instcombine", Src);
  EXPECT_GE(Out.PR.Rewrites, 1u);
  EXPECT_EQ(Out.VR.countValidated(), 1u) << Out.VR.firstFailure();
  expectRefines(Src, Out.PR.Tgt, "h", {0, 9});
  expectRefines(Src, Out.PR.Tgt, "h", {1, 9});
}

TEST(InstCombineValidation, DeMorgan) {
  ir::Module Src = parse(R"(
define i32 @dm(i32 %a, i32 %b) {
entry:
  %na = xor i32 %a, -1
  %nb = xor i32 %b, -1
  %z = and i32 %na, %nb
  ret i32 %z
}
)");
  auto Out = runPass("instcombine", Src);
  EXPECT_GE(Out.PR.Rewrites, 1u);
  EXPECT_EQ(Out.VR.countValidated(), 1u) << Out.VR.firstFailure();
  expectRefines(Src, Out.PR.Tgt, "dm", {6, 12});
}

TEST(InstCombineValidation, ManyFoldsValidate) {
  ir::Module Src = parse(R"(
declare void @sink(i32)
define void @many(i32 %a, i32 %b) {
entry:
  %t1 = sub i32 %a, %a
  %t2 = mul i32 %b, 8
  %t3 = or i32 %a, 0
  %t4 = xor i32 %b, %b
  %t5 = add i32 %t2, 4
  call void @sink(i32 %t1)
  call void @sink(i32 %t2)
  call void @sink(i32 %t3)
  call void @sink(i32 %t4)
  call void @sink(i32 %t5)
  ret void
}
)");
  auto Out = runPass("instcombine", Src);
  EXPECT_GE(Out.PR.Rewrites, 4u);
  EXPECT_EQ(Out.VR.countValidated(), 1u) << Out.VR.firstFailure();
  expectRefines(Src, Out.PR.Tgt, "many", {3, 4});
}

// --- mem2reg ----------------------------------------------------------------

TEST(Mem2RegValidation, PaperFigure3) {
  ir::Module Src = parse(R"(
declare void @foo(i32)
define void @m(i1 %c, i32 %x, ptr %q) {
entry:
  %p = alloca i32, 1
  store i32 42, ptr %p
  br i1 %c, label %left, label %right
left:
  %a = load i32, ptr %p
  call void @foo(i32 %a)
  br label %exit
right:
  store i32 %x, ptr %p
  store i32 %x, ptr %q
  br label %exit
exit:
  %b = load i32, ptr %p
  store i32 %b, ptr %q
  ret void
}
)");
  auto Out = runPass("mem2reg", Src);
  EXPECT_EQ(Out.PR.Rewrites, 1u);
  EXPECT_EQ(Out.VR.countValidated(), 1u) << Out.VR.firstFailure();
  // The alloca is gone from the target.
  EXPECT_EQ(ir::printModule(Out.PR.Tgt).find("alloca"), std::string::npos);
  expectRefines(Src, Out.PR.Tgt, "m", {0, 11});
  expectRefines(Src, Out.PR.Tgt, "m", {1, 11});
}

TEST(Mem2RegValidation, SingleStoreDominatingLoads) {
  ir::Module Src = parse(R"(
declare void @foo(i32)
define void @s(i32 %x) {
entry:
  %p = alloca i32, 1
  store i32 %x, ptr %p
  %a = load i32, ptr %p
  call void @foo(i32 %a)
  ret void
}
)");
  auto Out = runPass("mem2reg", Src);
  EXPECT_EQ(Out.PR.Rewrites, 1u);
  EXPECT_EQ(Out.VR.countValidated(), 1u) << Out.VR.firstFailure();
  expectRefines(Src, Out.PR.Tgt, "s", {13});
}

TEST(Mem2RegValidation, LoadOfUninitialized) {
  ir::Module Src = parse(R"(
declare void @foo(i32)
define void @u() {
entry:
  %p = alloca i32, 1
  %a = load i32, ptr %p
  call void @foo(i32 %a)
  ret void
}
)");
  auto Out = runPass("mem2reg", Src);
  EXPECT_EQ(Out.PR.Rewrites, 1u);
  EXPECT_EQ(Out.VR.countValidated(), 1u) << Out.VR.firstFailure();
  expectRefines(Src, Out.PR.Tgt, "u", {});
}

TEST(Mem2RegValidation, StoreInLoop) {
  ir::Module Src = parse(R"(
declare i1 @cond()
declare void @foo(i32)
define void @lp(i32 %x) {
entry:
  %p = alloca i32, 1
  store i32 0, ptr %p
  br label %header
header:
  %v = load i32, ptr %p
  call void @foo(i32 %v)
  %v2 = add i32 %v, 1
  store i32 %v2, ptr %p
  %c = call i1 @cond()
  br i1 %c, label %header, label %done
done:
  %f = load i32, ptr %p
  call void @foo(i32 %f)
  ret void
}
)");
  auto Out = runPass("mem2reg", Src);
  EXPECT_EQ(Out.PR.Rewrites, 1u);
  EXPECT_EQ(Out.VR.countValidated(), 1u) << Out.VR.firstFailure();
  expectRefines(Src, Out.PR.Tgt, "lp", {4});
}

// --- gvn --------------------------------------------------------------------

TEST(GvnValidation, FullRedundancy) {
  ir::Module Src = parse(R"(
define i32 @gv(i32 %n) {
entry:
  %x1 = sub i32 %n, 2
  %y1 = add i32 %x1, 1
  %x2 = sub i32 %n, 2
  %s = add i32 %y1, %x2
  ret i32 %s
}
)");
  auto Out = runPass("gvn", Src);
  EXPECT_GE(Out.PR.Rewrites, 1u);
  EXPECT_EQ(Out.VR.countValidated(), 1u) << Out.VR.firstFailure();
  expectRefines(Src, Out.PR.Tgt, "gv", {10});
}

TEST(GvnValidation, CommutativeMatch) {
  ir::Module Src = parse(R"(
define i32 @cm(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %y = add i32 %b, %a
  %s = mul i32 %x, %y
  ret i32 %s
}
)");
  auto Out = runPass("gvn", Src);
  EXPECT_GE(Out.PR.Rewrites, 1u);
  EXPECT_EQ(Out.VR.countValidated(), 1u) << Out.VR.firstFailure();
  expectRefines(Src, Out.PR.Tgt, "cm", {3, 4});
}

TEST(GvnValidation, PrePhiInsertion) {
  // Paper Fig. 15 shape: y3 is redundant along both edges into exit.
  ir::Module Src = parse(R"(
declare void @sink(i32)
define void @pre(i32 %n, i1 %c1) {
entry:
  %x1 = sub i32 %n, 2
  br i1 %c1, label %left, label %right
left:
  %y1 = add i32 %x1, 1
  %c2 = icmp eq i32 %y1, 10
  br i1 %c2, label %exit, label %right
right:
  %y2 = add i32 %x1, 1
  call void @sink(i32 %y2)
  br label %exit
exit:
  %y3 = add i32 %x1, 1
  call void @sink(i32 %y3)
  ret void
}
)");
  auto Out = runPass("gvn", Src);
  EXPECT_GE(Out.PR.Rewrites, 1u);
  EXPECT_EQ(Out.VR.countValidated(), 1u) << Out.VR.firstFailure();
  for (int64_t N : {12, 11, 0})
    for (int64_t C : {0, 1})
      expectRefines(Src, Out.PR.Tgt, "pre", {N, C});
}

TEST(GvnValidation, InboundsBugCaught) {
  ir::Module Src = parse(R"(
declare void @bar(ptr, ptr)
define void @gb(ptr %p) {
entry:
  %q1 = gep inbounds ptr %p, i64 2
  %q2 = gep ptr %p, i64 2
  call void @bar(ptr %q1, ptr %q2)
  ret void
}
)");
  // Fixed compiler: inbounds distinguishes the value numbers.
  auto Fixed = runPass("gvn", Src, BugConfig::fixed());
  EXPECT_EQ(Fixed.PR.Rewrites, 0u);
  EXPECT_EQ(Fixed.VR.countValidated(), 1u) << Fixed.VR.firstFailure();
  // Buggy compiler (PR28562): validation catches the miscompilation.
  auto Buggy = runPass("gvn", Src, BugConfig::llvm371());
  EXPECT_GE(Buggy.PR.Rewrites, 1u);
  EXPECT_EQ(Buggy.VR.countFailed(), 1u);
  // ... while differential testing misses it when the index is in bounds
  // at run time (paper §1.2).
  expectRefines(Src, Buggy.PR.Tgt, "gb", {});
}

// --- licm -------------------------------------------------------------------

TEST(LicmValidation, HoistInvariant) {
  ir::Module Src = parse(R"(
declare i1 @cond()
declare void @sink(i32)
define void @li(i32 %a, i32 %b) {
entry:
  br label %header
header:
  %inv = mul i32 %a, %b
  call void @sink(i32 %inv)
  %c = call i1 @cond()
  br i1 %c, label %header, label %done
done:
  ret void
}
)");
  auto Out = runPass("licm", Src);
  EXPECT_EQ(Out.PR.Rewrites, 1u);
  EXPECT_EQ(Out.VR.countValidated(), 1u) << Out.VR.firstFailure();
  expectRefines(Src, Out.PR.Tgt, "li", {3, 4});
}

TEST(LicmValidation, DivisionHoistIsNotSupported) {
  ir::Module Src = parse(R"(
declare i1 @cond()
declare void @sink(i32)
define void @ld(i32 %a) {
entry:
  br label %header
header:
  %inv = sdiv i32 %a, 7
  call void @sink(i32 %inv)
  %c = call i1 @cond()
  br i1 %c, label %header, label %done
done:
  ret void
}
)");
  auto Out = runPass("licm", Src);
  EXPECT_EQ(Out.PR.Rewrites, 1u);
  EXPECT_EQ(Out.VR.countNotSupported(), 1u) << Out.VR.firstFailure();
}

// --- pipeline ----------------------------------------------------------------

TEST(PipelineValidation, O2EndToEnd) {
  ir::Module Src = parse(R"(
declare i1 @cond()
declare void @sink(i32)
define void @all(i32 %a, i32 %b) {
entry:
  %p = alloca i32, 1
  store i32 %a, ptr %p
  br label %header
header:
  %v = load i32, ptr %p
  %inv = mul i32 %a, %b
  %t = add i32 %v, 0
  %u = add i32 %t, %inv
  call void @sink(i32 %u)
  %c = call i1 @cond()
  br i1 %c, label %header, label %done
done:
  ret void
}
)");
  ir::Module Cur = Src;
  for (auto &P : makeO2Pipeline(BugConfig::fixed())) {
    PassResult PR = P->run(Cur, /*GenProof=*/true);
    std::vector<std::string> VErrs;
    ASSERT_TRUE(analysis::verifyModule(PR.Tgt, VErrs))
        << P->name() << ": " << (VErrs.empty() ? "" : VErrs[0]);
    auto VR = checker::validate(Cur, PR.Tgt, PR.Proof);
    EXPECT_EQ(VR.countFailed(), 0u)
        << P->name() << ": " << VR.firstFailure();
    expectRefines(Cur, PR.Tgt, "all", {5, 6});
    Cur = PR.Tgt;
  }
}

} // namespace
