//===- tests/InterpTest.cpp - Operational-semantics unit tests ---------------===//
//
// The reference interpreter is the semantic ground truth for the whole
// reproduction (it plays Vellvm's role), so its treatment of undef,
// poison, traps, memory, simultaneous phi assignment (paper §4) and
// observable traces is tested in detail.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "interp/Ops.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::interp;

namespace {

ir::Module parse(const std::string &Text) {
  std::string Err;
  auto M = ir::parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  return *M;
}

RunResult runFn(const std::string &Body, std::vector<int64_t> Args = {},
                uint64_t Seed = 1) {
  ir::Module M = parse(Body);
  InterpOptions Opts;
  Opts.OracleSeed = Seed;
  return run(M, M.Funcs.back().Name, Args, Opts);
}

// --- Pure operations ----------------------------------------------------------

TEST(Ops, IntegerArithmeticWraps) {
  auto R = evalBinaryOp(ir::Opcode::Add, 8, RtValue::intVal(200, 8),
                        RtValue::intVal(100, 8));
  ASSERT_FALSE(R.Trap);
  EXPECT_EQ(R.V.bits(), (200u + 100u) & 0xff);
}

TEST(Ops, SignedDivisionSemantics) {
  EXPECT_TRUE(evalBinaryOp(ir::Opcode::SDiv, 32, RtValue::intVal(4, 32),
                           RtValue::intVal(0, 32))
                  .Trap);
  EXPECT_TRUE(evalBinaryOp(ir::Opcode::SDiv, 32, RtValue::intVal(4, 32),
                           RtValue::undef())
                  .Trap);
  // INT_MIN / -1 overflows.
  EXPECT_TRUE(evalBinaryOp(ir::Opcode::SDiv, 8, RtValue::intVal(0x80, 8),
                           RtValue::intVal(0xff, 8))
                  .Trap);
  auto R = evalBinaryOp(ir::Opcode::SDiv, 32,
                        RtValue::intVal(static_cast<uint64_t>(-9), 32),
                        RtValue::intVal(2, 32));
  ASSERT_FALSE(R.Trap);
  EXPECT_EQ(R.V.sext(), -4); // C-style truncation toward zero
}

TEST(Ops, UndefAndPoisonPropagation) {
  auto U = evalBinaryOp(ir::Opcode::And, 32, RtValue::undef(),
                        RtValue::intVal(0, 32));
  ASSERT_FALSE(U.Trap);
  EXPECT_TRUE(U.V.isUndef()); // Vellvm-style propagation
  auto P = evalBinaryOp(ir::Opcode::Add, 32, RtValue::poison(),
                        RtValue::undef());
  ASSERT_FALSE(P.Trap);
  EXPECT_TRUE(P.V.isPoison()); // poison wins over undef
}

TEST(Ops, OversizedShiftIsPoison) {
  auto R = evalBinaryOp(ir::Opcode::Shl, 8, RtValue::intVal(1, 8),
                        RtValue::intVal(8, 8));
  ASSERT_FALSE(R.Trap);
  EXPECT_TRUE(R.V.isPoison());
}

TEST(Ops, PointerIntRoundTrip) {
  for (int64_t Block : {0, 1, 7})
    for (int64_t Off : {-2, -1, 0, 1, 5}) {
      auto I = evalCastOp(ir::Opcode::PtrToInt, ir::Type::intTy(64),
                          RtValue::ptrVal(Block, Off));
      ASSERT_FALSE(I.Trap);
      auto P = evalCastOp(ir::Opcode::IntToPtr, ir::Type::ptrTy(), I.V);
      ASSERT_FALSE(P.Trap);
      EXPECT_EQ(P.V.block(), Block) << Block << "+" << Off;
      EXPECT_EQ(P.V.offset(), Off) << Block << "+" << Off;
    }
}

TEST(Ops, PointerDifferenceOfSameGlobalIsZero) {
  auto A = evalCastOp(ir::Opcode::PtrToInt, ir::Type::intTy(32),
                      RtValue::ptrVal(3, 0));
  auto D = evalBinaryOp(ir::Opcode::Sub, 32, A.V, A.V);
  ASSERT_FALSE(D.Trap);
  EXPECT_EQ(D.V.bits(), 0u);
}

TEST(Ops, IcmpSignedness) {
  RtValue MinusOne = RtValue::intVal(static_cast<uint64_t>(-1), 32);
  RtValue One = RtValue::intVal(1, 32);
  EXPECT_EQ(evalIcmpOp(ir::IcmpPred::Slt, MinusOne, One).V.bits(), 1u);
  EXPECT_EQ(evalIcmpOp(ir::IcmpPred::Ult, MinusOne, One).V.bits(), 0u);
  EXPECT_TRUE(evalIcmpOp(ir::IcmpPred::Eq, RtValue::undef(), One)
                  .V.isUndef());
}

// --- Whole-program behaviors ---------------------------------------------------

TEST(Interp, SimpleReturn) {
  auto R = runFn(R"(
define i32 @f(i32 %a) {
entry:
  %x = mul i32 %a, 3
  ret i32 %x
}
)",
                 {7});
  ASSERT_EQ(R.End, Outcome::Returned);
  EXPECT_EQ(R.ReturnValue, RtValue::intVal(21, 32));
}

TEST(Interp, DivisionByZeroIsUB) {
  auto R = runFn(R"(
define i32 @f(i32 %a) {
entry:
  %x = sdiv i32 %a, 0
  ret i32 %x
}
)",
                 {7});
  EXPECT_EQ(R.End, Outcome::UndefBehav);
}

TEST(Interp, BranchOnUndefIsUB) {
  auto R = runFn(R"(
define i32 @f() {
entry:
  br i1 undef, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
)");
  EXPECT_EQ(R.End, Outcome::UndefBehav);
}

TEST(Interp, AllocaLoadStore) {
  auto R = runFn(R"(
define i32 @f(i32 %a) {
entry:
  %p = alloca i32, 2
  %q = gep ptr %p, i64 1
  store i32 %a, ptr %q
  %x = load i32, ptr %q
  ret i32 %x
}
)",
                 {5});
  ASSERT_EQ(R.End, Outcome::Returned);
  EXPECT_EQ(R.ReturnValue, RtValue::intVal(5, 32));
}

TEST(Interp, UninitializedLoadIsUndef) {
  auto R = runFn(R"(
define i32 @f() {
entry:
  %p = alloca i32, 1
  %x = load i32, ptr %p
  ret i32 %x
}
)");
  ASSERT_EQ(R.End, Outcome::Returned);
  EXPECT_TRUE(R.ReturnValue.isUndef());
}

TEST(Interp, OutOfBoundsAccessIsUB) {
  auto R = runFn(R"(
define i32 @f() {
entry:
  %p = alloca i32, 2
  %q = gep ptr %p, i64 5
  %x = load i32, ptr %q
  ret i32 %x
}
)");
  EXPECT_EQ(R.End, Outcome::UndefBehav);
}

TEST(Interp, GepInboundsOutOfRangeIsPoisonNotUB) {
  // The poison only becomes UB when dereferenced; returning it is fine.
  auto R = runFn(R"(
define ptr @f() {
entry:
  %p = alloca i32, 2
  %q = gep inbounds ptr %p, i64 7
  ret ptr %q
}
)");
  ASSERT_EQ(R.End, Outcome::Returned);
  EXPECT_TRUE(R.ReturnValue.isPoison());
}

TEST(Interp, GepInboundsOnePastEndIsDefined) {
  auto R = runFn(R"(
define ptr @f() {
entry:
  %p = alloca i32, 2
  %q = gep inbounds ptr %p, i64 2
  ret ptr %q
}
)");
  ASSERT_EQ(R.End, Outcome::Returned);
  EXPECT_TRUE(R.ReturnValue.isPtr());
}

TEST(Interp, DeadAllocaAccessIsUB) {
  auto R = runFn(R"(
define i32 @leak() {
entry:
  %p = alloca i32, 1
  %x = ptrtoint ptr %p to i64
  %q = inttoptr i64 %x to ptr
  ret i32 0
}
define i32 @f() {
entry:
  %r = call i32 @leak()
  ret i32 %r
}
)");
  EXPECT_EQ(runFn(R"(
define ptr @inner() {
entry:
  %p = alloca i32, 1
  ret ptr %p
}
define i32 @f() {
entry:
  %p = call ptr @inner()
  %x = load i32, ptr %p
  ret i32 %x
}
)")
                .End,
            Outcome::UndefBehav);
  (void)R;
}

TEST(Interp, PhiNodesExecuteSimultaneously) {
  // Paper §4: z and w swap through the loop; w must get the OLD z.
  auto R = runFn(R"(
define i32 @f() {
entry:
  br label %b2
b2:
  %z = phi i32 [ 1, %entry ], [ %w, %b2 ]
  %w = phi i32 [ 2, %entry ], [ %z, %b2 ]
  %i = phi i32 [ 0, %entry ], [ %i2, %b2 ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 3
  br i1 %c, label %b2, label %done
done:
  %d = sub i32 %z, %w
  ret i32 %d
}
)");
  ASSERT_EQ(R.End, Outcome::Returned);
  // After 3 iterations the pair (z, w) has swapped twice: (1,2) -> (2,1)
  // -> (1,2); z - w == -1 or 1 depending on the parity, but never 0.
  EXPECT_NE(R.ReturnValue.sext(), 0);
}

TEST(Interp, SwitchDispatch) {
  const char *Text = R"(
define i32 @f(i32 %v) {
entry:
  switch i32 %v, label %d [1: label %a 2: label %b]
a:
  ret i32 10
b:
  ret i32 20
d:
  ret i32 30
}
)";
  EXPECT_EQ(runFn(Text, {1}).ReturnValue, RtValue::intVal(10, 32));
  EXPECT_EQ(runFn(Text, {2}).ReturnValue, RtValue::intVal(20, 32));
  EXPECT_EQ(runFn(Text, {9}).ReturnValue, RtValue::intVal(30, 32));
}

TEST(Interp, ExternalCallsAreTraceEvents) {
  auto R = runFn(R"(
declare void @sink(i32)
define void @f(i32 %a) {
entry:
  call void @sink(i32 %a)
  call void @sink(i32 7)
  ret void
}
)",
                 {4});
  ASSERT_EQ(R.Trace.size(), 2u);
  EXPECT_EQ(R.Trace[0].Args[0], RtValue::intVal(4, 32));
  EXPECT_EQ(R.Trace[1].Args[0], RtValue::intVal(7, 32));
}

TEST(Interp, OracleIsDeterministicPerSeed) {
  const char *Text = R"(
declare i32 @get()
define i32 @f() {
entry:
  %x = call i32 @get()
  ret i32 %x
}
)";
  auto A = runFn(Text, {}, 3);
  auto B = runFn(Text, {}, 3);
  auto C = runFn(Text, {}, 4);
  EXPECT_EQ(A.ReturnValue, B.ReturnValue);
  // Different seeds usually differ (not guaranteed, but with this seed
  // pair they do — keep the seeds fixed).
  EXPECT_NE(A.ReturnValue, C.ReturnValue);
}

TEST(Interp, InfiniteLoopRunsOutOfFuel) {
  auto R = runFn(R"(
define void @f() {
entry:
  br label %loop
loop:
  br label %loop
}
)");
  EXPECT_EQ(R.End, Outcome::OutOfFuel);
}

TEST(Interp, LifetimeIntrinsicsAreSilent) {
  auto R = runFn(R"(
declare void @llvm.lifetime.start(ptr)
define i32 @f() {
entry:
  %p = alloca i32, 1
  call void @llvm.lifetime.start(ptr %p)
  store i32 3, ptr %p
  %x = load i32, ptr %p
  ret i32 %x
}
)");
  ASSERT_EQ(R.End, Outcome::Returned);
  EXPECT_TRUE(R.Trace.empty());
  EXPECT_EQ(R.ReturnValue, RtValue::intVal(3, 32));
}

// --- Poison and undef propagation --------------------------------------------

TEST(Interp, BranchOnPoisonIsUB) {
  // shl i8 1, 8 is poison (oversized shift); branching on any bit of it
  // is immediate UB, even though the poison itself flowed silently.
  auto R = runFn(R"(
define i32 @f() {
entry:
  %p = shl i8 1, 8
  %c = trunc i8 %p to i1
  br i1 %c, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
)");
  EXPECT_EQ(R.End, Outcome::UndefBehav);
}

TEST(Interp, BranchOnLoadOfUninitializedAllocaIsUB) {
  // The load itself is fine (undef), the branch on it is not.
  auto R = runFn(R"(
define i32 @f() {
entry:
  %p = alloca i32, 1
  %x = load i32, ptr %p
  %c = trunc i32 %x to i1
  br i1 %c, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
)");
  EXPECT_EQ(R.End, Outcome::UndefBehav);
}

TEST(Interp, PoisonPropagatesThroughArithmetic) {
  auto R = runFn(R"(
define i8 @f(i8 %a) {
entry:
  %p = shl i8 1, 8
  %x = add i8 %p, %a
  %y = xor i8 %x, 7
  ret i8 %y
}
)",
                 {3});
  ASSERT_EQ(R.End, Outcome::Returned);
  EXPECT_TRUE(R.ReturnValue.isPoison());
}

TEST(Interp, StoreLoadRoundTripsPoison) {
  // Memory is poison-transparent: storing and reloading poison neither
  // traps nor launders the value into something defined.
  auto R = runFn(R"(
define i8 @f() {
entry:
  %m = alloca i8, 1
  %p = shl i8 1, 8
  store i8 %p, ptr %m
  %x = load i8, ptr %m
  ret i8 %x
}
)");
  ASSERT_EQ(R.End, Outcome::Returned);
  EXPECT_TRUE(R.ReturnValue.isPoison());
}

TEST(Interp, UndefFromUninitializedAllocaStaysUndefThroughArithmetic) {
  auto R = runFn(R"(
define i32 @f() {
entry:
  %p = alloca i32, 1
  %x = load i32, ptr %p
  %y = add i32 %x, 1
  ret i32 %y
}
)");
  ASSERT_EQ(R.End, Outcome::Returned);
  EXPECT_TRUE(R.ReturnValue.isUndef());
  EXPECT_FALSE(R.ReturnValue.isPoison()); // undef must not escalate
}

// --- Refinement ------------------------------------------------------------------

TEST(Refines, UndefRefinesToAnything) {
  RunResult S, T;
  S.End = T.End = Outcome::Returned;
  S.ReturnValue = RtValue::undef();
  T.ReturnValue = RtValue::intVal(42, 32);
  EXPECT_TRUE(refines(S, T));
  EXPECT_FALSE(refines(T, S));
}

TEST(Refines, TraceMismatchBreaksRefinement) {
  RunResult S, T;
  S.End = T.End = Outcome::Returned;
  Event E1{"f", {RtValue::intVal(1, 32)}, RtValue::undef()};
  Event E2{"f", {RtValue::intVal(2, 32)}, RtValue::undef()};
  S.Trace = {E1};
  T.Trace = {E2};
  EXPECT_FALSE(refines(S, T));
  T.Trace = {E1};
  EXPECT_TRUE(refines(S, T));
}

TEST(Refines, SourceUBAllowsAnythingAfterItsTrace) {
  RunResult S, T;
  S.End = Outcome::UndefBehav;
  Event E{"f", {RtValue::intVal(1, 32)}, RtValue::undef()};
  S.Trace = {E};
  T.End = Outcome::Returned;
  T.Trace = {E, E, E};
  EXPECT_TRUE(refines(S, T));
  // ... but the target must still exhibit the prefix.
  T.Trace = {};
  EXPECT_FALSE(refines(S, T));
}

TEST(Refines, PoisonEventArgRefinesAnyConcreteArg) {
  RunResult S, T;
  S.End = T.End = Outcome::Returned;
  Event SP{"f", {RtValue::poison()}, RtValue::undef()};
  Event TC{"f", {RtValue::intVal(9, 32)}, RtValue::undef()};
  S.Trace = {SP};
  T.Trace = {TC};
  EXPECT_TRUE(refines(S, T));
  // A concrete source argument pins the target's.
  EXPECT_FALSE(refines(T, S));
}

TEST(Refines, TargetTrapWhereSourceReturnsIsRejected) {
  RunResult S, T;
  S.End = Outcome::Returned;
  T.End = Outcome::UndefBehav;
  EXPECT_FALSE(refines(S, T));
}

} // namespace
