//===- tests/PassEdgeCasesTest.cpp - Pass corner cases -------------------------===//
//
// Edge cases per pass: promotability boundaries and chained promotions
// for mem2reg, value-numbering shapes and PRE insertion for gvn, nested
// loops and hoist chains for licm, and pipeline fixpoints for
// instcombine.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "checker/Validator.h"
#include "interp/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "passes/InstCombine.h"
#include "passes/Pipeline.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::passes;

namespace {

ir::Module parse(const std::string &Text) {
  std::string Err;
  auto M = ir::parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  std::vector<std::string> VErrs;
  EXPECT_TRUE(analysis::verifyModule(*M, VErrs))
      << (VErrs.empty() ? "" : VErrs[0]);
  return *M;
}

struct Outcome {
  PassResult PR;
  checker::ModuleResult VR;
};

Outcome runValidated(const std::string &PassName, const ir::Module &Src,
                     const BugConfig &Bugs = BugConfig::fixed()) {
  auto P = makePass(PassName, Bugs);
  Outcome O;
  O.PR = P->run(Src, true);
  std::vector<std::string> VErrs;
  EXPECT_TRUE(analysis::verifyModule(O.PR.Tgt, VErrs))
      << PassName << ": " << (VErrs.empty() ? "" : VErrs[0]) << "\n"
      << ir::printModule(O.PR.Tgt);
  O.VR = checker::validate(Src, O.PR.Tgt, O.PR.Proof);
  return O;
}

void expectRefines(const ir::Module &Src, const ir::Module &Tgt) {
  for (const ir::Function &F : Src.Funcs)
    for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
      interp::InterpOptions Opts;
      Opts.OracleSeed = Seed;
      auto RS = interp::run(Src, F.Name, {3, 5, 1}, Opts);
      auto RT = interp::run(Tgt, F.Name, {3, 5, 1}, Opts);
      EXPECT_TRUE(interp::refines(RS, RT)) << "@" << F.Name;
    }
}

// --- mem2reg -------------------------------------------------------------------

TEST(Mem2RegEdge, EscapedPointerIsNotPromoted) {
  ir::Module Src = parse(R"(
declare void @takes(ptr)
define void @f() {
entry:
  %p = alloca i32, 1
  store i32 1, ptr %p
  call void @takes(ptr %p)
  ret void
}
)");
  auto O = runValidated("mem2reg", Src);
  EXPECT_EQ(O.PR.Rewrites, 0u);
  EXPECT_EQ(O.VR.countValidated(), 1u) << O.VR.firstFailure();
  EXPECT_NE(ir::printModule(O.PR.Tgt).find("alloca"), std::string::npos);
}

TEST(Mem2RegEdge, MultiCellAllocaIsNotPromoted) {
  ir::Module Src = parse(R"(
define i32 @f() {
entry:
  %p = alloca i32, 4
  store i32 1, ptr %p
  %x = load i32, ptr %p
  ret i32 %x
}
)");
  auto O = runValidated("mem2reg", Src);
  EXPECT_EQ(O.PR.Rewrites, 0u);
  EXPECT_EQ(O.VR.countValidated(), 1u) << O.VR.firstFailure();
}

TEST(Mem2RegEdge, NonEntryAllocaIsNotPromoted) {
  ir::Module Src = parse(R"(
define i32 @f() {
entry:
  br label %next
next:
  %p = alloca i32, 1
  store i32 1, ptr %p
  %x = load i32, ptr %p
  ret i32 %x
}
)");
  auto O = runValidated("mem2reg", Src);
  EXPECT_EQ(O.PR.Rewrites, 0u);
  EXPECT_EQ(O.VR.countValidated(), 1u) << O.VR.firstFailure();
}

TEST(Mem2RegEdge, ChainedPromotionThroughStoredLoad) {
  // p2 stores the value loaded from p1: the second promotion's hints must
  // route through the first one's ghost (the LoadGhosts machinery).
  ir::Module Src = parse(R"(
declare void @sink(i32)
define void @f(i32 %a) {
entry:
  %p1 = alloca i32, 1
  %p2 = alloca i32, 1
  store i32 %a, ptr %p1
  %v1 = load i32, ptr %p1
  store i32 %v1, ptr %p2
  %v2 = load i32, ptr %p2
  call void @sink(i32 %v2)
  ret void
}
)");
  auto O = runValidated("mem2reg", Src);
  EXPECT_EQ(O.PR.Rewrites, 2u);
  EXPECT_EQ(O.VR.countValidated(), 1u) << O.VR.firstFailure();
  EXPECT_EQ(ir::printModule(O.PR.Tgt).find("alloca"), std::string::npos);
  expectRefines(Src, O.PR.Tgt);
}

TEST(Mem2RegEdge, OtherMemoryTrafficSurvivesPromotion) {
  ir::Module Src = parse(R"(
@G = global i32, 1
declare void @sink(i32)
define void @f(i32 %a) {
entry:
  %p = alloca i32, 1
  store i32 %a, ptr %p
  store i32 7, ptr @G
  %v = load i32, ptr %p
  %g = load i32, ptr @G
  call void @sink(i32 %v)
  call void @sink(i32 %g)
  ret void
}
)");
  auto O = runValidated("mem2reg", Src);
  EXPECT_EQ(O.PR.Rewrites, 1u);
  EXPECT_EQ(O.VR.countValidated(), 1u) << O.VR.firstFailure();
  // The global store/load pair is untouched.
  EXPECT_NE(ir::printModule(O.PR.Tgt).find("store i32 7, ptr @G"),
            std::string::npos);
  expectRefines(Src, O.PR.Tgt);
}

TEST(Mem2RegEdge, DiamondWithStoresInBothBranches) {
  ir::Module Src = parse(R"(
declare void @sink(i32)
define void @f(i1 %c, i32 %a, i32 %b) {
entry:
  %p = alloca i32, 1
  br i1 %c, label %l, label %r
l:
  store i32 %a, ptr %p
  br label %j
r:
  store i32 %b, ptr %p
  br label %j
j:
  %v = load i32, ptr %p
  call void @sink(i32 %v)
  ret void
}
)");
  auto O = runValidated("mem2reg", Src);
  EXPECT_EQ(O.PR.Rewrites, 1u);
  EXPECT_EQ(O.VR.countValidated(), 1u) << O.VR.firstFailure();
  // A phi was inserted at the join.
  EXPECT_NE(ir::printModule(O.PR.Tgt).find("phi"), std::string::npos);
  expectRefines(Src, O.PR.Tgt);
}

TEST(Mem2RegEdge, LifetimeIntrinsicsMakeTheFunctionNS) {
  ir::Module Src = parse(R"(
declare void @llvm.lifetime.start(ptr)
declare void @llvm.lifetime.end(ptr)
declare void @sink(i32)
define void @f(i32 %a) {
entry:
  %p = alloca i32, 1
  call void @llvm.lifetime.start(ptr %p)
  store i32 %a, ptr %p
  %v = load i32, ptr %p
  call void @sink(i32 %v)
  call void @llvm.lifetime.end(ptr %p)
  ret void
}
)");
  auto O = runValidated("mem2reg", Src);
  EXPECT_EQ(O.PR.Rewrites, 1u); // promoted anyway
  EXPECT_EQ(O.VR.countNotSupported(), 1u);
  expectRefines(Src, O.PR.Tgt);
}

// --- gvn ------------------------------------------------------------------------

TEST(GvnEdge, NumbersIcmpSelectAndCasts) {
  ir::Module Src = parse(R"(
declare void @sink(i32)
define void @f(i32 %a, i32 %b) {
entry:
  %c1 = icmp slt i32 %a, %b
  %s1 = select i1 %c1, i32 %a, %b
  %c2 = icmp slt i32 %a, %b
  %s2 = select i1 %c2, i32 %a, %b
  %z1 = zext i32 %a to i64
  %z2 = zext i32 %a to i64
  %t = trunc i64 %z2 to i32
  call void @sink(i32 %s1)
  call void @sink(i32 %s2)
  call void @sink(i32 %t)
  ret void
}
)");
  auto O = runValidated("gvn", Src);
  // c2 and z2 merge; s2 and t have replaced operands and wait for the
  // next pipeline round (one merge per chain per run).
  EXPECT_EQ(O.PR.Rewrites, 2u);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
  expectRefines(Src, O.PR.Tgt);
}

TEST(GvnEdge, NoMergeAcrossNonDominatingBlocks) {
  ir::Module Src = parse(R"(
declare void @sink(i32)
define void @f(i1 %c, i32 %a) {
entry:
  br i1 %c, label %l, label %r
l:
  %x1 = mul i32 %a, 3
  call void @sink(i32 %x1)
  br label %j
r:
  %x2 = mul i32 %a, 3
  call void @sink(i32 %x2)
  br label %j
j:
  ret void
}
)");
  // Neither branch dominates the other; full redundancy cannot fire, and
  // the join has no redundant instruction to PRE.
  auto O = runValidated("gvn", Src);
  EXPECT_EQ(O.PR.Rewrites, 0u);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
}

TEST(GvnEdge, PREInsertsIntoTheMissingPredecessor) {
  ir::Module Src = parse(R"(
declare void @sink(i32)
define void @f(i1 %c, i32 %a, i32 %b) {
entry:
  br i1 %c, label %l, label %r
l:
  %x1 = mul i32 %a, %b
  call void @sink(i32 %x1)
  br label %j
r:
  br label %j
j:
  %x3 = mul i32 %a, %b
  call void @sink(i32 %x3)
  ret void
}
)");
  auto O = runValidated("gvn", Src);
  EXPECT_EQ(O.PR.Rewrites, 1u);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
  // The expression moved into %r and a phi appeared at %j.
  std::string T = ir::printModule(O.PR.Tgt);
  EXPECT_NE(T.find("phi"), std::string::npos);
  expectRefines(Src, O.PR.Tgt);
}

TEST(GvnEdge, LeaderInSameBlock) {
  ir::Module Src = parse(R"(
declare void @sink(i32)
define void @f(i32 %a) {
entry:
  %x = add i32 %a, %a
  %y = add i32 %a, %a
  call void @sink(i32 %x)
  call void @sink(i32 %y)
  ret void
}
)");
  auto O = runValidated("gvn", Src);
  EXPECT_EQ(O.PR.Rewrites, 1u);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
  expectRefines(Src, O.PR.Tgt);
}

TEST(GvnEdge, CallsAndLoadsAreNotNumbered) {
  // processLoad is outside the paper's coverage (alias analysis); calls
  // are side-effecting.
  ir::Module Src = parse(R"(
@G = global i32, 1
declare i32 @get()
declare void @sink(i32)
define void @f() {
entry:
  %x1 = call i32 @get()
  %x2 = call i32 @get()
  %l1 = load i32, ptr @G
  %l2 = load i32, ptr @G
  call void @sink(i32 %x1)
  call void @sink(i32 %x2)
  call void @sink(i32 %l1)
  call void @sink(i32 %l2)
  ret void
}
)");
  auto O = runValidated("gvn", Src);
  EXPECT_EQ(O.PR.Rewrites, 0u);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
}

// --- licm -----------------------------------------------------------------------

TEST(LicmEdge, HoistsDependentChains) {
  ir::Module Src = parse(R"(
declare i1 @cond()
declare void @sink(i32)
define void @f(i32 %a, i32 %b) {
entry:
  br label %h
h:
  %x = mul i32 %a, %b
  %y = add i32 %x, 7
  call void @sink(i32 %y)
  %c = call i1 @cond()
  br i1 %c, label %h, label %done
done:
  ret void
}
)");
  auto O = runValidated("licm", Src);
  EXPECT_EQ(O.PR.Rewrites, 2u);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
  // Both now sit in the entry block.
  const ir::Function *F = O.PR.Tgt.getFunction("f");
  EXPECT_EQ(F->Blocks[0].Insts.size(), 3u); // mul, add, br
  expectRefines(Src, O.PR.Tgt);
}

TEST(LicmEdge, SkipsLoopVaryingValues) {
  ir::Module Src = parse(R"(
declare i1 @cond()
declare i32 @get()
declare void @sink(i32)
define void @f(i32 %a) {
entry:
  br label %h
h:
  %v = call i32 @get()
  %x = mul i32 %v, %a
  call void @sink(i32 %x)
  %c = call i1 @cond()
  br i1 %c, label %h, label %done
done:
  ret void
}
)");
  auto O = runValidated("licm", Src);
  EXPECT_EQ(O.PR.Rewrites, 0u);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
}

TEST(LicmEdge, SkipsBlocksNotDominatingTheLatch) {
  ir::Module Src = parse(R"(
declare i1 @cond()
declare void @sink(i32)
define void @f(i32 %a, i32 %b) {
entry:
  br label %h
h:
  %c1 = call i1 @cond()
  br i1 %c1, label %maybe, label %latch
maybe:
  %x = mul i32 %a, %b
  call void @sink(i32 %x)
  br label %latch
latch:
  %c2 = call i1 @cond()
  br i1 %c2, label %h, label %done
done:
  ret void
}
)");
  // %maybe does not dominate the latch: hoisting x would compute it on
  // iterations where the source does not (our conservative criterion).
  auto O = runValidated("licm", Src);
  EXPECT_EQ(O.PR.Rewrites, 0u);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
}

TEST(LicmEdge, NestedLoopsHoistToInnerPreheader) {
  ir::Module Src = parse(R"(
declare i1 @cond()
declare void @sink(i32)
define void @f(i32 %a, i32 %b) {
entry:
  br label %oh
oh:
  %vo = call i1 @cond()
  br i1 %vo, label %ipre, label %done
ipre:
  br label %ih
ih:
  %x = mul i32 %a, %b
  call void @sink(i32 %x)
  %vi = call i1 @cond()
  br i1 %vi, label %ih, label %oh_latch
oh_latch:
  br label %oh
done:
  ret void
}
)");
  auto O = runValidated("licm", Src);
  EXPECT_GE(O.PR.Rewrites, 1u);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
  // x is invariant for the *outer* loop too and its block dominates the
  // outer latch, so it hoists all the way to the function entry.
  const ir::Function *F = O.PR.Tgt.getFunction("f");
  EXPECT_EQ(F->Blocks[0].Insts.size(), 2u); // mul + br
  expectRefines(Src, O.PR.Tgt);
}

// --- fold-phi (paper §4) -------------------------------------------------------------

TEST(FoldPhiEdge, SinksAdditionBelowLoopPhi) {
  // The §4 running example, through the pass: z's new value depends on
  // its old value across the back edge.
  ir::Module Src = parse(R"(
declare i1 @cond()
declare void @sink(i32)
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  br label %header
header:
  %z = phi i32 [ %x, %entry ], [ %y, %latch ]
  %c = call i1 @cond()
  br i1 %c, label %latch, label %done
latch:
  %y = add i32 %z, 1
  br label %header
done:
  call void @sink(i32 %z)
  ret i32 %z
}
)");
  InstCombine IC{BugConfig::fixed()};
  PassResult PR = IC.run(Src, true);
  auto It = IC.rewriteCounts().find("fold-phi-bin-const");
  ASSERT_TRUE(It != IC.rewriteCounts().end() && It->second == 1)
      << ir::printModule(PR.Tgt);
  std::vector<std::string> VErrs;
  EXPECT_TRUE(analysis::verifyModule(PR.Tgt, VErrs))
      << (VErrs.empty() ? "" : VErrs[0]) << "\n" << ir::printModule(PR.Tgt);
  EXPECT_EQ(checker::validate(Src, PR.Tgt, PR.Proof).countFailed(), 0u)
      << checker::validate(Src, PR.Tgt, PR.Proof).firstFailure();
  // The phi now merges the *operands*; z is computed by a block command.
  std::string Out = ir::printModule(PR.Tgt);
  EXPECT_NE(Out.find("%z = add i32 %z.fphi, 1"), std::string::npos) << Out;
  expectRefines(Src, PR.Tgt);
}

TEST(FoldPhiEdge, MultiUseIncomingValueBlocksTheFold) {
  // %x1 feeds both the phi and the sink: folding would recompute it.
  ir::Module Src = parse(R"(
declare void @sink(i32)
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  br i1 %c, label %l, label %m
l:
  %x1 = add i32 %a, 7
  call void @sink(i32 %x1)
  br label %join
m:
  %x2 = add i32 %b, 7
  br label %join
join:
  %r = phi i32 [ %x1, %l ], [ %x2, %m ]
  ret i32 %r
}
)");
  InstCombine IC{BugConfig::fixed()};
  PassResult PR = IC.run(Src, true);
  EXPECT_FALSE(IC.rewriteCounts().count("fold-phi-bin-const"));
  EXPECT_EQ(checker::validate(Src, PR.Tgt, PR.Proof).countFailed(), 0u);
}

TEST(FoldPhiEdge, MismatchedConstantsBlockTheFold) {
  ir::Module Src = parse(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  br i1 %c, label %l, label %m
l:
  %x1 = add i32 %a, 7
  br label %join
m:
  %x2 = add i32 %b, 8
  br label %join
join:
  %r = phi i32 [ %x1, %l ], [ %x2, %m ]
  ret i32 %r
}
)");
  InstCombine IC{BugConfig::fixed()};
  PassResult PR = IC.run(Src, true);
  EXPECT_FALSE(IC.rewriteCounts().count("fold-phi-bin-const"));
  EXPECT_EQ(checker::validate(Src, PR.Tgt, PR.Proof).countFailed(), 0u);
}

TEST(FoldPhiEdge, TrappingOperatorIsNeverSunk) {
  // Sinking an sdiv below the phi would speculate it on paths where the
  // source never executed a division.
  ir::Module Src = parse(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  br i1 %c, label %l, label %m
l:
  %x1 = sdiv i32 %a, 4
  br label %join
m:
  %x2 = sdiv i32 %b, 4
  br label %join
join:
  %r = phi i32 [ %x1, %l ], [ %x2, %m ]
  ret i32 %r
}
)");
  InstCombine IC{BugConfig::fixed()};
  PassResult PR = IC.run(Src, true);
  EXPECT_FALSE(IC.rewriteCounts().count("fold-phi-bin-const"));
  EXPECT_EQ(checker::validate(Src, PR.Tgt, PR.Proof).countFailed(), 0u);
}

TEST(FoldPhiEdge, ThreeWayPhiFoldsAllEdges) {
  ir::Module Src = parse(R"(
declare void @sink(i32)
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  br i1 %c, label %l, label %m
l:
  %x1 = xor i32 %a, 12
  br label %join
m:
  %c2 = icmp eq i32 %a, %b
  br i1 %c2, label %n, label %join2
n:
  %x2 = xor i32 %b, 12
  br label %join
join2:
  %x3 = xor i32 %a, 12
  br label %join
join:
  %r = phi i32 [ %x1, %l ], [ %x2, %n ], [ %x3, %join2 ]
  ret i32 %r
}
)");
  InstCombine IC{BugConfig::fixed()};
  PassResult PR = IC.run(Src, true);
  auto It = IC.rewriteCounts().find("fold-phi-bin-const");
  ASSERT_TRUE(It != IC.rewriteCounts().end() && It->second == 1)
      << ir::printModule(PR.Tgt);
  EXPECT_EQ(checker::validate(Src, PR.Tgt, PR.Proof).countFailed(), 0u)
      << checker::validate(Src, PR.Tgt, PR.Proof).firstFailure();
  expectRefines(Src, PR.Tgt);
}

// --- switch terminators --------------------------------------------------------------

TEST(SwitchEdge, FoldPhiAcrossSwitchEdges) {
  // The phi's predecessors arrive through a switch, not branches; the
  // per-edge ghost bindings must name the right incoming blocks.
  ir::Module Src = parse(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  switch i32 %a, label %dflt [0: label %c0 1: label %c1]
c0:
  %x0 = add i32 %a, 9
  br label %join
c1:
  %x1 = add i32 %b, 9
  br label %join
dflt:
  %x2 = add i32 %b, 9
  br label %join
join:
  %r = phi i32 [ %x0, %c0 ], [ %x1, %c1 ], [ %x2, %dflt ]
  ret i32 %r
}
)");
  InstCombine IC{BugConfig::fixed()};
  PassResult PR = IC.run(Src, true);
  ASSERT_TRUE(IC.rewriteCounts().count("fold-phi-bin-const"));
  EXPECT_EQ(checker::validate(Src, PR.Tgt, PR.Proof).countFailed(), 0u)
      << checker::validate(Src, PR.Tgt, PR.Proof).firstFailure();
  expectRefines(Src, PR.Tgt);
}

TEST(SwitchEdge, GvnMergesAcrossSwitch) {
  // The same expression computed before and after a switch: full
  // redundancy elimination across the multi-way terminator.
  ir::Module Src = parse(R"(
declare void @sink(i32)
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  switch i32 %a, label %dflt [0: label %c0]
c0:
  %y = add i32 %a, %b
  call void @sink(i32 %y)
  br label %dflt
dflt:
  ret i32 %x
}
)");
  auto O = runValidated("gvn", Src);
  EXPECT_GT(O.PR.Rewrites, 0u);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
  expectRefines(Src, O.PR.Tgt);
}

TEST(SwitchEdge, Mem2RegPromotesThroughSwitch) {
  // A store reaching loads through every switch edge must promote to the
  // same phi web a diamond would produce.
  ir::Module Src = parse(R"(
declare void @sink(i32)
define i32 @f(i32 %a) {
entry:
  %p = alloca i32, 1
  store i32 %a, ptr %p
  switch i32 %a, label %dflt [3: label %c0]
c0:
  store i32 7, ptr %p
  br label %dflt
dflt:
  %v = load i32, ptr %p
  ret i32 %v
}
)");
  auto O = runValidated("mem2reg", Src);
  EXPECT_GT(O.PR.Rewrites, 0u);
  EXPECT_EQ(O.VR.countFailed(), 0u) << O.VR.firstFailure();
  EXPECT_EQ(ir::printModule(O.PR.Tgt).find("alloca"), std::string::npos);
  expectRefines(Src, O.PR.Tgt);
}

TEST(SwitchEdge, PipelineOverSwitchHeavyModuleValidates) {
  ir::Module Src = parse(R"(
declare void @sink(i32)
define i32 @f(i32 %a, i32 %b) {
entry:
  %q = alloca i32, 1
  store i32 %b, ptr %q
  switch i32 %a, label %d [0: label %z 5: label %o]
z:
  %vz = load i32, ptr %q
  %xz = add i32 %vz, 0
  br label %d
o:
  %xo = mul i32 %b, 1
  br label %d
d:
  %m = phi i32 [ %xz, %z ], [ %xo, %o ], [ %b, %entry ]
  call void @sink(i32 %m)
  ret i32 %m
}
)");
  ir::Module Cur = Src;
  for (auto &P : makeO2Pipeline(BugConfig::fixed())) {
    PassResult PR = P->run(Cur, true);
    auto VR = checker::validate(Cur, PR.Tgt, PR.Proof);
    EXPECT_EQ(VR.countFailed(), 0u) << P->name() << ": " << VR.firstFailure();
    Cur = PR.Tgt;
  }
  expectRefines(Src, Cur);
}

// --- pipeline fixpoints -------------------------------------------------------------

TEST(PipelineEdge, CommCanonicalizationFeedsTheNextRound) {
  // Round 1 moves the constant right; round 2 strength-reduces to shl.
  ir::Module Src = parse(R"(
declare void @sink(i32)
define void @f(i32 %a) {
entry:
  %y = mul i32 4, %a
  call void @sink(i32 %y)
  ret void
}
)");
  InstCombine First{BugConfig::fixed()};
  PassResult R1 = First.run(Src, true);
  ASSERT_TRUE(First.rewriteCounts().count("comm-canonicalize"));
  EXPECT_EQ(checker::validate(Src, R1.Tgt, R1.Proof).countFailed(), 0u);
  InstCombine Second{BugConfig::fixed()};
  PassResult R2 = Second.run(R1.Tgt, true);
  ASSERT_TRUE(Second.rewriteCounts().count("mul-shl"));
  EXPECT_EQ(checker::validate(R1.Tgt, R2.Tgt, R2.Proof).countFailed(), 0u);
  EXPECT_NE(ir::printModule(R2.Tgt).find("shl i32 %a, 2"),
            std::string::npos);
  expectRefines(Src, R2.Tgt);
}

TEST(PipelineEdge, SecondInstcombineRoundCatchesChains) {
  // The first round folds y; the second folds the now-exposed z.
  ir::Module Src = parse(R"(
declare void @sink(i32)
define void @f(i32 %a) {
entry:
  %y = add i32 %a, 0
  %z = add i32 %y, 0
  call void @sink(i32 %z)
  ret void
}
)");
  InstCombine First{BugConfig::fixed()};
  PassResult R1 = First.run(Src, true);
  EXPECT_EQ(checker::validate(Src, R1.Tgt, R1.Proof).countFailed(), 0u);
  InstCombine Second{BugConfig::fixed()};
  PassResult R2 = Second.run(R1.Tgt, true);
  EXPECT_EQ(checker::validate(R1.Tgt, R2.Tgt, R2.Proof).countFailed(), 0u);
  EXPECT_GE(R1.Rewrites + R2.Rewrites, 2u);
  // Fully folded: sink receives %a directly.
  EXPECT_NE(ir::printModule(R2.Tgt).find("call void @sink(i32 %a)"),
            std::string::npos);
}

} // namespace
