//===- tests/RuleVerificationTest.cpp - Rule soundness ----------------------===//
//
// The reproduction's substitute for the paper's Coq verification of the
// installed inference rules (DESIGN.md §2): every rule is exercised on
// random states and every conclusion checked semantically. Exactly one
// rule — the deliberately installed constexpr_no_ub (PR33673) — must be
// refuted.
//
//===----------------------------------------------------------------------===//

#include "erhl/RuleTester.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::erhl;

namespace {

class RuleSoundness : public ::testing::TestWithParam<uint16_t> {};

TEST_P(RuleSoundness, EveryInstalledRuleIsSoundExceptConstexprNoUb) {
  auto K = static_cast<InfruleKind>(GetParam());
  RuleVerdict V = verifyRule(K, /*Seed=*/0x5eed, /*Instances=*/600);
  // The builders must actually fire the rule often enough to be a test.
  EXPECT_GT(V.Applied, 50u) << infruleKindName(K) << " barely exercised";
  if (K == InfruleKind::ConstexprNoUb) {
    EXPECT_GT(V.Violations, 0u)
        << "the PR33673 rule must be refuted (paper §1)";
  } else {
    EXPECT_EQ(V.Violations, 0u)
        << infruleKindName(K) << ": " << V.FirstCounterexample;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, RuleSoundness,
    ::testing::Range<uint16_t>(0, NumInfruleKinds),
    [](const ::testing::TestParamInfo<uint16_t> &Info) {
      std::string Name =
          infruleKindName(static_cast<InfruleKind>(Info.param));
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
