//===- tests/SuperviseTest.cpp - Member supervisor tests ------------------===//
//
// The self-healing layer (DESIGN.md §18), tested over real fork/exec'd
// crellvm-served members:
//
//   Supervise.RestartAfterSigkill        process death is reaped and the
//                                        member respawned + re-admitted
//   Supervise.FlapQuarantine*            a member that can never start
//                                        exhausts its restart budget and
//                                        is quarantined with a named
//                                        reason, while the healthy
//                                        member keeps serving
//   Supervise.SpawnChaosSite*            sup.spawn chaos counts as a
//                                        spawn failure and is retried
//   Supervise.HungMember*                SIGSTOP (alive socket, no
//                                        answers) is convicted by missed
//                                        pings, SIGKILLed and restarted
//                                        mid-load with zero
//                                        accepted-request loss
//   Supervise.DeepPing*                  the router's deep ping reports
//                                        a stopped member down within
//                                        the deadline
//
// Suite names all contain "Supervise" so the TSan sweep in ci.yml picks
// the whole file up.
//
//===----------------------------------------------------------------------===//

#include "supervise/Supervisor.h"

#include "cluster/Router.h"
#include "server/HealthProbe.h"
#include "support/FaultInjection.h"

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

using namespace crellvm;
using namespace crellvm::supervise;
using server::Request;
using server::RequestKind;
using server::Response;
using server::ResponseStatus;

namespace {

std::string testSocket(const char *Tag, const std::string &Id) {
  std::string S = "/tmp/crellvm-sup-test-" + std::to_string(::getpid()) +
                  "-" + Tag + "-" + Id + ".sock";
  ::unlink(S.c_str());
  return S;
}

MemberSpec servedMember(const char *Tag, const std::string &Id) {
  MemberSpec M;
  M.Id = Id;
  M.SocketPath = testSocket(Tag, Id);
  M.Argv = {CRELLVM_SERVED_BIN, "--socket", M.SocketPath,
            "--member-id", Id, "--jobs", "2"};
  return M;
}

/// Fast supervision knobs: quick probes, generous ready budget (a cold
/// crellvm-served start on a loaded CI box takes a moment).
SupervisorOptions fastSup(std::vector<MemberSpec> Members) {
  SupervisorOptions O;
  O.Members = std::move(Members);
  O.ProbeIntervalMs = 25;
  O.ProbeDeadlineMs = 250;
  O.HangAfterMissedPings = 3;
  O.RestartBudget = 5;
  O.RestartWindowMs = 60000;
  O.BackoffBaseMs = 10;
  O.BackoffCapMs = 100;
  O.ReadyTimeoutMs = 30000;
  return O;
}

bool waitUntil(const std::function<bool()> &Pred, int Seconds = 30) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(Seconds);
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Pred();
}

Request validateSeed(uint64_t Seed, int64_t Id) {
  Request R;
  R.Kind = RequestKind::Validate;
  R.Id = Id;
  R.HasSeed = true;
  R.Seed = Seed;
  return R;
}

/// Collects asynchronous router responses with a bounded wait.
struct Collector {
  std::mutex M;
  std::condition_variable Cv;
  std::vector<Response> Rsps;

  cluster::ClusterRouter::Callback callback() {
    return [this](Response R) {
      std::lock_guard<std::mutex> L(M);
      Rsps.push_back(std::move(R));
      Cv.notify_all();
    };
  }

  bool waitFor(size_t N, int Seconds = 120) {
    std::unique_lock<std::mutex> L(M);
    return Cv.wait_for(L, std::chrono::seconds(Seconds),
                       [&] { return Rsps.size() >= N; });
  }
};

const json::Value *memberEntry(const json::Value &SupStats,
                               const std::string &Id) {
  const json::Value *Members = SupStats.find("members");
  if (!Members || Members->kind() != json::Value::Kind::Array)
    return nullptr;
  for (size_t I = 0; I != Members->size(); ++I) {
    const json::Value &E = Members->at(I);
    const json::Value *MId = E.find("member_id");
    if (MId && MId->kind() == json::Value::Kind::String &&
        MId->getString() == Id)
      return &E;
  }
  return nullptr;
}

} // namespace

TEST(Supervise, RestartAfterSigkillReadmitsWithNewPid) {
  MemberSupervisor Sup(fastSup(
      {servedMember("kill", "s0"), servedMember("kill", "s1")}));
  std::string Err;
  ASSERT_TRUE(Sup.start(&Err)) << Err;
  ASSERT_TRUE(waitUntil([&] { return Sup.admitted("s0") && Sup.admitted("s1"); }))
      << "both members must turn ready";

  pid_t Old = Sup.pidOf("s0");
  ASSERT_GT(Old, 0);
  ASSERT_EQ(::kill(Old, SIGKILL), 0);

  EXPECT_TRUE(waitUntil([&] {
    pid_t Now = Sup.pidOf("s0");
    return Now > 0 && Now != Old && Sup.admitted("s0");
  })) << "the killed member must be respawned and re-admitted";

  SupervisorCounters C = Sup.counters();
  EXPECT_GE(C.ProcessDeaths, 1u);
  EXPECT_GE(C.Restarts, 1u);
  EXPECT_GE(C.Spawns, 3u); // two initial spawns + at least one respawn
  EXPECT_EQ(C.FlapQuarantines, 0u);
  Sup.stop();
}

TEST(Supervise, FlapQuarantineNamesReasonAndSparesHealthyMember) {
  // One healthy member and one that can never start: crellvm-served
  // rejects the unknown flag with exit 2 immediately, so every spawn
  // "dies" at once and the restart budget drains fast.
  MemberSpec Bad;
  Bad.Id = "flappy";
  Bad.SocketPath = testSocket("flap", "flappy");
  Bad.Argv = {CRELLVM_SERVED_BIN, "--definitely-not-a-flag"};

  SupervisorOptions O =
      fastSup({servedMember("flap", "good"), Bad});
  O.RestartBudget = 2;
  MemberSupervisor Sup(O);
  std::string Err;
  ASSERT_TRUE(Sup.start(&Err)) << Err; // the good member carries readiness

  ASSERT_TRUE(waitUntil([&] { return Sup.counters().FlapQuarantines >= 1; }))
      << "the flapping member must exhaust its budget";
  EXPECT_TRUE(waitUntil([&] { return Sup.admitted("good"); }));
  EXPECT_FALSE(Sup.admitted("flappy"));

  json::Value Stats = Sup.statsJson();
  const json::Value *E = memberEntry(Stats, "flappy");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->get("state").getString(), "quarantined");
  std::string Reason = E->get("quarantine_reason").getString();
  EXPECT_NE(Reason.find("flap:"), std::string::npos) << Reason;
  EXPECT_NE(Reason.find("budget"), std::string::npos) << Reason;

  // Quarantine is permanent: counters stop moving for the flapper.
  SupervisorCounters C1 = Sup.counters();
  EXPECT_EQ(C1.FlapQuarantines, 1u);
  Sup.stop();
}

TEST(Supervise, SpawnChaosSiteCountsAsSpawnFailureAndIsRetried) {
  ASSERT_TRUE(fault::configure("sup.spawn:at=1"));
  MemberSupervisor Sup(fastSup({servedMember("chaos", "c0")}));
  std::string Err;
  bool Started = Sup.start(&Err);
  fault::disarm();
  ASSERT_TRUE(Started) << Err;

  ASSERT_TRUE(waitUntil([&] { return Sup.admitted("c0"); }));
  SupervisorCounters C = Sup.counters();
  EXPECT_GE(C.SpawnFailures, 1u) << "the vetoed first spawn must be counted";
  EXPECT_GE(C.Spawns, 1u) << "the retry must have succeeded";
  EXPECT_EQ(C.FlapQuarantines, 0u)
      << "one vetoed spawn is far inside the restart budget";
  Sup.stop();
}

TEST(Supervise, HungMemberIsKilledAndRestartedWithZeroLossUnderLoad) {
  // The gap the router alone cannot close: SIGSTOP leaves the member's
  // socket alive but mute, so no socket error ever fires. The supervisor
  // convicts it on consecutive missed pings, SIGKILLs it (which errors
  // the socket), and the router's failover reclaims the orphans — every
  // submitted request still gets exactly one answer.
  // Wired exactly like crellvm-cluster --supervise: the supervisor's
  // hooks reach back into the router (created after the supervisor, so
  // through a pointer that is set before the prober thread starts).
  cluster::ClusterRouter *RouterPtr = nullptr;
  SupervisorOptions SO = fastSup({servedMember("hang", "h0"),
                                  servedMember("hang", "h1"),
                                  servedMember("hang", "h2")});
  SO.Nudge = [&RouterPtr](const std::string &Id) {
    if (RouterPtr)
      RouterPtr->nudgeReattach(Id);
  };
  SO.RttSink = [&RouterPtr](const std::string &Id, uint64_t RttUs) {
    if (RouterPtr)
      RouterPtr->notePingRtt(Id, RttUs);
  };
  MemberSupervisor Sup(SO);

  cluster::ClusterOptions CO;
  for (const MemberSpec &M : SO.Members)
    CO.Members.push_back({M.Id, M.SocketPath});
  CO.AdmissionGate = [&](const std::string &Id) { return Sup.admitted(Id); };
  cluster::ClusterRouter R(CO);
  RouterPtr = &R;

  std::string Err;
  ASSERT_TRUE(Sup.start(&Err)) << Err;
  ASSERT_TRUE(waitUntil([&] {
    return Sup.admitted("h0") && Sup.admitted("h1") && Sup.admitted("h2");
  }));
  ASSERT_TRUE(R.start(&Err)) << Err;

  constexpr size_t NReqs = 48;
  Collector C;
  // First half of the load lands, then one member freezes mid-flight,
  // then the rest of the load keeps coming.
  for (size_t I = 0; I != NReqs / 2; ++I)
    R.submit(validateSeed(7100 + I, static_cast<int64_t>(I)), C.callback());

  pid_t Stopped = Sup.pidOf("h1");
  ASSERT_GT(Stopped, 0);
  ASSERT_EQ(::kill(Stopped, SIGSTOP), 0);

  for (size_t I = NReqs / 2; I != NReqs; ++I)
    R.submit(validateSeed(7100 + I, static_cast<int64_t>(I)), C.callback());

  ASSERT_TRUE(C.waitFor(NReqs)) << "a request was lost";
  ASSERT_TRUE(waitUntil([&] {
    return Sup.counters().HungKills >= 1 && Sup.pidOf("h1") != Stopped &&
           Sup.admitted("h1");
  })) << "the hung member must be convicted, killed and restarted";

  R.beginShutdown();
  R.drain();

  std::set<int64_t> Ids;
  for (const Response &Rsp : C.Rsps) {
    EXPECT_TRUE(Ids.insert(Rsp.Id).second) << "duplicate answer";
    EXPECT_TRUE(Rsp.Status == ResponseStatus::Ok ||
                (Rsp.Status == ResponseStatus::Rejected &&
                 Rsp.RetryAfterMs > 0))
        << "id " << Rsp.Id << ": " << Rsp.Reason;
  }
  EXPECT_EQ(Ids.size(), NReqs);

  cluster::RouterCounters RC = R.counters();
  EXPECT_EQ(RC.Received, NReqs);
  EXPECT_EQ(RC.answered(), NReqs) << "zero accepted-request loss";

  SupervisorCounters SC = Sup.counters();
  EXPECT_GE(SC.HungKills, 1u);
  EXPECT_GE(SC.MissedPings, SO.HangAfterMissedPings);
  EXPECT_EQ(SC.FlapQuarantines, 0u);

  // The supervisor's successful probes surface through the RttSink hook
  // as per-member ping_rtt_us histograms in the aggregated stats.
  json::Value Stats = R.statsJson();
  const json::Value &MembersArr = Stats.get("cluster").get("members");
  bool SawRtt = false;
  for (size_t I = 0; I != MembersArr.size(); ++I)
    if (MembersArr.at(I).find("ping_rtt_us"))
      SawRtt = true;
  EXPECT_TRUE(SawRtt) << "supervisor ping RTTs missing from cluster stats";
  Sup.stop();
}

TEST(Supervise, DeepPingReportsStoppedMemberDown) {
  SupervisorOptions SO =
      fastSup({servedMember("deep", "d0"), servedMember("deep", "d1")});
  MemberSupervisor Sup(SO);
  std::string Err;
  ASSERT_TRUE(Sup.start(&Err)) << Err;
  ASSERT_TRUE(waitUntil([&] {
    return Sup.admitted("d0") && Sup.admitted("d1");
  }));

  cluster::ClusterOptions CO;
  for (const MemberSpec &M : SO.Members)
    CO.Members.push_back({M.Id, M.SocketPath});
  cluster::ClusterRouter R(CO);
  ASSERT_TRUE(R.start(&Err)) << Err;

  // Healthy fleet: both members answer ready inside the deadline.
  json::Value Doc = R.deepPing(2000);
  EXPECT_TRUE(Doc.get("deep").getBool());
  EXPECT_EQ(Doc.get("size").getInt(), 2);
  EXPECT_EQ(Doc.get("live").getInt(), 2);

  // Freeze one member: its listening socket still accepts (kernel
  // backlog), but the ping read times out — reachable=false.
  pid_t Stopped = Sup.pidOf("d1");
  ASSERT_GT(Stopped, 0);
  ASSERT_EQ(::kill(Stopped, SIGSTOP), 0);
  Doc = R.deepPing(300);
  EXPECT_EQ(Doc.get("live").getInt(), 1);
  const json::Value &Members = Doc.get("members");
  bool SawDown = false;
  for (size_t I = 0; I != Members.size(); ++I) {
    const json::Value &E = Members.at(I);
    if (E.get("member_id").getString() != "d1")
      continue;
    SawDown = true;
    EXPECT_FALSE(E.get("reachable").getBool());
  }
  EXPECT_TRUE(SawDown);

  // Thaw it so stop() can SIGTERM-drain instead of waiting out the kill.
  ::kill(Stopped, SIGCONT);
  R.beginShutdown();
  R.drain();
  Sup.stop();
}
