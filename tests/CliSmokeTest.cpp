//===- tests/CliSmokeTest.cpp - CLI contract across every binary --------------===//
//
// The command-line contract every installed binary (crellvm-validate,
// crellvm-audit, crellvm-served, crellvm-client, crellvm-campaign,
// crellvm-cluster — paths injected by tests/CMakeLists.txt as
// $<TARGET_FILE:...>) must honor,
// exercised by actually running the binaries:
//
//   --help / -h    print the usage block on stdout and exit 0;
//   --version      print the shared checker-semantics version line and
//                  exit 0, short-circuiting every other flag — the line
//                  tooling parses to confirm client, daemon, campaign
//                  driver and batch validator agree on verdict semantics;
//   unknown flag   print usage on stderr, NAME the offending flag, and
//                  exit 2 (the scripts-can-distinguish code: 2 is "you
//                  called me wrong", 1 is "I ran and the answer is bad").
//
// The shared rows run table-driven over all six binaries so a seventh
// binary only has to add one row; binary-specific contracts (bad --chaos,
// bad --cache, a dead daemon socket, campaign mode validation, cluster
// member-spec validation) follow.
//
//===----------------------------------------------------------------------===//

#include "checker/Version.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include <sys/wait.h>

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Stdout;
};

// Runs \p Bin with \p Args, capturing stdout; stderr is routed to stdout
// when \p MergeStderr so usage-on-stderr is observable too.
RunResult runBinary(const std::string &Bin, const std::string &Args,
                    bool MergeStderr = false) {
  std::string Cmd = Bin + " " + Args;
  Cmd += MergeStderr ? " 2>&1" : " 2>/dev/null";
  RunResult R;
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Stdout.append(Buf, N);
  int Status = pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

RunResult runValidator(const std::string &Args, bool MergeStderr = false) {
  return runBinary(CRELLVM_VALIDATE_BIN, Args, MergeStderr);
}

// One row per installed binary; every shared contract test iterates this.
struct BinaryRow {
  const char *Path;
  const char *Name;
};

const BinaryRow AllBinaries[] = {
    {CRELLVM_VALIDATE_BIN, "crellvm-validate"},
    {CRELLVM_AUDIT_BIN, "crellvm-audit"},
    {CRELLVM_SERVED_BIN, "crellvm-served"},
    {CRELLVM_CLIENT_BIN, "crellvm-client"},
    {CRELLVM_CAMPAIGN_BIN, "crellvm-campaign"},
    {CRELLVM_CLUSTER_BIN, "crellvm-cluster"},
};

TEST(CliSmoke, HelpExitsZeroOnEveryBinary) {
  for (const BinaryRow &B : AllBinaries) {
    RunResult R = runBinary(B.Path, "--help");
    EXPECT_EQ(R.ExitCode, 0) << B.Name;
    EXPECT_NE(R.Stdout.find("usage:"), std::string::npos) << B.Name;
    EXPECT_NE(R.Stdout.find("--help"), std::string::npos)
        << B.Name << ": usage must document --help";
    EXPECT_NE(R.Stdout.find("--version"), std::string::npos)
        << B.Name << ": usage must document --version";
  }
}

TEST(CliSmoke, ShortHelpAliasOnEveryBinary) {
  for (const BinaryRow &B : AllBinaries) {
    RunResult R = runBinary(B.Path, "-h");
    EXPECT_EQ(R.ExitCode, 0) << B.Name;
    EXPECT_NE(R.Stdout.find("usage:"), std::string::npos) << B.Name;
  }
}

TEST(CliSmoke, UnknownFlagExitsTwoNamingTheFlagOnEveryBinary) {
  for (const BinaryRow &B : AllBinaries) {
    RunResult R = runBinary(B.Path, "--no-such-flag", /*MergeStderr=*/true);
    EXPECT_EQ(R.ExitCode, 2) << B.Name;
    EXPECT_NE(R.Stdout.find("usage:"), std::string::npos) << B.Name;
    EXPECT_NE(R.Stdout.find("--no-such-flag"), std::string::npos)
        << B.Name << ": the offending flag should be named";
  }
}

// Every binary prints "<tool> checker-semantics-version <N> build <type>"
// and exits 0, with <N> the compiled-in CheckerSemanticsVersion.
TEST(CliSmoke, VersionLineOnEveryBinary) {
  for (const BinaryRow &B : AllBinaries) {
    RunResult R = runBinary(B.Path, "--version");
    EXPECT_EQ(R.ExitCode, 0) << B.Name;
    EXPECT_EQ(R.Stdout, crellvm::checker::versionLine(B.Name) + "\n");
    EXPECT_NE(
        R.Stdout.find("checker-semantics-version " +
                      std::to_string(crellvm::checker::CheckerSemanticsVersion)),
        std::string::npos)
        << B.Name;
    EXPECT_NE(R.Stdout.find("plan-schema-version " +
                            std::to_string(crellvm::checker::PlanSchemaVersion)),
              std::string::npos)
        << B.Name << ": the version line must carry the plan schema version";
  }
}

// --version wins even when other flags are present, and without running
// any work (it must return immediately).
TEST(CliSmoke, VersionShortCircuitsOnEveryBinary) {
  const std::pair<const char *, const char *> Rows[] = {
      {CRELLVM_VALIDATE_BIN, "--modules 100000 --version"},
      {CRELLVM_CAMPAIGN_BIN, "--units 100000000 --version"},
  };
  for (const auto &Row : Rows) {
    RunResult R = runBinary(Row.first, Row.second);
    EXPECT_EQ(R.ExitCode, 0) << Row.first;
    EXPECT_NE(R.Stdout.find("checker-semantics-version"), std::string::npos)
        << Row.first;
  }
}

// Every binary accepts --plan=off|shadow|on (checker-plan mode; the
// tools that never validate locally still validate the value for CLI
// symmetry) and refuses anything else with exit 2 naming the flag.
TEST(CliSmoke, BadPlanModeExitsTwoNamingTheFlagOnEveryBinary) {
  for (const BinaryRow &B : AllBinaries) {
    RunResult R = runBinary(B.Path, "--plan=bogus", /*MergeStderr=*/true);
    EXPECT_EQ(R.ExitCode, 2) << B.Name;
    EXPECT_NE(R.Stdout.find("--plan=bogus"), std::string::npos)
        << B.Name << ": the offending flag should be named";
  }
}

TEST(CliSmoke, HelpDocumentsPlanOnEveryBinary) {
  for (const BinaryRow &B : AllBinaries) {
    RunResult R = runBinary(B.Path, "--help");
    EXPECT_EQ(R.ExitCode, 0) << B.Name;
    EXPECT_NE(R.Stdout.find("--plan"), std::string::npos)
        << B.Name << ": usage must document --plan";
    EXPECT_NE(R.Stdout.find("shadow"), std::string::npos)
        << B.Name << ": usage must name the shadow mode";
  }
}

// --- Binary-specific contracts ---------------------------------------------

TEST(CliSmoke, BadCachePolicyExitsNonzero) {
  EXPECT_NE(runValidator("--cache=bogus").ExitCode, 0);
  EXPECT_NE(runValidator("--cache", /*MergeStderr=*/true).ExitCode, 0)
      << "--cache without a value must be rejected";
}

// A malformed --chaos schedule is a configuration error on every binary
// that accepts one: hard exit 2 before any work, with the bad site named
// (a typo'd fault schedule silently doing nothing would defeat the test
// it was armed for).
TEST(CliSmoke, BadChaosSpecExitsTwoOnEveryBinary) {
  const std::pair<const char *, const char *> Bins[] = {
      {CRELLVM_VALIDATE_BIN, ""},
      {CRELLVM_AUDIT_BIN, ""},
      {CRELLVM_SERVED_BIN, "--socket /tmp/crellvm-unused.sock"},
  };
  for (const auto &B : Bins) {
    RunResult R = runBinary(
        B.first, std::string(B.second) + " --chaos disk.teleport:every=2",
        /*MergeStderr=*/true);
    EXPECT_EQ(R.ExitCode, 2) << B.first;
    EXPECT_NE(R.Stdout.find("disk.teleport"), std::string::npos) << B.first;
  }
}

// Connecting to a socket nobody listens on is the most common operator
// error; it must produce the actionable one-liner and exit 2 (bad usage /
// environment), not a raw errno dump and a generic failure.
TEST(CliSmoke, ClientNamesMissingDaemonAndExitsTwo) {
  RunResult R = runBinary(CRELLVM_CLIENT_BIN,
                          "--socket /tmp/crellvm-no-such-daemon.sock --ping",
                          /*MergeStderr=*/true);
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stdout.find("daemon not running at "
                          "/tmp/crellvm-no-such-daemon.sock"),
            std::string::npos);
  EXPECT_NE(R.Stdout.find("crellvm-served"), std::string::npos)
      << "the error should say how to start the daemon";
}

// crellvm-campaign usage-level validation: every row must be refused with
// exit 2 and the offending value named, before any unit is generated.
TEST(CliSmoke, CampaignBadUsageExitsTwoNamingTheProblem) {
  const std::pair<const char *, const char *> Rows[] = {
      {"--mode teleport", "--mode teleport"},
      {"--bugs pr99999", "pr99999"},
      {"--mode bug-hunt --hunt pr24179,bogus", "bogus"},
      {"--mode soak --duration-s 5", "--socket"},
      {"--hunt pr24179", "--hunt"}, // --hunt outside bug-hunt mode
      {"--units", "--units"},       // numeric flag without a value
  };
  for (const auto &Row : Rows) {
    RunResult R = runBinary(CRELLVM_CAMPAIGN_BIN, Row.first,
                            /*MergeStderr=*/true);
    EXPECT_EQ(R.ExitCode, 2) << "args: " << Row.first;
    EXPECT_NE(R.Stdout.find(Row.second), std::string::npos)
        << "args: " << Row.first << " should name " << Row.second;
  }
}

// crellvm-cluster usage-level validation: a malformed --member spec (no
// '=', empty id, empty socket, duplicate id) and missing required flags
// are refused with exit 2 naming the offending spec.
TEST(CliSmoke, ClusterBadMemberSpecExitsTwoNamingTheSpec) {
  const std::pair<const char *, const char *> Rows[] = {
      {"--socket /tmp/r.sock --member m1-no-equals", "m1-no-equals"},
      {"--socket /tmp/r.sock --member =/tmp/m.sock", "=/tmp/m.sock"},
      {"--socket /tmp/r.sock --member m1=", "m1="},
      {"--socket /tmp/r.sock --member m1=/tmp/a.sock --member m1=/tmp/b.sock",
       "duplicate id 'm1'"},
  };
  for (const auto &Row : Rows) {
    RunResult R = runBinary(CRELLVM_CLUSTER_BIN, Row.first,
                            /*MergeStderr=*/true);
    EXPECT_EQ(R.ExitCode, 2) << "args: " << Row.first;
    EXPECT_NE(R.Stdout.find(Row.second), std::string::npos)
        << "args: " << Row.first << " should name " << Row.second;
  }
}

TEST(CliSmoke, ClusterRequiresSocketAndMembers) {
  RunResult NoSocket = runBinary(CRELLVM_CLUSTER_BIN,
                                 "--member m1=/tmp/m1.sock",
                                 /*MergeStderr=*/true);
  EXPECT_EQ(NoSocket.ExitCode, 2);
  EXPECT_NE(NoSocket.Stdout.find("--socket"), std::string::npos);

  RunResult NoMembers = runBinary(CRELLVM_CLUSTER_BIN,
                                  "--socket /tmp/r.sock",
                                  /*MergeStderr=*/true);
  EXPECT_EQ(NoMembers.ExitCode, 2);
  EXPECT_NE(NoMembers.Stdout.find("--member"), std::string::npos);
}

TEST(CliSmoke, ClusterBadSuperviseValueExitsTwoNamingTheFlag) {
  // Strict numeric parse: junk, zero, and absurd fleet sizes all name
  // the offending flag+value instead of silently spawning nothing.
  const std::pair<const char *, const char *> Rows[] = {
      {"--socket /tmp/r.sock --supervise bogus", "--supervise bogus"},
      {"--socket /tmp/r.sock --supervise 0", "--supervise 0"},
      {"--socket /tmp/r.sock --supervise 3x", "--supervise 3x"},
      {"--socket /tmp/r.sock --supervise 1000", "--supervise 1000"},
  };
  for (const auto &Row : Rows) {
    RunResult R = runBinary(CRELLVM_CLUSTER_BIN, Row.first,
                            /*MergeStderr=*/true);
    EXPECT_EQ(R.ExitCode, 2) << "args: " << Row.first;
    EXPECT_NE(R.Stdout.find(Row.second), std::string::npos)
        << "args: " << Row.first << " should name " << Row.second;
  }
}

TEST(CliSmoke, ClusterSuperviseConflictsWithExplicitMembers) {
  RunResult R = runBinary(
      CRELLVM_CLUSTER_BIN,
      "--socket /tmp/r.sock --supervise 2 --member m1=/tmp/m1.sock",
      /*MergeStderr=*/true);
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stdout.find("--supervise"), std::string::npos);
  EXPECT_NE(R.Stdout.find("--member"), std::string::npos);
}

TEST(CliSmoke, ClusterHelpDocumentsSupervision) {
  RunResult R = runBinary(CRELLVM_CLUSTER_BIN, "--help");
  EXPECT_EQ(R.ExitCode, 0);
  for (const char *Needle :
       {"--supervise", "--served", "--probe-interval-ms",
        "--probe-deadline-ms", "--hang-after", "--restart-budget",
        "--restart-window-ms", "--ready-timeout-ms"})
    EXPECT_NE(R.Stdout.find(Needle), std::string::npos)
        << "cluster usage must document " << Needle;
}

TEST(CliSmoke, ClientHelpDocumentsDeepPing) {
  RunResult R = runBinary(CRELLVM_CLIENT_BIN, "--help");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Stdout.find("--ping"), std::string::npos);
}

TEST(CliSmoke, CampaignBadRecoveryWindowUsageExitsTwo) {
  // --recovery-window needs soak + periodic scrapes to have rate samples.
  RunResult R = runBinary(CRELLVM_CAMPAIGN_BIN,
                          "--mode throughput --recovery-window 5",
                          /*MergeStderr=*/true);
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stdout.find("--recovery-window"), std::string::npos);
  EXPECT_NE(R.Stdout.find("--stats-every"), std::string::npos);
}

// The campaign usage block documents the replay contract the findings
// print (one command, standalone reproduction).
TEST(CliSmoke, CampaignHelpDocumentsReplay) {
  RunResult R = runBinary(CRELLVM_CAMPAIGN_BIN, "--help");
  EXPECT_EQ(R.ExitCode, 0);
  for (const char *Needle : {"--replay", "--seed", "--unit", "--bugs",
                             "--window", "--socket", "bug-hunt", "soak"})
    EXPECT_NE(R.Stdout.find(Needle), std::string::npos)
        << "campaign usage must document " << Needle;
}

} // namespace
