//===- tests/CliSmokeTest.cpp - crellvm-validate CLI contract -----------------===//
//
// The crellvm-validate binary's command-line contract, exercised by
// actually running the installed binary (CRELLVM_VALIDATE_BIN is injected
// by tests/CMakeLists.txt as $<TARGET_FILE:crellvm-validate>):
//
//   --help / -h   print the usage block on stdout and exit 0;
//   unknown flag  print usage on stderr and exit nonzero;
//   bad values    (--cache=bogus, --jobs without an argument) exit nonzero.
//
// Every installed binary (crellvm-validate, crellvm-audit, crellvm-served,
// crellvm-client; paths likewise injected by tests/CMakeLists.txt) must
// answer --version with the shared checker-semantics version line, so a
// service operator can confirm client, daemon, and batch validator agree
// on verdict semantics before trusting cross-tool comparisons.
//
//===----------------------------------------------------------------------===//

#include "checker/Version.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include <sys/wait.h>

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Stdout;
};

// Runs \p Bin with \p Args, capturing stdout; stderr is routed to stdout
// when \p MergeStderr so usage-on-stderr is observable too.
RunResult runBinary(const std::string &Bin, const std::string &Args,
                    bool MergeStderr = false) {
  std::string Cmd = Bin + " " + Args;
  Cmd += MergeStderr ? " 2>&1" : " 2>/dev/null";
  RunResult R;
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Stdout.append(Buf, N);
  int Status = pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

RunResult runValidator(const std::string &Args, bool MergeStderr = false) {
  return runBinary(CRELLVM_VALIDATE_BIN, Args, MergeStderr);
}

TEST(CliSmoke, HelpExitsZeroAndListsEveryFlag) {
  RunResult R = runValidator("--help");
  EXPECT_EQ(R.ExitCode, 0);
  for (const char *Flag :
       {"--jobs", "--bugs", "--oracle", "--binary-proofs", "--files",
        "--cache", "--cache-dir", "--cache-max-mb", "--unit-timeout-ms",
        "--chaos", "--help"})
    EXPECT_NE(R.Stdout.find(Flag), std::string::npos)
        << "usage must document " << Flag;
}

TEST(CliSmoke, ShortHelpAlias) {
  RunResult R = runValidator("-h");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Stdout.find("usage:"), std::string::npos);
}

TEST(CliSmoke, UnknownFlagExitsNonzeroWithUsage) {
  RunResult R = runValidator("--no-such-flag", /*MergeStderr=*/true);
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Stdout.find("usage:"), std::string::npos);
  EXPECT_NE(R.Stdout.find("--no-such-flag"), std::string::npos)
      << "the offending flag should be named";
}

TEST(CliSmoke, BadCachePolicyExitsNonzero) {
  EXPECT_NE(runValidator("--cache=bogus").ExitCode, 0);
  EXPECT_NE(runValidator("--cache", /*MergeStderr=*/true).ExitCode, 0)
      << "--cache without a value must be rejected";
}

// Every binary prints "<tool> checker-semantics-version <N> build <type>"
// and exits 0, with <N> the compiled-in CheckerSemanticsVersion — the line
// tooling parses to check that daemon and clients agree on semantics.
TEST(CliSmoke, VersionLineOnEveryBinary) {
  const std::pair<const char *, const char *> Bins[] = {
      {CRELLVM_VALIDATE_BIN, "crellvm-validate"},
      {CRELLVM_AUDIT_BIN, "crellvm-audit"},
      {CRELLVM_SERVED_BIN, "crellvm-served"},
      {CRELLVM_CLIENT_BIN, "crellvm-client"},
  };
  for (const auto &B : Bins) {
    RunResult R = runBinary(B.first, "--version");
    EXPECT_EQ(R.ExitCode, 0) << B.second;
    EXPECT_EQ(R.Stdout, crellvm::checker::versionLine(B.second) + "\n");
    EXPECT_NE(
        R.Stdout.find("checker-semantics-version " +
                      std::to_string(crellvm::checker::CheckerSemanticsVersion)),
        std::string::npos)
        << B.second;
  }
}

// A malformed --chaos schedule is a configuration error on every binary
// that accepts one: hard exit 2 before any work, with the bad site named
// (a typo'd fault schedule silently doing nothing would defeat the test
// it was armed for).
TEST(CliSmoke, BadChaosSpecExitsTwoOnEveryBinary) {
  const std::pair<const char *, const char *> Bins[] = {
      {CRELLVM_VALIDATE_BIN, ""},
      {CRELLVM_AUDIT_BIN, ""},
      {CRELLVM_SERVED_BIN, "--socket /tmp/crellvm-unused.sock"},
  };
  for (const auto &B : Bins) {
    RunResult R = runBinary(
        B.first, std::string(B.second) + " --chaos disk.teleport:every=2",
        /*MergeStderr=*/true);
    EXPECT_EQ(R.ExitCode, 2) << B.first;
    EXPECT_NE(R.Stdout.find("disk.teleport"), std::string::npos) << B.first;
  }
}

// Connecting to a socket nobody listens on is the most common operator
// error; it must produce the actionable one-liner and exit 2 (bad usage /
// environment), not a raw errno dump and a generic failure.
TEST(CliSmoke, ClientNamesMissingDaemonAndExitsTwo) {
  RunResult R = runBinary(CRELLVM_CLIENT_BIN,
                          "--socket /tmp/crellvm-no-such-daemon.sock --ping",
                          /*MergeStderr=*/true);
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Stdout.find("daemon not running at "
                          "/tmp/crellvm-no-such-daemon.sock"),
            std::string::npos);
  EXPECT_NE(R.Stdout.find("crellvm-served"), std::string::npos)
      << "the error should say how to start the daemon";
}

// --version wins even when other flags are present, and without running a
// validation (it must return immediately).
TEST(CliSmoke, VersionShortCircuits) {
  RunResult R = runValidator("--modules 100000 --version");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Stdout, crellvm::checker::versionLine("crellvm-validate") + "\n");
}

} // namespace
