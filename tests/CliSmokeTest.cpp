//===- tests/CliSmokeTest.cpp - crellvm-validate CLI contract -----------------===//
//
// The crellvm-validate binary's command-line contract, exercised by
// actually running the installed binary (CRELLVM_VALIDATE_BIN is injected
// by tests/CMakeLists.txt as $<TARGET_FILE:crellvm-validate>):
//
//   --help / -h   print the usage block on stdout and exit 0;
//   unknown flag  print usage on stderr and exit nonzero;
//   bad values    (--cache=bogus, --jobs without an argument) exit nonzero.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include <sys/wait.h>

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Stdout;
};

// Runs the validator with \p Args, capturing stdout; stderr is routed to
// stdout when \p MergeStderr so usage-on-stderr is observable too.
RunResult runValidator(const std::string &Args, bool MergeStderr = false) {
  std::string Cmd = std::string(CRELLVM_VALIDATE_BIN) + " " + Args;
  Cmd += MergeStderr ? " 2>&1" : " 2>/dev/null";
  RunResult R;
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    R.Stdout.append(Buf, N);
  int Status = pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

TEST(CliSmoke, HelpExitsZeroAndListsEveryFlag) {
  RunResult R = runValidator("--help");
  EXPECT_EQ(R.ExitCode, 0);
  for (const char *Flag :
       {"--jobs", "--bugs", "--oracle", "--binary-proofs", "--files",
        "--cache", "--cache-dir", "--cache-max-mb", "--help"})
    EXPECT_NE(R.Stdout.find(Flag), std::string::npos)
        << "usage must document " << Flag;
}

TEST(CliSmoke, ShortHelpAlias) {
  RunResult R = runValidator("-h");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Stdout.find("usage:"), std::string::npos);
}

TEST(CliSmoke, UnknownFlagExitsNonzeroWithUsage) {
  RunResult R = runValidator("--no-such-flag", /*MergeStderr=*/true);
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Stdout.find("usage:"), std::string::npos);
  EXPECT_NE(R.Stdout.find("--no-such-flag"), std::string::npos)
      << "the offending flag should be named";
}

TEST(CliSmoke, BadCachePolicyExitsNonzero) {
  EXPECT_NE(runValidator("--cache=bogus").ExitCode, 0);
  EXPECT_NE(runValidator("--cache", /*MergeStderr=*/true).ExitCode, 0)
      << "--cache without a value must be rejected";
}

} // namespace
