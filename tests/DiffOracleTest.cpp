//===- tests/DiffOracleTest.cpp - Differential-execution oracle ---------------===//
//
// The oracle as an independent probe of the trusted base. The centerpiece
// is a planted, deliberately unsound micro-optimization (add a b -> or a b
// without the disjoint-bits side condition, BugConfig::UnsoundAddToOr):
// with the matching add_disjoint_or infrule artificially weakened the
// checker accepts the miscompile, and only the oracle still catches the
// divergence — the paper's §7.1 argument for why validation needs a
// semantic ground truth behind it.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "erhl/RuleTester.h"
#include "ir/Parser.h"
#include "passes/InstCombine.h"

#include <gtest/gtest.h>

using namespace crellvm;

namespace {

ir::Module parse(const std::string &Text) {
  std::string Err;
  auto M = ir::parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  return *M;
}

/// Weakens the add_disjoint_or side-condition check for one scope; other
/// tests in this binary must see the strict checker.
struct WeakenGuard {
  WeakenGuard() { erhl::setWeakenedDisjointOrCheck(true); }
  ~WeakenGuard() { erhl::setWeakenedDisjointOrCheck(false); }
};

// --- runDiffOracle directly ---------------------------------------------------

TEST(DiffOracle, AcceptsIdenticalModules) {
  ir::Module M = parse(R"(
declare void @sink(i32)
define i32 @f(i32 %a) {
entry:
  call void @sink(i32 %a)
  ret i32 %a
}
)");
  driver::DiffOracleReport R = driver::runDiffOracle(M, M, {});
  EXPECT_EQ(R.FunctionsProbed, 1u);
  EXPECT_GT(R.Runs, 0u);
  EXPECT_EQ(R.Divergences, 0u);
}

TEST(DiffOracle, FlagsObservablyDifferentTranslations) {
  ir::Module Src = parse(R"(
declare void @sink(i32)
define i32 @f(i32 %a) {
entry:
  call void @sink(i32 %a)
  ret i32 %a
}
)");
  ir::Module Tgt = parse(R"(
declare void @sink(i32)
define i32 @f(i32 %a) {
entry:
  %b = add i32 %a, 1
  call void @sink(i32 %b)
  ret i32 %a
}
)");
  driver::DiffOracleReport R = driver::runDiffOracle(Src, Tgt, {});
  EXPECT_GT(R.Divergences, 0u);
  ASSERT_FALSE(R.Samples.empty());
  EXPECT_NE(R.Samples[0].find("@f"), std::string::npos);
}

TEST(DiffOracle, RefinementIsDirectional) {
  // Source returns undef (load of an uninitialized alloca); a target that
  // picks the concrete value 7 refines it. The converse direction is a
  // miscompile.
  ir::Module Undef = parse(R"(
define i32 @f() {
entry:
  %p = alloca i32, 1
  %x = load i32, ptr %p
  ret i32 %x
}
)");
  ir::Module Concrete = parse(R"(
define i32 @f() {
entry:
  ret i32 7
}
)");
  EXPECT_EQ(driver::runDiffOracle(Undef, Concrete, {}).Divergences, 0u);
  EXPECT_GT(driver::runDiffOracle(Concrete, Undef, {}).Divergences, 0u);
}

// --- The planted unsound optimization -----------------------------------------

TEST(AddDisjointOr, StrictRuleIsSemanticallySound) {
  erhl::RuleVerdict V =
      erhl::verifyRule(erhl::InfruleKind::AddDisjointOr, /*Seed=*/7,
                       /*Instances=*/600);
  EXPECT_GT(V.Applied, 50u);
  EXPECT_EQ(V.Violations, 0u) << V.FirstCounterexample;
}

TEST(AddDisjointOr, WeakenedCheckIsRefutedBySemanticTesting) {
  // Dropping the disjoint-bits side condition turns the rule unsound, and
  // the randomized rule tester finds a carry counterexample — the same
  // mechanism that refutes constexpr_no_ub (PR33673).
  WeakenGuard G;
  erhl::RuleVerdict V =
      erhl::verifyRule(erhl::InfruleKind::AddDisjointOr, /*Seed=*/7,
                       /*Instances=*/600);
  EXPECT_GT(V.Applied, 50u);
  EXPECT_GT(V.Violations, 0u);
  EXPECT_FALSE(V.FirstCounterexample.empty());
}

TEST(DiffOracle, CatchesPlantedOptTheWeakenedCheckerMisses) {
  const char *Text = R"(
declare void @sink(i32)
define i32 @f(i32 %a, i32 %b) {
entry:
  %y = add i32 %a, %b
  call void @sink(i32 %y)
  ret i32 %y
}
)";
  passes::BugConfig Bugs; // only the planted bug, no preset
  Bugs.UnsoundAddToOr = true;
  driver::DriverOptions Opts;
  Opts.WriteFiles = false;
  Opts.RunOracle = true;

  // Strict checker: the rewrite's add_disjoint_or certificate has
  // non-constant operands, so the side condition fails and validation
  // rejects the translation before the oracle is even consulted.
  {
    driver::ValidationDriver D(Bugs, Opts);
    driver::StatsMap Stats;
    passes::InstCombine IC(Bugs);
    D.runPassValidated(IC, parse(Text), Stats);
    const driver::PassStats &S = Stats["instcombine"];
    EXPECT_GT(S.V, 0u);
    EXPECT_GT(S.F, 0u);
  }

  // Weakened checker: validation now accepts the miscompile; the oracle is
  // the only line of defense left, and a+b != a|b on almost any input pair
  // with overlapping bits.
  {
    WeakenGuard G;
    driver::ValidationDriver D(Bugs, Opts);
    driver::StatsMap Stats;
    passes::InstCombine IC(Bugs);
    D.runPassValidated(IC, parse(Text), Stats);
    const driver::PassStats &S = Stats["instcombine"];
    EXPECT_EQ(S.F, 0u) << (S.FailureSamples.empty() ? ""
                                                    : S.FailureSamples[0]);
    EXPECT_GT(S.OracleRuns, 0u);
    EXPECT_GT(S.OracleDivergences, 0u);
    ASSERT_FALSE(S.OracleSamples.empty());
    EXPECT_NE(S.OracleSamples[0].find("@f"), std::string::npos);
  }
}

} // namespace
