//===- tests/FoldPhiTest.cpp - Paper §4: cyclic control flow ------------------===//
//
// Reproduces the paper's §4 fold-phi example end to end with a
// hand-written proof: the source phi `z := phi(x, y)` is replaced by
// `t := phi(a, z); z := t + 1`, which requires reasoning about both old
// and new values of z across the back edge — the old-register machinery.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "checker/Validator.h"
#include "interp/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "proofgen/ProofBuilder.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::erhl;
using namespace crellvm::proofgen;

namespace {

ir::Type I32 = ir::Type::intTy(32);

ValT phy(const char *N) { return ValT::phy(ir::Value::reg(N, I32)); }
ValT old(const char *N) { return ValT::old(N, I32); }
ValT ghost(const char *N) { return ValT::ghost(N, I32); }
ValT c32(int64_t C) { return ValT::phy(ir::Value::constInt(C, I32)); }
Expr V(const ValT &X) { return Expr::val(X); }
Expr add1(const ValT &A) { return Expr::bop(ir::Opcode::Add, I32, A, c32(1)); }

Infrule mk(InfruleKind K, Side S, std::vector<Expr> Args) {
  Infrule R;
  R.K = K;
  R.S = S;
  R.Args = std::move(Args);
  return R;
}

const char *FoldPhiSrc = R"(
declare i1 @cond()
declare void @sink(i32)
define void @fp(i32 %a) {
b1:
  %x = add i32 %a, 1
  br label %b2
b2:
  %z = phi i32 [ %x, %b1 ], [ %y, %b2 ]
  %w = phi i32 [ 42, %b1 ], [ %z, %b2 ]
  %y = add i32 %z, 1
  %c = call i1 @cond()
  br i1 %c, label %b2, label %done
done:
  call void @sink(i32 %w)
  call void @sink(i32 %z)
  ret void
}
)";

TEST(FoldPhi, Paper4ExampleValidates) {
  std::string Err;
  auto Src = ir::parseModule(FoldPhiSrc, &Err);
  ASSERT_TRUE(Src) << Err;

  ProofBuilder B(Src->Funcs[0]);
  // --- The transformation: replace z's phi by t := phi(a, z) and a new
  //     first command z := t + 1.
  auto &Phis = B.tgtPhis("b2");
  ASSERT_EQ(Phis[0].Result, "z");
  Phis[0] = ir::Phi{"t", I32, {{"b1", ir::Value::reg("a", I32)},
                               {"b2", ir::Value::reg("z", I32)}}};
  auto YSlot = B.slotOfSrc("b2", 0);
  auto ZSlot = B.insertTgtBefore(
      YSlot, ir::Instruction::binary(ir::Opcode::Add, "z", I32,
                                     ir::Value::reg("t", I32),
                                     ir::Value::constInt(1, I32)));
  auto XSlot = B.slotOfSrc("b1", 0);
  B.maydiffGlobal(RegT{"t", Tag::Phy});
  B.maydiffAtEntry(RegT{"z", Tag::Phy}, "b2");

  // --- The proof (paper §4's walkthrough).
  // x's definition is needed at the end of b1 for the first edge.
  B.assn(Pred::lessdef(V(phy("x")), add1(phy("a"))), Side::Src,
         PPoint::afterSlot(XSlot), PPoint::endOf("b1"));
  // y's definition is needed at the end of b2 for the back edge.
  B.assn(Pred::lessdef(V(phy("y")), add1(phy("z"))), Side::Src,
         PPoint::afterSlot(YSlot), PPoint::endOf("b2"));
  // The ghost z-hat names the new value of z on both sides, bound per
  // incoming edge in terms of old registers.
  B.infAtPhi(mk(InfruleKind::IntroGhost, Side::Src,
                {V(ghost("zh")), add1(old("a"))}),
             "b2", "b1");
  B.infAtPhi(mk(InfruleKind::IntroGhost, Side::Src,
                {V(ghost("zh")), add1(old("z"))}),
             "b2", "b2");
  // At the entry of b2: z_src >= z-hat and z-hat >= t+1 (the target's
  // pending computation).
  B.assn(Pred::lessdef(V(phy("z")), V(ghost("zh"))), Side::Src,
         PPoint::entryOf("b2"), PPoint::beforeSlot(ZSlot));
  B.assn(Pred::lessdef(V(ghost("zh")), add1(phy("t"))), Side::Tgt,
         PPoint::entryOf("b2"), PPoint::beforeSlot(ZSlot));
  // The automation derives the chains and discharges z at the inserted
  // line (substitution through the phi's old values needs gvn_pre).
  B.enableAuto("gvn_pre");

  auto R = B.finalize();
  ir::Module Tgt = *Src;
  *Tgt.getFunction("fp") = R.TgtF;
  std::vector<std::string> VErrs;
  ASSERT_TRUE(analysis::verifyModule(Tgt, VErrs))
      << VErrs[0] << "\n" << ir::printModule(Tgt);

  proofgen::Proof P;
  P.Functions["fp"] = R.FProof;
  auto VR = checker::validate(*Src, Tgt, P);
  EXPECT_EQ(VR.countFailed(), 0u) << VR.firstFailure();
  EXPECT_EQ(VR.countValidated(), 1u);

  // And the transformation is really semantics-preserving.
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    interp::InterpOptions Opts;
    Opts.OracleSeed = Seed;
    auto RS = interp::run(*Src, "fp", {5}, Opts);
    auto RT = interp::run(Tgt, "fp", {5}, Opts);
    EXPECT_TRUE(interp::refines(RS, RT)) << "seed " << Seed;
  }
}

TEST(FoldPhi, CorruptedFoldIsRejected) {
  // The same transformation with the wrong constant (t + 2) must fail.
  std::string Err;
  auto Src = ir::parseModule(FoldPhiSrc, &Err);
  ASSERT_TRUE(Src) << Err;
  ProofBuilder B(Src->Funcs[0]);
  auto &Phis = B.tgtPhis("b2");
  Phis[0] = ir::Phi{"t", I32, {{"b1", ir::Value::reg("a", I32)},
                               {"b2", ir::Value::reg("z", I32)}}};
  auto YSlot = B.slotOfSrc("b2", 0);
  auto ZSlot = B.insertTgtBefore(
      YSlot, ir::Instruction::binary(ir::Opcode::Add, "z", I32,
                                     ir::Value::reg("t", I32),
                                     ir::Value::constInt(2, I32))); // BUG
  auto XSlot = B.slotOfSrc("b1", 0);
  B.maydiffGlobal(RegT{"t", Tag::Phy});
  B.maydiffAtEntry(RegT{"z", Tag::Phy}, "b2");
  B.assn(Pred::lessdef(V(phy("x")), add1(phy("a"))), Side::Src,
         PPoint::afterSlot(XSlot), PPoint::endOf("b1"));
  B.assn(Pred::lessdef(V(phy("y")), add1(phy("z"))), Side::Src,
         PPoint::afterSlot(YSlot), PPoint::endOf("b2"));
  B.infAtPhi(mk(InfruleKind::IntroGhost, Side::Src,
                {V(ghost("zh")), add1(old("a"))}),
             "b2", "b1");
  B.infAtPhi(mk(InfruleKind::IntroGhost, Side::Src,
                {V(ghost("zh")), add1(old("z"))}),
             "b2", "b2");
  B.assn(Pred::lessdef(V(phy("z")), V(ghost("zh"))), Side::Src,
         PPoint::entryOf("b2"), PPoint::beforeSlot(ZSlot));
  B.assn(Pred::lessdef(V(ghost("zh")), add1(phy("t"))), Side::Tgt,
         PPoint::entryOf("b2"), PPoint::beforeSlot(ZSlot));
  B.enableAuto("gvn_pre");

  auto R = B.finalize();
  ir::Module Tgt = *Src;
  *Tgt.getFunction("fp") = R.TgtF;
  proofgen::Proof P;
  P.Functions["fp"] = R.FProof;
  auto VR = checker::validate(*Src, Tgt, P);
  EXPECT_EQ(VR.countFailed(), 1u);
}

} // namespace
