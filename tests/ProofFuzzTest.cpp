//===- tests/ProofFuzzTest.cpp - TCB soundness under mutation -----------------===//
//
// The checker is the trusted computing base: whatever the (untrusted)
// proof claims, a validated translation must refine the source. These
// tests attack that property directly:
//
//  * coherent mutation — change one target instruction AND the aligned
//    TgtCmd in the proof identically, so the alignment check passes and
//    the *logical* rules must do the rejecting. Every mutation the
//    checker accepts is executed under the reference interpreter and
//    must refine the source.
//  * proof-tree fuzzing — random perturbations of the serialized proof
//    must never crash the parser or the checker (rejection is fine, and
//    acceptance is harmless because the target is the genuine one).
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "checker/Validator.h"
#include "interp/Interp.h"
#include "passes/Pipeline.h"
#include "proofgen/ProofJson.h"
#include "server/Protocol.h"
#include "support/RNG.h"
#include "workload/RandomProgram.h"

#include <gtest/gtest.h>

using namespace crellvm;

namespace {

/// Applies one random semantics-affecting, type-preserving mutation to
/// instruction \p I; returns false when no mutation applies.
bool mutateInstruction(ir::Instruction &I, RNG &R) {
  if (I.isTerminator())
    return false;
  auto &Ops = I.operands();
  // Bump a random integer constant.
  std::vector<size_t> ConstIdx;
  for (size_t K = 0; K != Ops.size(); ++K)
    if (Ops[K].isConstInt())
      ConstIdx.push_back(K);
  uint64_t Choice = R.below(3);
  if (Choice == 0 && !ConstIdx.empty()) {
    size_t K = ConstIdx[R.below(ConstIdx.size())];
    Ops[K] = ir::Value::constInt(Ops[K].intValue() + 1, Ops[K].type());
    return true;
  }
  // Swap two same-typed operands.
  if (Choice == 1 && Ops.size() >= 2 && Ops[0].type() == Ops[1].type() &&
      !(Ops[0] == Ops[1])) {
    std::swap(Ops[0], Ops[1]);
    return true;
  }
  // Toggle gep inbounds — the PR28562/PR29057 distinction.
  using ir::Opcode;
  if (I.opcode() == Opcode::Gep) {
    I.setInbounds(!I.isInbounds());
    return true;
  }
  // Flip the operator within an arity/type-preserving pair.
  Opcode NewOp;
  switch (I.opcode()) {
  case Opcode::Add:
    NewOp = Opcode::Sub;
    break;
  case Opcode::Sub:
    NewOp = Opcode::Add;
    break;
  case Opcode::And:
    NewOp = Opcode::Or;
    break;
  case Opcode::Or:
    NewOp = Opcode::Xor;
    break;
  case Opcode::Mul:
    NewOp = Opcode::Add;
    break;
  default:
    return false;
  }
  I = ir::Instruction::binary(NewOp, *I.result(), I.type(), Ops[0], Ops[1]);
  return true;
}

/// Mutates the K-th non-lnop target command of a random block of \p F,
/// both in the module and in the aligned proof line. Returns false when
/// the function has nothing mutable.
bool mutateCoherently(ir::Function &F, proofgen::FunctionProof &FP,
                      RNG &R) {
  for (int Attempt = 0; Attempt != 12; ++Attempt) {
    ir::BasicBlock &Blk = F.Blocks[R.below(F.Blocks.size())];
    auto It = FP.Blocks.find(Blk.Name);
    if (It == FP.Blocks.end())
      continue;
    // Collect the proof lines whose TgtCmd is a real command; they align
    // 1:1 with the block's instructions.
    std::vector<proofgen::LineEntry *> TgtLines;
    for (proofgen::LineEntry &L : It->second.Lines)
      if (L.TgtCmd)
        TgtLines.push_back(&L);
    if (TgtLines.size() != Blk.Insts.size())
      continue; // inserted phis etc. — pick another block
    if (Blk.Insts.empty())
      continue;
    size_t K = R.below(Blk.Insts.size());
    ir::Instruction Copy = Blk.Insts[K];
    if (!mutateInstruction(Copy, R))
      continue;
    Blk.Insts[K] = Copy;
    *TgtLines[K]->TgtCmd = Copy;
    return true;
  }
  return false;
}

void expectRefinesOrDie(const ir::Module &Src, const ir::Module &Tgt,
                        const std::string &FName, uint64_t Seed) {
  const ir::Function *F = Src.getFunction(FName);
  ASSERT_TRUE(F);
  std::vector<int64_t> Args(F->Params.size(), 3);
  for (auto ArgSet : {std::vector<int64_t>{3, 5, 1},
                      {0, 0, 0},
                      {-7, 2, 9},
                      {1, 1, 1}}) {
    ArgSet.resize(F->Params.size());
    for (uint64_t OSeed = 1; OSeed <= 3; ++OSeed) {
      interp::InterpOptions Opts;
      Opts.OracleSeed = OSeed;
      auto RS = interp::run(Src, FName, ArgSet, Opts);
      auto RT = interp::run(Tgt, FName, ArgSet, Opts);
      EXPECT_TRUE(interp::refines(RS, RT))
          << "CHECKER UNSOUNDNESS: seed " << Seed << ", @" << FName
          << " validated after mutation but does not refine";
    }
  }
}

TEST(ProofFuzz, ValidatedMutationsAlwaysRefine) {
  RNG R(424242);
  unsigned Mutated = 0, Rejected = 0, Accepted = 0;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    workload::GenOptions G;
    G.Seed = Seed;
    G.VecFunctionPct = 0; // vector functions are #NS — nothing to attack
    ir::Module Src = workload::generateModule(G);
    for (const char *PassName : {"mem2reg", "instcombine", "gvn"}) {
      auto Pass = passes::makePass(PassName, passes::BugConfig::fixed());
      passes::PassResult PR = Pass->run(Src, /*GenProof=*/true);
      for (int Trial = 0; Trial != 6; ++Trial) {
        ir::Module Tgt = PR.Tgt;
        proofgen::Proof Proof = PR.Proof;
        // Pick a random function with a proof.
        if (Tgt.Funcs.empty())
          continue;
        ir::Function &F = Tgt.Funcs[R.below(Tgt.Funcs.size())];
        auto PIt = Proof.Functions.find(F.Name);
        if (PIt == Proof.Functions.end() || PIt->second.NotSupported)
          continue;
        if (!mutateCoherently(F, PIt->second, R))
          continue;
        std::vector<std::string> VErrs;
        if (!analysis::verifyModule(Tgt, VErrs))
          continue; // mutation broke SSA/typing — not interesting
        ++Mutated;
        auto VR = checker::validate(Src, Tgt, Proof);
        auto FIt = VR.Functions.find(F.Name);
        ASSERT_TRUE(FIt != VR.Functions.end());
        if (FIt->second.Status == checker::ValidationStatus::Validated) {
          ++Accepted;
          expectRefinesOrDie(Src, Tgt, F.Name, Seed);
        } else {
          ++Rejected;
        }
      }
    }
  }
  // The test must actually bite: mutations were produced, and the
  // checker rejected the (overwhelmingly non-refining) bulk of them.
  EXPECT_GT(Mutated, 100u);
  EXPECT_GT(Rejected, Mutated / 2) << "accepted=" << Accepted;
}

TEST(ProofFuzz, PerturbedProofTreesNeverCrashTheChecker) {
  RNG R(77777);
  unsigned Checked = 0;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    workload::GenOptions G;
    G.Seed = Seed;
    ir::Module Src = workload::generateModule(G);
    auto Pass = passes::makePass("gvn", passes::BugConfig::fixed());
    passes::PassResult PR = Pass->run(Src, /*GenProof=*/true);
    std::string Text = proofgen::proofToText(PR.Proof);
    for (int Trial = 0; Trial != 40; ++Trial) {
      std::string Mut = Text;
      // A cluster of random byte edits.
      for (uint64_t E = 0, N = 1 + R.below(4); E != N; ++E) {
        size_t Pos = R.below(Mut.size());
        switch (R.below(3)) {
        case 0:
          Mut[Pos] = static_cast<char>(R.range(32, 126));
          break;
        case 1:
          Mut.erase(Pos, 1);
          break;
        default:
          Mut.insert(Pos, 1, static_cast<char>(R.range(32, 126)));
          break;
        }
      }
      std::string Err;
      auto Proof = proofgen::proofFromText(Mut, &Err);
      if (!Proof)
        continue; // parse rejection is the common, correct outcome
      // Whatever parsed must be checkable without crashing; the verdict
      // itself is unconstrained (the target is the genuine one).
      checker::validate(Src, PR.Tgt, *Proof);
      ++Checked;
    }
  }
  // Some perturbations survive parsing (e.g. digit edits in constants).
  EXPECT_GT(Checked, 0u);
}

//===----------------------------------------------------------------------===//
// Hostile CBJ1 through the wire decode path
//===----------------------------------------------------------------------===//

// The daemon decodes cbj1 frames from untrusted clients through a
// session WireDecoder. Mutations of a valid encoded request must never
// crash it: every byte string either decodes to some value or fails with
// an error message — and a failure must leave the session usable (the
// intern-table rollback), exactly what SocketServer relies on to answer
// bad_request and keep the connection.
TEST(ProofFuzz, MutatedWireFramesNeverCrashTheSessionDecoder) {
  server::Request Rq;
  Rq.Kind = server::RequestKind::Validate;
  Rq.Id = 12345;
  Rq.HasSeed = true;
  Rq.Seed = 987654321;
  Rq.Bugs = "fixed";
  Rq.DeadlineMs = 250;
  server::WireEncoder RefEnc(server::WireCodec::Cbj1);
  auto Bytes = RefEnc.encode(server::requestToValue(Rq));
  ASSERT_TRUE(Bytes);

  RNG R(20260807);
  uint64_t Decoded = 0, Rejected = 0;
  for (int Trial = 0; Trial != 500; ++Trial) {
    std::string Mut = *Bytes;
    for (uint64_t E = 0, N = 1 + R.below(4); E != N && !Mut.empty(); ++E) {
      size_t Pos = R.below(Mut.size());
      switch (R.below(4)) {
      case 0: // bit flip (hits tags, varints, intern ids)
        Mut[Pos] = static_cast<char>(Mut[Pos] ^ (1 << R.below(8)));
        break;
      case 1:
        Mut.erase(Pos, 1);
        break;
      case 2:
        Mut.insert(Pos, 1, static_cast<char>(R.below(256)));
        break;
      default: // truncate
        Mut.resize(Pos);
        break;
      }
    }
    // Each trial gets a fresh session, like a fresh hostile connection.
    server::WireDecoder Dec(server::WireCodec::Cbj1);
    std::string Err;
    auto V = Dec.decode(Mut, &Err);
    if (!V) {
      EXPECT_FALSE(Err.empty()) << "rejection must carry a reason";
      ++Rejected;
      // Rollback: the failed frame must not poison the session — the
      // pristine original still decodes on it.
      auto Good = Dec.decode(*Bytes, &Err);
      ASSERT_TRUE(Good) << Err;
      continue;
    }
    ++Decoded;
    // Whatever decoded feeds the request parser, which must also hold.
    server::requestFromValue(*V, &Err);
  }
  EXPECT_GT(Rejected, 0u);
  // Bit flips in string bytes commonly still decode; both paths must run.
  EXPECT_GT(Decoded, 0u);
}

} // namespace
