//===- tests/DriverTest.cpp - Fig. 1 driver integration -----------------------===//
//
// The validation driver with the real file-based exchange: src.ll,
// tgt'.ll and the JSON proof written to disk, read back, and checked —
// the paper's Fig. 1 split between the compiler and the validator.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "workload/RandomProgram.h"

#include <filesystem>
#include <gtest/gtest.h>

using namespace crellvm;

namespace {

TEST(Driver, FileExchangePipelineValidates) {
  driver::DriverOptions Opts;
  Opts.WriteFiles = true;
  Opts.ExchangeDir =
      (std::filesystem::temp_directory_path() / "crellvm-driver-test")
          .string();
  driver::ValidationDriver D(passes::BugConfig::fixed(), Opts);
  driver::StatsMap Stats;
  for (uint64_t Seed = 100; Seed != 106; ++Seed) {
    workload::GenOptions G;
    G.Seed = Seed;
    D.runPipelineValidated(workload::generateModule(G), Stats);
  }
  ASSERT_FALSE(Stats.empty());
  for (const auto &KV : Stats) {
    EXPECT_EQ(KV.second.F, 0u)
        << KV.first << ": "
        << (KV.second.FailureSamples.empty() ? ""
                                             : KV.second.FailureSamples[0]);
    EXPECT_EQ(KV.second.DiffMismatches, 0u) << KV.first;
    EXPECT_GT(KV.second.V, 0u) << KV.first;
    // The I/O column is really exercised.
    EXPECT_GT(KV.second.IO, 0.0) << KV.first;
  }
}

TEST(Driver, StatsAccumulateAcrossRuns) {
  driver::DriverOptions Opts;
  Opts.WriteFiles = false;
  driver::ValidationDriver D(passes::BugConfig::fixed(), Opts);
  driver::StatsMap Stats;
  workload::GenOptions G;
  G.Seed = 5;
  ir::Module M = workload::generateModule(G);
  D.runPipelineValidated(M, Stats);
  uint64_t VAfterOne = Stats["mem2reg"].V;
  D.runPipelineValidated(M, Stats);
  EXPECT_EQ(Stats["mem2reg"].V, 2 * VAfterOne);
}

TEST(Driver, BuggyConfigurationIsReportedInFailureSamples) {
  driver::DriverOptions Opts;
  Opts.WriteFiles = false;
  driver::ValidationDriver D(passes::BugConfig::llvm371(), Opts);
  driver::StatsMap Stats;
  for (uint64_t Seed = 1; Seed != 30 && Stats["gvn"].F == 0; ++Seed) {
    workload::GenOptions G;
    G.Seed = Seed;
    D.runPipelineValidated(workload::generateModule(G), Stats);
  }
  ASSERT_GT(Stats["gvn"].F, 0u);
  ASSERT_FALSE(Stats["gvn"].FailureSamples.empty());
  // The logical reason names a concrete function and location.
  EXPECT_NE(Stats["gvn"].FailureSamples[0].find("@"), std::string::npos);
}

} // namespace
