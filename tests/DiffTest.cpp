//===- tests/DiffTest.cpp - llvm-diff analog unit tests -----------------------===//

#include "difftool/Diff.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace crellvm;

namespace {

ir::Module parse(const std::string &Text) {
  std::string Err;
  auto M = ir::parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  return *M;
}

const char *Base = R"(
@G = global i32, 1
define i32 @f(i32 %a, i1 %c) {
entry:
  %x = add i32 %a, 1
  br i1 %c, label %l, label %r
l:
  br label %j
r:
  br label %j
j:
  %m = phi i32 [ %x, %l ], [ 0, %r ]
  ret i32 %m
}
)";

TEST(DiffTool, IdenticalModulesAreEquivalent) {
  ir::Module A = parse(Base);
  EXPECT_TRUE(difftool::diffModules(A, A));
}

TEST(DiffTool, ConsistentRenamingIsEquivalent) {
  // The whole point of llvm-diff in the framework: the proof-generating
  // compiler names registers differently (paper §1.1).
  ir::Module A = parse(Base);
  ir::Module B = parse(R"(
@G = global i32, 1
define i32 @f(i32 %p0, i1 %p1) {
entry:
  %t0 = add i32 %p0, 1
  br i1 %p1, label %l, label %r
l:
  br label %j
r:
  br label %j
j:
  %t1 = phi i32 [ %t0, %l ], [ 0, %r ]
  ret i32 %t1
}
)");
  auto D = difftool::diffModules(A, B);
  EXPECT_TRUE(D) << D.FirstDifference;
}

TEST(DiffTool, InconsistentRenamingIsRejected) {
  ir::Module A = parse(R"(
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, %a
  ret i32 %x
}
)");
  // %a maps to both %p and %q: not a renaming.
  ir::Module B = parse(R"(
define i32 @f(i32 %p) {
entry:
  %x = add i32 %p, %x2
  ret i32 %x
}
define i32 @g(i32 %q) {
entry:
  ret i32 %q
}
)");
  EXPECT_FALSE(difftool::diffModules(A, B));
}

TEST(DiffTool, DetectsChangedConstant) {
  ir::Module A = parse(Base);
  ir::Module B = parse(Base);
  B.Funcs[0].Blocks[0].Insts[0] = ir::Instruction::binary(
      ir::Opcode::Add, "x", ir::Type::intTy(32),
      ir::Value::reg("a", ir::Type::intTy(32)),
      ir::Value::constInt(2, ir::Type::intTy(32)));
  auto D = difftool::diffModules(A, B);
  EXPECT_FALSE(D);
  EXPECT_NE(D.FirstDifference.find("instructions differ"),
            std::string::npos);
}

TEST(DiffTool, DetectsChangedInboundsFlag) {
  const char *T1 = R"(
define ptr @f(ptr %p) {
entry:
  %q = gep inbounds ptr %p, i64 1
  ret ptr %q
}
)";
  const char *T2 = R"(
define ptr @f(ptr %p) {
entry:
  %q = gep ptr %p, i64 1
  ret ptr %q
}
)";
  EXPECT_FALSE(difftool::diffModules(parse(T1), parse(T2)));
}

TEST(DiffTool, DetectsMissingInstruction) {
  ir::Module A = parse(Base);
  ir::Module B = parse(Base);
  B.Funcs[0].Blocks[0].Insts.erase(B.Funcs[0].Blocks[0].Insts.begin());
  EXPECT_FALSE(difftool::diffModules(A, B));
}

TEST(DiffTool, DetectsGlobalChanges) {
  ir::Module A = parse(Base);
  ir::Module B = parse(Base);
  B.Globals[0].Size = 2;
  auto D = difftool::diffModules(A, B);
  EXPECT_FALSE(D);
  EXPECT_NE(D.FirstDifference.find("global"), std::string::npos);
}

TEST(DiffTool, DetectsPhiIncomingChange) {
  ir::Module A = parse(Base);
  ir::Module B = parse(Base);
  B.Funcs[0].getBlock("j")->Phis[0].setIncoming(
      "r", ir::Value::constInt(1, ir::Type::intTy(32)));
  EXPECT_FALSE(difftool::diffModules(A, B));
}

} // namespace
