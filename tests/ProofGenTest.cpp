//===- tests/ProofGenTest.cpp - ProofBuilder, proof JSON, TCB --------------===//
//
// The proof-generation infrastructure: slot mechanics and lnop alignment,
// the Appendix E point ranges (including the cyclic coverage), proof JSON
// round-trips, and — crucially for the TCB argument (paper §1.1) — that
// corrupted proofs are *rejected*, never accepted.
//
//===----------------------------------------------------------------------===//

#include "checker/Validator.h"
#include "ir/Parser.h"
#include "passes/Pipeline.h"
#include "proofgen/ProofBuilder.h"
#include "proofgen/ProofJson.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::erhl;
using namespace crellvm::proofgen;

namespace {

ir::Type I32 = ir::Type::intTy(32);

ir::Module parse(const std::string &Text) {
  std::string Err;
  auto M = ir::parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  return *M;
}

Pred fact(const char *Reg, int64_t C) {
  return Pred::lessdef(
      Expr::val(ValT::phy(ir::Value::reg(Reg, I32))),
      Expr::val(ValT::phy(ir::Value::constInt(C, I32))));
}

const char *LoopFn = R"(
declare i1 @cond()
define void @l() {
entry:
  %x = add i32 1, 2
  br label %header
header:
  %y = add i32 3, 4
  %c = call i1 @cond()
  br i1 %c, label %header, label %done
done:
  ret void
}
)";

TEST(ProofBuilderTest, SlotEditing) {
  ir::Module M = parse(LoopFn);
  ProofBuilder B(M.Funcs[0]);
  auto S = B.slotOfSrc("entry", 0);
  EXPECT_EQ(B.tgtAt(S)->str(), "%x = add i32 1, 2");
  EXPECT_EQ(B.srcAt(S)->str(), "%x = add i32 1, 2");
  B.replaceTgt(S, ir::Instruction::binary(ir::Opcode::Add, "x", I32,
                                          ir::Value::constInt(3, I32),
                                          ir::Value::constInt(0, I32)));
  EXPECT_EQ(B.tgtAt(S)->str(), "%x = add i32 3, 0");
  EXPECT_EQ(B.srcAt(S)->str(), "%x = add i32 1, 2"); // source untouched
  B.removeTgt(S);
  EXPECT_EQ(B.tgtAt(S), nullptr);
  auto R = B.finalize();
  // The removed instruction is a target lnop in the proof and absent from
  // the target function.
  EXPECT_EQ(R.TgtF.Blocks[0].Insts.size(), 1u); // just the branch
  const LineEntry &L = R.FProof.Blocks.at("entry").Lines[0];
  EXPECT_TRUE(L.SrcCmd.has_value());
  EXPECT_FALSE(L.TgtCmd.has_value());
}

TEST(ProofBuilderTest, InsertionCreatesSourceLnop) {
  ir::Module M = parse(LoopFn);
  ProofBuilder B(M.Funcs[0]);
  B.insertTgtBeforeTerminator(
      "entry", ir::Instruction::binary(ir::Opcode::Add, "z", I32,
                                       ir::Value::constInt(1, I32),
                                       ir::Value::constInt(1, I32)));
  auto R = B.finalize();
  const BlockProof &BP = R.FProof.Blocks.at("entry");
  ASSERT_EQ(BP.Lines.size(), 3u);
  EXPECT_FALSE(BP.Lines[1].SrcCmd.has_value()); // source lnop
  EXPECT_TRUE(BP.Lines[1].TgtCmd.has_value());
  EXPECT_EQ(R.TgtF.Blocks[0].Insts.size(), 3u);
}

TEST(ProofBuilderTest, AssnRangeWithinBlock) {
  ir::Module M = parse(LoopFn);
  ProofBuilder B(M.Funcs[0]);
  auto X = B.slotOfSrc("entry", 0);
  auto Br = B.slotOfSrc("entry", 1);
  B.assn(fact("x", 3), Side::Src, PPoint::afterSlot(X),
         PPoint::beforeSlot(Br));
  auto R = B.finalize();
  const BlockProof &BP = R.FProof.Blocks.at("entry");
  EXPECT_FALSE(BP.AtEntry.Src.count(fact("x", 3)));
  EXPECT_TRUE(BP.Lines[0].After.Src.count(fact("x", 3)));
  EXPECT_FALSE(BP.Lines[1].After.Src.count(fact("x", 3)));
}

TEST(ProofBuilderTest, AssnCyclicCoverage) {
  // A fact born in the entry and used inside the loop must cover the
  // whole loop body (the path can go around the back edge).
  ir::Module M = parse(LoopFn);
  ProofBuilder B(M.Funcs[0]);
  auto X = B.slotOfSrc("entry", 0);
  auto Y = B.slotOfSrc("header", 0);
  B.assn(fact("x", 3), Side::Src, PPoint::afterSlot(X),
         PPoint::beforeSlot(Y));
  auto R = B.finalize();
  const BlockProof &Header = R.FProof.Blocks.at("header");
  EXPECT_TRUE(Header.AtEntry.Src.count(fact("x", 3)));
  // The cyclic extension covers the whole header including its end.
  EXPECT_TRUE(Header.Lines.back().After.Src.count(fact("x", 3)));
  // ... but not the done block (the use is unreachable from there).
  EXPECT_FALSE(
      R.FProof.Blocks.at("done").AtEntry.Src.count(fact("x", 3)));
}

TEST(ProofBuilderTest, MaydiffBetweenDominanceRegion) {
  ir::Module M = parse(LoopFn);
  ProofBuilder B(M.Funcs[0]);
  auto Outer = B.slotOfSrc("entry", 0);
  auto Inner = B.slotOfSrc("header", 0);
  B.maydiffBetween(RegT{"y", Tag::Phy}, Outer, Inner);
  auto R = B.finalize();
  // In the maydiff set after the outer def...
  EXPECT_TRUE(R.FProof.Blocks.at("entry").Lines[0].After.Maydiff.count(
      RegT{"y", Tag::Phy}));
  // ... and at the header entry, but not after the inner def.
  EXPECT_TRUE(R.FProof.Blocks.at("header").AtEntry.Maydiff.count(
      RegT{"y", Tag::Phy}));
  EXPECT_FALSE(
      R.FProof.Blocks.at("header").Lines[0].After.Maydiff.count(
          RegT{"y", Tag::Phy}));
  // ... and not before the outer def.
  EXPECT_FALSE(R.FProof.Blocks.at("entry").AtEntry.Maydiff.count(
      RegT{"y", Tag::Phy}));
}

TEST(ProofJsonTest, RoundTripsRealProofs) {
  ir::Module Src = parse(R"(
declare void @foo(i32)
define void @m(i1 %c, i32 %x, ptr %q) {
entry:
  %p = alloca i32, 1
  store i32 42, ptr %p
  br i1 %c, label %left, label %right
left:
  %a = load i32, ptr %p
  call void @foo(i32 %a)
  br label %exit
right:
  store i32 %x, ptr %p
  br label %exit
exit:
  %b = load i32, ptr %p
  store i32 %b, ptr %q
  ret void
}
)");
  auto Pass = passes::makePass("mem2reg", passes::BugConfig::fixed());
  auto PR = Pass->run(Src, true);
  std::string Text = proofgen::proofToText(PR.Proof);
  std::string Err;
  auto Back = proofgen::proofFromText(Text, &Err);
  ASSERT_TRUE(Back) << Err;
  // The round-tripped proof must still validate...
  auto VR = checker::validate(Src, PR.Tgt, *Back);
  EXPECT_EQ(VR.countFailed(), 0u) << VR.firstFailure();
  // ... and serialize identically (canonical form).
  EXPECT_EQ(proofgen::proofToText(*Back), Text);
}

// --- The TCB property: corrupted proofs are rejected, not accepted ------------

struct Corruption {
  const char *Name;
  void (*Apply)(Proof &, RNG &);
};

void dropARule(Proof &P, RNG &R) {
  for (auto &F : P.Functions)
    for (auto &B : F.second.Blocks)
      for (auto &L : B.second.Lines)
        if (!L.Rules.empty()) {
          L.Rules.erase(L.Rules.begin() + R.below(L.Rules.size()));
          return;
        }
}

void strengthenAnAssertion(Proof &P, RNG &) {
  // Claim a fact nobody established: %zz == 1 on the source side.
  for (auto &F : P.Functions)
    for (auto &B : F.second.Blocks)
      for (auto &L : B.second.Lines) {
        L.After.Src.insert(fact("zz", 1));
        return;
      }
}

void shrinkTheMaydiff(Proof &P, RNG &) {
  for (auto &F : P.Functions)
    for (auto &B : F.second.Blocks)
      for (auto &L : B.second.Lines)
        if (!L.After.Maydiff.empty()) {
          L.After.Maydiff.erase(L.After.Maydiff.begin());
          return;
        }
}

void misalignACommand(Proof &P, RNG &) {
  for (auto &F : P.Functions)
    for (auto &B : F.second.Blocks)
      for (auto &L : B.second.Lines)
        if (L.SrcCmd && L.SrcCmd->result()) {
          L.SrcCmd = L.SrcCmd->withResult(*L.SrcCmd->result() + "_oops");
          return;
        }
}

class CorruptedProofs : public ::testing::TestWithParam<Corruption> {};

TEST_P(CorruptedProofs, AreRejectedNotAccepted) {
  ir::Module Src = parse(R"(
declare void @sink(i32)
define void @f(i32 %a) {
entry:
  %p = alloca i32, 1
  store i32 %a, ptr %p
  %v = load i32, ptr %p
  %x = add i32 %v, 1
  %y = add i32 %x, 2
  call void @sink(i32 %y)
  ret void
}
)");
  ir::Module Cur = Src;
  RNG R(99);
  unsigned Rejected = 0, Total = 0;
  for (auto &Pass : passes::makeO2Pipeline(passes::BugConfig::fixed())) {
    auto PR = Pass->run(Cur, true);
    Proof Bad = PR.Proof;
    GetParam().Apply(Bad, R);
    auto VR = checker::validate(Cur, PR.Tgt, Bad);
    // Either the corruption was a no-op for this pass (nothing to mutate)
    // or it must be rejected. To keep the test meaningful, count.
    bool Mutated = !(proofgen::proofToText(Bad) ==
                     proofgen::proofToText(PR.Proof));
    if (Mutated) {
      ++Total;
      if (VR.countFailed() > 0)
        ++Rejected;
    }
    Cur = PR.Tgt;
  }
  ASSERT_GT(Total, 0u) << "corruption never applied";
  EXPECT_EQ(Rejected, Total);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, CorruptedProofs,
    ::testing::Values(Corruption{"StrengthenAssertion",
                                 strengthenAnAssertion},
                      Corruption{"ShrinkMaydiff", shrinkTheMaydiff},
                      Corruption{"MisalignCommand", misalignACommand}),
    [](const ::testing::TestParamInfo<Corruption> &I) {
      return I.param.Name;
    });

TEST(CorruptedProofs, DroppedRulesNeverFlipToAccepted) {
  // Dropping a rule may still validate (automation can re-derive), but it
  // must never validate something the full proof would not.
  ir::Module Src = parse(R"(
declare void @sink(i32)
define void @g(i32 %a) {
entry:
  %x = add i32 %a, 1
  %y = add i32 %x, 2
  call void @sink(i32 %y)
  ret void
}
)");
  auto Pass = passes::makePass("instcombine", passes::BugConfig::fixed());
  auto PR = Pass->run(Src, true);
  RNG R(7);
  Proof Bad = PR.Proof;
  dropARule(Bad, R);
  auto Full = checker::validate(Src, PR.Tgt, PR.Proof);
  auto Dropped = checker::validate(Src, PR.Tgt, Bad);
  EXPECT_EQ(Full.countFailed(), 0u);
  EXPECT_LE(Dropped.countValidated(), Full.countValidated());
}

} // namespace
