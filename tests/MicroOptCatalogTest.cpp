//===- tests/MicroOptCatalogTest.cpp - One test per micro-optimization --------===//
//
// The instcombine catalog (paper Appendix D names): for every installed
// micro-optimization there is a minimal trigger program; the test checks
// that the optimization fires, that the generated proof validates, and
// that the optimized program refines the original under the interpreter.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "checker/Validator.h"
#include "interp/Interp.h"
#include "ir/Parser.h"
#include "passes/InstCombine.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::passes;

namespace {

struct OptCase {
  const char *Opt;  // micro-opt name counted by the pass
  const char *Body; // body of @f(i32 %a, i32 %b); %r is sunk
};

// Each body defines %r (i32 unless noted) from %a/%b; the harness wraps
// it into a function and passes %r to @sink.
const OptCase Cases[] = {
    {"add-zero", "%r = add i32 %a, 0"},
    {"add-comm-sub", "%r = add i32 0, %a"},
    {"add-shift", "%r = add i32 %a, %a"},
    {"add-signbit", "%r = add i32 %a, -2147483648"},
    {"bop-associativity", "%x = add i32 %a, 3\n  %r = add i32 %x, 4"},
    {"add-zext-bool",
     "%c = icmp eq i32 %a, %b\n  %x = zext i1 %c to i32\n  %r = add i32 "
     "%x, 7"},
    {"add-sub", "%x = sub i32 %a, %b\n  %r = add i32 %x, %b"},
    {"add-or-and",
     "%z = or i32 %a, %b\n  %x = and i32 %a, %b\n  %r = add i32 %z, %x"},
    {"add-xor-and",
     "%z = xor i32 %a, %b\n  %x = and i32 %a, %b\n  %r = add i32 %z, %x"},
    {"sub-zero", "%r = sub i32 %a, 0"},
    {"sub-remove-same", "%r = sub i32 %a, %a"},
    {"sub-mone", "%r = sub i32 -1, %a"},
    {"sub-const-add", "%x = add i32 %a, 9\n  %r = sub i32 %x, 4"},
    {"sub-sub", "%x = sub i32 %a, 2\n  %r = sub i32 %x, 3"},
    {"sub-const-not", "%x = xor i32 %a, -1\n  %r = sub i32 6, %x"},
    {"sub-add", "%x = add i32 %a, %b\n  %r = sub i32 %x, %b"},
    {"sub-remove", "%x = add i32 %a, %b\n  %r = sub i32 %a, %x"},
    {"sub-shl", "%x = shl i32 %a, 3\n  %r = sub i32 0, %x"},
    {"sub-or-xor",
     "%z = or i32 %a, %b\n  %x = xor i32 %a, %b\n  %r = sub i32 %z, %x"},
    {"sdiv-mone", "%r = sdiv i32 %a, -1"},
    {"mul-zero", "%r = mul i32 %a, 0"},
    {"mul-one", "%r = mul i32 %a, 1"},
    {"mul-mone", "%r = mul i32 %a, -1"},
    {"mul-shl", "%r = mul i32 %a, 16"},
    {"mul-neg",
     "%x = sub i32 0, %a\n  %z = sub i32 0, %b\n  %r = mul i32 %x, %z"},
    {"and-same", "%r = and i32 %a, %a"},
    {"and-undef", "%r = and i32 %a, undef"},
    {"and-zero", "%r = and i32 %a, 0"},
    {"and-mone", "%r = and i32 %a, -1"},
    {"and-not", "%x = xor i32 %a, -1\n  %r = and i32 %a, %x"},
    {"and-or", "%x = or i32 %a, %b\n  %r = and i32 %a, %x"},
    {"and-de-morgan",
     "%na = xor i32 %a, -1\n  %nb = xor i32 %b, -1\n  %r = and i32 %na, "
     "%nb"},
    {"or-same", "%r = or i32 %a, %a"},
    {"or-undef", "%r = or i32 %a, undef"},
    {"or-zero", "%r = or i32 %a, 0"},
    {"or-mone", "%r = or i32 %a, -1"},
    {"or-not", "%x = xor i32 %a, -1\n  %r = or i32 %a, %x"},
    {"or-and", "%x = and i32 %a, %b\n  %r = or i32 %a, %x"},
    {"or-xor",
     "%z = xor i32 %a, %b\n  %x = and i32 %a, %b\n  %r = or i32 %z, %x"},
    {"xor-same", "%r = xor i32 %a, %a"},
    {"xor-undef", "%r = xor i32 %a, undef"},
    {"xor-zero", "%r = xor i32 %a, 0"},
    {"shift-zero1", "%r = shl i32 %a, 0"},
    {"shift-zero2", "%r = shl i32 0, %a"},
    {"shift-undef1", "%r = shl i32 %a, undef"},
    {"icmp-same", "%c = icmp sle i32 %a, %a\n  %r = zext i1 %c to i32"},
    {"icmp-eq-sub",
     "%x = sub i32 %a, %b\n  %c = icmp eq i32 %x, 0\n  %r = zext i1 %c "
     "to i32"},
    {"icmp-ne-sub",
     "%x = sub i32 %a, %b\n  %c = icmp ne i32 %x, 0\n  %r = zext i1 %c "
     "to i32"},
    {"icmp-eq-xor",
     "%x = xor i32 %a, %b\n  %c = icmp eq i32 %x, 0\n  %r = zext i1 %c "
     "to i32"},
    {"icmp-ne-xor",
     "%x = xor i32 %a, %b\n  %c = icmp ne i32 %x, 0\n  %r = zext i1 %c "
     "to i32"},
    {"icmp-eq-srem",
     "%x = srem i32 %a, 1\n  %c = icmp eq i32 %x, 0\n  %r = zext i1 %c "
     "to i32"},
    {"icmp-swap", "%c = icmp sgt i32 7, %a\n  %r = zext i1 %c to i32"},
    {"select-true", "%r = select i1 1, i32 %a, %b"},
    {"select-false", "%r = select i1 0, i32 %a, %b"},
    {"select-same",
     "%c = icmp slt i32 %a, %b\n  %r = select i1 %c, i32 %a, %a"},
    {"trunc-zext", "%x = zext i32 %a to i64\n  %r = trunc i64 %x to i32"},
    {"zext-zext",
     "%s = trunc i32 %a to i8\n  %x = zext i8 %s to i16\n  %y = zext i16 "
     "%x to i64\n  %r = trunc i64 %y to i32"},
    {"sext-sext",
     "%s = trunc i32 %a to i8\n  %x = sext i8 %s to i16\n  %y = sext i16 "
     "%x to i64\n  %r = trunc i64 %y to i32"},
    {"sext-zext",
     "%s = trunc i32 %a to i8\n  %x = zext i8 %s to i16\n  %y = sext i16 "
     "%x to i64\n  %r = trunc i64 %y to i32"},
    {"trunc-trunc",
     "%w = zext i32 %a to i64\n  %x = trunc i64 %w to i16\n  %s = trunc "
     "i16 %x to i8\n  %r = zext i8 %s to i32"},
    {"bitcast-sametype", "%r = bitcast i32 %a to i32"},
    {"gep-zero",
     "%q = gep ptr @G, i64 0\n  %v = load i32, ptr %q\n  %r = add i32 "
     "%v, %a"},
    {"inttoptr-ptrtoint",
     "%x = ptrtoint ptr @G to i64\n  %q = inttoptr i64 %x to ptr\n  %v = "
     "load i32, ptr %q\n  %r = add i32 %v, %a"},
    {"udiv-one", "%r = udiv i32 %a, 1"},
    {"urem-one", "%r = urem i32 %a, 1"},
    {"lshr-zero", "%r = lshr i32 %a, 0"},
    {"ashr-zero", "%r = ashr i32 %a, 0"},
    {"or-xor2", "%x = xor i32 %a, %b\n  %r = or i32 %x, %b"},
    {"or-or", "%x = or i32 %a, %b\n  %r = or i32 %x, %b"},
    {"icmp-eq-add-add",
     "%x = add i32 %a, 5\n  %y = add i32 %b, 5\n  %c = icmp eq i32 %x, "
     "%y\n  %r = zext i1 %c to i32"},
    {"icmp-ne-add-add",
     "%x = add i32 %a, 5\n  %y = add i32 %b, 5\n  %c = icmp ne i32 %x, "
     "%y\n  %r = zext i1 %c to i32"},
    {"select-icmp-eq",
     "%c = icmp eq i32 %a, 3\n  %r = select i1 %c, i32 3, %a"},
    {"select-icmp-ne",
     "%c = icmp ne i32 %a, 3\n  %r = select i1 %c, i32 %a, 3"},
    {"fold-phi-bin-const",
     "%c = icmp slt i32 %a, %b\n  br i1 %c, label %l, label %m\nl:\n  %x1 "
     "= add i32 %a, 7\n  br label %join\nm:\n  %x2 = add i32 %b, 7\n  br "
     "label %join\njoin:\n  %r = phi i32 [ %x1, %l ], [ %x2, %m ]"},
    {"neg-val", "%x = sub i32 0, %a\n  %r = sub i32 0, %x"},
    {"xor-not", "%x = xor i32 %a, -1\n  %r = xor i32 %x, -1"},
    {"xor-xor", "%x = xor i32 %a, 12\n  %r = xor i32 %x, 10"},
    {"and-and", "%x = and i32 %a, 12\n  %r = and i32 %x, 10"},
    {"or-const", "%x = or i32 %a, 12\n  %r = or i32 %x, 10"},
    {"shl-shl", "%x = shl i32 %a, 3\n  %r = shl i32 %x, 5"},
    {"lshr-lshr", "%x = lshr i32 %a, 3\n  %r = lshr i32 %x, 5"},
    {"sdiv-one", "%r = sdiv i32 %a, 1"},
    {"srem-one", "%r = srem i32 %a, 1"},
    {"srem-mone", "%r = srem i32 %a, -1"},
    {"icmp-ult-zero",
     "%c = icmp ult i32 %a, 0\n  %r = zext i1 %c to i32"},
    {"icmp-uge-zero",
     "%c = icmp uge i32 %a, 0\n  %r = zext i1 %c to i32"},
    {"icmp-inverse",
     "%c = icmp slt i32 %a, %b\n  %n = xor i1 %c, 1\n  %r = zext i1 %n "
     "to i32"},
    {"select-not-cond",
     "%t = trunc i32 %a to i1\n  %n = xor i1 %t, 1\n  %r = select i1 "
     "%n, i32 %a, %b"},
    {"sdiv-sub-srem",
     "%y = srem i32 %a, %b\n  %x = sub i32 %a, %y\n  %r = sdiv i32 %x, "
     "%b"},
    {"udiv-sub-urem",
     "%y = urem i32 %a, %b\n  %x = sub i32 %a, %y\n  %r = udiv i32 %x, "
     "%b"},
    {"lshr-zero2", "%r = lshr i32 0, %a"},
    {"ashr-zero2", "%r = ashr i32 0, %a"},
    {"icmp-ule-mone",
     "%c = icmp ule i32 %a, -1\n  %r = zext i1 %c to i32"},
    {"icmp-ugt-mone",
     "%c = icmp ugt i32 %a, -1\n  %r = zext i1 %c to i32"},
    {"icmp-sge-smin",
     "%c = icmp sge i32 %a, -2147483648\n  %r = zext i1 %c to i32"},
    {"icmp-slt-smin",
     "%c = icmp slt i32 %a, -2147483648\n  %r = zext i1 %c to i32"},
    {"comm-canonicalize", "%r = mul i32 3, %a"},
    {"dead-code-elim", "%dead = mul i32 %a, %b\n  %r = add i32 %a, 1"},
};

class MicroOpt : public ::testing::TestWithParam<OptCase> {};

TEST_P(MicroOpt, FiresValidatesAndRefines) {
  std::string Text = std::string(R"(
@G = global i32, 4
declare void @sink(i32)
define void @f(i32 %a, i32 %b) {
entry:
  )") + GetParam().Body + R"(
  call void @sink(i32 %r)
  ret void
}
)";
  std::string Err;
  auto Src = ir::parseModule(Text, &Err);
  ASSERT_TRUE(Src) << Err << "\n" << Text;
  std::vector<std::string> VErrs;
  ASSERT_TRUE(analysis::verifyModule(*Src, VErrs)) << VErrs[0];

  InstCombine IC(BugConfig::fixed());
  PassResult PR = IC.run(*Src, /*GenProof=*/true);
  auto It = IC.rewriteCounts().find(GetParam().Opt);
  ASSERT_TRUE(It != IC.rewriteCounts().end() && It->second >= 1)
      << GetParam().Opt << " did not fire:\n"
      << Text;

  VErrs.clear();
  EXPECT_TRUE(analysis::verifyModule(PR.Tgt, VErrs))
      << (VErrs.empty() ? "" : VErrs[0]);
  auto VR = checker::validate(*Src, PR.Tgt, PR.Proof);
  EXPECT_EQ(VR.countFailed(), 0u)
      << GetParam().Opt << ": " << VR.firstFailure();

  for (auto [A, B] : {std::pair<int64_t, int64_t>{3, 4},
                      {0, 0},
                      {-7, 2},
                      {2147483647, -1}}) {
    interp::InterpOptions Opts;
    auto RS = interp::run(*Src, "f", {A, B}, Opts);
    auto RT = interp::run(PR.Tgt, "f", {A, B}, Opts);
    EXPECT_TRUE(interp::refines(RS, RT))
        << GetParam().Opt << " broke refinement for (" << A << "," << B
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, MicroOpt, ::testing::ValuesIn(Cases),
    [](const ::testing::TestParamInfo<OptCase> &I) {
      std::string Name = I.param.Opt;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(Catalog, EveryInstalledOptHasATriggerCase) {
  std::set<std::string> Covered;
  for (const OptCase &C : Cases)
    Covered.insert(C.Opt);
  std::vector<std::string> Missing;
  for (const std::string &Name : InstCombine::microOptNames()) {
    // i1-only variants are covered indirectly by the workload suite.
    if (Name == "add-onebit" || Name == "sub-onebit" || Name == "mul-bool")
      continue;
    if (!Covered.count(Name))
      Missing.push_back(Name);
  }
  EXPECT_TRUE(Missing.empty())
      << "no trigger case for: " << Missing.front() << " (+"
      << Missing.size() - 1 << " more)";
}

} // namespace
