//===- tests/ChaosTest.cpp - Fault injection & degradation ----------------===//
//
// The deterministic chaos harness (support/FaultInjection.h) and every
// degradation ladder it exercises (DESIGN.md §13), bottom-up:
//
//   ChaosGrammar   schedule parsing: unknown sites and malformed params
//                  are hard errors; every/after/at/ppm fire on exactly
//                  the scheduled hits; counters account for every probe.
//   ChaosProtocol  frame I/O under injected partial transfers, EINTR and
//                  mid-frame disconnects (the retry loops of satellite 1).
//   ChaosPool      pool.submit degrades to caller-runs: capacity loss,
//                  never work loss.
//   ChaosDriver    unit.run / unit.hang isolation: a crashing or hanging
//                  unit becomes a structured outcome while its batch
//                  siblings validate normally, bit-identically.
//   ChaosCache     disk faults walk the rw -> ro -> off ladder; a sick
//                  disk costs throughput, never a wrong verdict.
//   ChaosService   the three headline invariants — every accepted request
//                  is answered, completed verdicts are bit-identical to a
//                  fault-free run, quarantine stops repeat offenders.
//
// Suite names all contain "Chaos" so the TSan/ASan sweeps in ci.yml pick
// the whole file up. The fault registry is process-global, so every test
// scopes its schedule with ScopedChaos (disarms on destruction) — under
// ctest each TEST is its own process, but the guard keeps same-process
// runs (e.g. --gtest_filter=Chaos*) honest too.
//
//===----------------------------------------------------------------------===//

#include "cache/Fingerprint.h"
#include "cache/ValidationCache.h"
#include "cache/Verdict.h"
#include "driver/Driver.h"
#include "plan/PlanManager.h"
#include "server/Service.h"
#include "support/Backoff.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include "workload/RandomProgram.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

using namespace crellvm;

namespace {

/// Arms a schedule for the lifetime of one scope and disarms on exit, so
/// no test can leak faults into the next.
struct ScopedChaos {
  explicit ScopedChaos(const std::string &Spec) {
    std::string Err;
    Ok = fault::configure(Spec, &Err);
    EXPECT_TRUE(Ok) << Err;
  }
  ~ScopedChaos() { fault::disarm(); }
  bool Ok;
};

std::string freshDir(const char *Tag) {
  static std::atomic<unsigned> Counter{0};
  return (std::filesystem::temp_directory_path() /
          ("crellvm-chaos-" + std::string(Tag) + "." +
           std::to_string(::getpid()) + "." +
           std::to_string(Counter.fetch_add(1))))
      .string();
}

struct DirGuard {
  std::string Dir;
  explicit DirGuard(std::string D) : Dir(std::move(D)) {}
  ~DirGuard() {
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
  }
};

/// The verdict-relevant slice of a StatsMap (counts only, no timings):
/// what "bit-identical" means for batch runs.
std::map<std::string, server::PassVerdicts>
verdictsOf(const driver::StatsMap &S) {
  return server::passVerdictsOf(S);
}

driver::BatchReport seededBatch(const std::vector<uint64_t> &Seeds,
                                const driver::BatchOptions &BOpts) {
  driver::DriverOptions DOpts;
  DOpts.WriteFiles = false;
  return driver::runBatchValidated(
      passes::BugConfig::fixed(), DOpts, Seeds.size(),
      [&](size_t I) {
        workload::GenOptions G;
        G.Seed = Seeds[I];
        return workload::generateModule(G);
      },
      BOpts);
}

//===----------------------------------------------------------------------===//
// ChaosGrammar
//===----------------------------------------------------------------------===//

TEST(ChaosGrammar, RejectsUnknownSitesAndMalformedParams) {
  std::string Err;
  EXPECT_FALSE(fault::configure("disk.teleport:every=2", &Err));
  EXPECT_NE(Err.find("disk.teleport"), std::string::npos);
  EXPECT_FALSE(fault::configure("disk.read:frobs=2", &Err));
  EXPECT_FALSE(fault::configure("disk.read:every=x", &Err));
  EXPECT_FALSE(fault::configure("disk.read:every=0", &Err));
  EXPECT_FALSE(fault::configure("disk.read", &Err))
      << "a site with no schedule is a typo, not a no-op";
  EXPECT_FALSE(fault::configure("disk.read:ms=5", &Err))
      << "an argument alone is not a firing schedule";
  EXPECT_FALSE(fault::configure("disk.read:ppm=1000001", &Err));
  EXPECT_FALSE(fault::configure("seed=banana", &Err));

  // A failed configure must leave the previous schedule untouched.
  ASSERT_TRUE(fault::configure("disk.read:at=1", &Err)) << Err;
  EXPECT_FALSE(fault::configure("disk.teleport:every=2", &Err));
  EXPECT_TRUE(fault::armed());
  EXPECT_EQ(fault::activeSpec(), "disk.read:at=1");
  fault::disarm();
}

TEST(ChaosGrammar, EveryAfterAtFireOnExactHits) {
  {
    ScopedChaos C("disk.read:every=3");
    std::vector<int> Fired;
    for (int Hit = 1; Hit <= 9; ++Hit)
      if (fault::shouldFail("disk.read"))
        Fired.push_back(Hit);
    EXPECT_EQ(Fired, (std::vector<int>{3, 6, 9}));
  }
  {
    ScopedChaos C("disk.write:after=2");
    std::vector<int> Fired;
    for (int Hit = 1; Hit <= 5; ++Hit)
      if (fault::shouldFail("disk.write"))
        Fired.push_back(Hit);
    EXPECT_EQ(Fired, (std::vector<int>{3, 4, 5}));
  }
  {
    ScopedChaos C("sock.read:at=4");
    std::vector<int> Fired;
    for (int Hit = 1; Hit <= 8; ++Hit)
      if (fault::shouldFail("sock.read"))
        Fired.push_back(Hit);
    EXPECT_EQ(Fired, (std::vector<int>{4}));
  }
  // Unscheduled sites never fire even while armed.
  {
    ScopedChaos C("disk.read:every=1");
    EXPECT_FALSE(fault::shouldFail("disk.write"));
  }
  // Disarmed, nothing fires and counters are empty.
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::shouldFail("disk.read"));
  EXPECT_TRUE(fault::counters().empty());
  EXPECT_EQ(fault::totalInjected(), 0u);
}

TEST(ChaosGrammar, PpmScheduleIsDeterministicPerSeed) {
  auto Pattern = [](const std::string &Spec) {
    ScopedChaos C(Spec);
    std::vector<bool> P;
    for (int Hit = 0; Hit != 200; ++Hit)
      P.push_back(fault::shouldFail("queue.admit"));
    return P;
  };
  std::vector<bool> A = Pattern("seed=7;queue.admit:ppm=400000");
  EXPECT_EQ(A, Pattern("seed=7;queue.admit:ppm=400000"))
      << "same seed, same spec: the firing pattern must replay exactly";
  size_t FiredA = static_cast<size_t>(std::count(A.begin(), A.end(), true));
  EXPECT_GT(FiredA, 0u);
  EXPECT_LT(FiredA, A.size());
  // ppm=1000000 is "always".
  std::vector<bool> All = Pattern("queue.admit:ppm=1000000");
  EXPECT_EQ(std::count(All.begin(), All.end(), true),
            static_cast<long>(All.size()));
}

TEST(ChaosGrammar, CountersAccountForEveryProbe) {
  ScopedChaos C("unit.run:every=2;unit.hang:at=1:ms=77");
  for (int I = 0; I != 10; ++I)
    fault::shouldFail("unit.run");
  uint64_t Arg = 0;
  EXPECT_TRUE(fault::shouldFail("unit.hang", &Arg));
  EXPECT_EQ(Arg, 77u) << "the ms argument must reach the firing site";

  auto Counters = fault::counters();
  ASSERT_EQ(Counters.count("unit.run"), 1u);
  EXPECT_EQ(Counters["unit.run"].Hits, 10u);
  EXPECT_EQ(Counters["unit.run"].Injected, 5u);
  EXPECT_EQ(Counters["unit.hang"].Hits, 1u);
  EXPECT_EQ(Counters["unit.hang"].Injected, 1u);
  EXPECT_EQ(fault::totalInjected(), 6u);

  fault::disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_TRUE(fault::activeSpec().empty());
  EXPECT_TRUE(fault::counters().empty());
}

TEST(ChaosGrammar, EnvironmentConfiguresLikeTheFlag) {
  ASSERT_EQ(::setenv("CRELLVM_CHAOS", "disk.rename:at=2", 1), 0);
  std::string Err;
  EXPECT_TRUE(fault::configureFromEnv(&Err)) << Err;
  EXPECT_TRUE(fault::armed());
  EXPECT_EQ(fault::activeSpec(), "disk.rename:at=2");
  fault::disarm();

  ASSERT_EQ(::setenv("CRELLVM_CHAOS", "bogus.site:every=1", 1), 0);
  EXPECT_FALSE(fault::configureFromEnv(&Err));
  EXPECT_FALSE(Err.empty());

  ASSERT_EQ(::unsetenv("CRELLVM_CHAOS"), 0);
  EXPECT_TRUE(fault::configureFromEnv(&Err)) << "unset env is not an error";
  EXPECT_FALSE(fault::armed());
}

//===----------------------------------------------------------------------===//
// ChaosProtocol
//===----------------------------------------------------------------------===//

TEST(ChaosProtocol, ShortTransfersAndEintrStillRoundTripFrames) {
  // One byte per syscall plus periodic EINTR: the retry loops must
  // reassemble every frame intact. (Never every=1 on eintr — an EINTR on
  // every attempt can make no progress by construction.)
  ScopedChaos C("sock.short:every=1;sock.eintr:every=5");
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);
  const std::string Payload(300, 'x');
  for (int I = 0; I != 3; ++I) {
    ASSERT_TRUE(server::writeFrame(Fds[1], Payload + std::to_string(I)));
    std::string Out, Err;
    ASSERT_TRUE(server::readFrame(Fds[0], Out, &Err)) << Err;
    EXPECT_EQ(Out, Payload + std::to_string(I));
  }
  EXPECT_GT(fault::totalInjected(), 0u);
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(ChaosProtocol, InjectedDisconnectsSurfaceAsFrameErrors) {
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);
  {
    ScopedChaos C("sock.write:at=1");
    EXPECT_FALSE(server::writeFrame(Fds[1], "doomed"));
  }
  ASSERT_TRUE(server::writeFrame(Fds[1], "fine"));
  {
    ScopedChaos C("sock.read:at=1");
    std::string Out, Err;
    EXPECT_FALSE(server::readFrame(Fds[0], Out, &Err));
  }
  ::close(Fds[0]);
  ::close(Fds[1]);
}

//===----------------------------------------------------------------------===//
// ChaosPool
//===----------------------------------------------------------------------===//

TEST(ChaosPool, SubmitFaultDegradesToCallerRunsWithoutWorkLoss) {
  ScopedChaos C("pool.submit:every=2");
  ThreadPool Pool(2);
  constexpr int N = 20;
  std::atomic<int> Ran{0};
  for (int I = 0; I != N; ++I)
    Pool.submit([&] { ++Ran; });
  Pool.wait();
  EXPECT_EQ(Ran.load(), N)
      << "a degraded submit runs the task inline — it must never drop it";
  EXPECT_EQ(fault::counters()["pool.submit"].Injected, N / 2u);
}

//===----------------------------------------------------------------------===//
// ChaosDriver
//===----------------------------------------------------------------------===//

TEST(ChaosDriver, ThrowingUnitIsIsolatedFromItsBatch) {
  const std::vector<uint64_t> Seeds = {500, 501, 502, 503, 504, 505};
  // Jobs=1 probes units in index order, so hit 2 is exactly unit 1.
  driver::BatchOptions BOpts;
  BOpts.Jobs = 1;

  std::mutex M;
  std::vector<driver::UnitOutcome> Outcomes(Seeds.size(),
                                            driver::UnitOutcome::Ok);
  std::vector<std::string> Details(Seeds.size());
  int Callbacks = 0;
  BOpts.OnUnitDone = [&](size_t I, const driver::StatsMap &,
                         driver::UnitOutcome O, const std::string &D) {
    std::lock_guard<std::mutex> L(M);
    ++Callbacks;
    Outcomes[I] = O;
    Details[I] = D;
  };

  driver::BatchReport Faulty;
  {
    ScopedChaos C("unit.run:at=2");
    Faulty = seededBatch(Seeds, BOpts);
  }
  EXPECT_EQ(Callbacks, static_cast<int>(Seeds.size()))
      << "exactly one OnUnitDone per unit";
  EXPECT_EQ(Faulty.InternalErrors, 1u);
  EXPECT_EQ(Faulty.Units, Seeds.size());
  EXPECT_EQ(Outcomes[1], driver::UnitOutcome::InternalError);
  EXPECT_NE(Details[1].find("unit.run"), std::string::npos)
      << "the exception text must reach the caller: " << Details[1];

  // The survivors' verdicts are bit-identical to a fault-free batch over
  // just those seeds: the crash was isolated, not contagious.
  std::vector<uint64_t> Survivors = {500, 502, 503, 504, 505};
  driver::BatchOptions Plain;
  Plain.Jobs = 1;
  EXPECT_EQ(verdictsOf(Faulty.Stats),
            verdictsOf(seededBatch(Survivors, Plain).Stats));
}

TEST(ChaosDriver, WatchdogAnswersHungUnitWhileBatchContinues) {
  const std::vector<uint64_t> Seeds = {510, 511, 512, 513};
  driver::BatchOptions BOpts;
  BOpts.Jobs = 2;
  // Far above any honest unit's validation time — even under TSan/ASan
  // slowdown — so only the injected hang can trip it.
  BOpts.UnitTimeoutMs = 1500;

  std::mutex M;
  std::map<size_t, driver::UnitOutcome> Outcomes;
  std::map<size_t, std::string> Details;
  BOpts.OnUnitDone = [&](size_t I, const driver::StatsMap &Unit,
                         driver::UnitOutcome O, const std::string &D) {
    std::lock_guard<std::mutex> L(M);
    Outcomes[I] = O;
    Details[I] = D;
    if (O == driver::UnitOutcome::TimedOut) {
      EXPECT_TRUE(Unit.empty())
          << "a timed-out answer must not leak partial stats";
    }
  };

  driver::BatchReport R;
  {
    // One unit stalls for 4s, far past the 1.5s deadline; which unit
    // draws the stall under Jobs=2 varies, the count does not.
    ScopedChaos C("unit.hang:at=1:ms=4000");
    R = seededBatch(Seeds, BOpts);
  }
  EXPECT_EQ(R.TimedOut, 1u);
  EXPECT_EQ(R.Units, Seeds.size());
  ASSERT_EQ(Outcomes.size(), Seeds.size());
  int TimedOut = 0, Ok = 0;
  for (const auto &KV : Outcomes) {
    if (KV.second == driver::UnitOutcome::TimedOut) {
      ++TimedOut;
      EXPECT_NE(Details[KV.first].find("watchdog"), std::string::npos)
          << Details[KV.first];
    } else {
      EXPECT_EQ(KV.second, driver::UnitOutcome::Ok);
      ++Ok;
    }
  }
  EXPECT_EQ(TimedOut, 1);
  EXPECT_EQ(Ok, static_cast<int>(Seeds.size()) - 1);
}

//===----------------------------------------------------------------------===//
// ChaosPlan
//===----------------------------------------------------------------------===//

// The plan.apply site simulates a guard-failure storm: every fired probe
// skips the specialized path for that call and runs the general checker
// (plan/PlanManager.h). Whatever subset of calls the schedule hits — and
// at any --jobs N, where which call draws which probe is scheduling
// noise — verdicts and verdict stats must be bit-identical to --plan=off.
TEST(ChaosPlan, ForcedGuardFailuresMidBatchNeverChangeVerdicts) {
  const std::vector<uint64_t> Seeds = {900, 901, 902, 903, 904, 905, 906,
                                       907};
  driver::BatchOptions Plain;
  Plain.Jobs = 1;
  auto Baseline = verdictsOf(seededBatch(Seeds, Plain).Stats);

  for (unsigned Jobs : {1u, 4u}) {
    plan::PlanManagerOptions PO;
    PO.Mode = plan::PlanMode::On;
    plan::PlanManager Plans(PO);

    driver::DriverOptions DOpts;
    DOpts.WriteFiles = false;
    DOpts.Plans = &Plans;
    driver::BatchOptions BOpts;
    BOpts.Jobs = Jobs;

    driver::BatchReport R;
    uint64_t Fired = 0;
    {
      ScopedChaos C("plan.apply:every=3");
      R = driver::runBatchValidated(
          passes::BugConfig::fixed(), DOpts, Seeds.size(),
          [&](size_t I) {
            workload::GenOptions G;
            G.Seed = Seeds[I];
            return workload::generateModule(G);
          },
          BOpts);
      Fired = fault::counters()["plan.apply"].Injected;
    }

    EXPECT_EQ(verdictsOf(R.Stats), Baseline) << "jobs=" << Jobs;
    EXPECT_EQ(R.InternalErrors, 0u) << "a guard failure is not an error";
    EXPECT_GT(Fired, 0u) << "the schedule must actually have fired";

    // The surviving two-thirds of calls still went through the plan: the
    // fault degrades throughput for the hit calls only.
    uint64_t Specialized = 0, Fallbacks = 0;
    for (const auto &KV : R.Stats) {
      Specialized += KV.second.PlanSpecialized;
      Fallbacks += KV.second.PlanFallbacks;
    }
    EXPECT_GT(Specialized, 0u) << "jobs=" << Jobs;
    // Forced-general calls bypass both plan counters, so specialized +
    // fallback function counts stay below the fault-free total — the gap
    // is the storm's footprint, visible in stats, invisible in verdicts.
    (void)Fallbacks;
    EXPECT_EQ(Plans.divergences(), 0u);
    EXPECT_EQ(Plans.effectiveMode(), plan::PlanMode::On)
        << "a chaos-forced guard failure must not demote the mode";
  }
}

//===----------------------------------------------------------------------===//
// ChaosCache
//===----------------------------------------------------------------------===//

TEST(ChaosCache, DiskFaultsWalkTheDegradationLadder) {
  DirGuard D(freshDir("ladder"));
  cache::ValidationCacheOptions Opts;
  Opts.Policy = cache::CachePolicy::ReadWrite;
  Opts.Dir = D.Dir;
  Opts.DemoteAfterFaults = 2;
  cache::ValidationCache VC(Opts);
  ASSERT_TRUE(VC.writable());

  auto FP = [](uint64_t Seed) {
    cache::FingerprintBuilder B;
    B.u64(Seed);
    return B.digest();
  };

  ScopedChaos C("disk.write:every=1;disk.read:every=1");
  // Two failed stores cross DemoteAfterFaults: rw -> ro.
  VC.store(FP(1), cache::Verdict{});
  VC.store(FP(2), cache::Verdict{});
  EXPECT_EQ(VC.policy(), cache::CachePolicy::ReadOnly);
  EXPECT_FALSE(VC.writable());
  EXPECT_EQ(VC.demotions(), 1u);
  // Read-only stores are no-ops (no further write faults); two failed
  // disk reads reach 2x the threshold: ro -> off.
  EXPECT_FALSE(VC.lookup(FP(3)).has_value());
  EXPECT_FALSE(VC.lookup(FP(4)).has_value());
  EXPECT_EQ(VC.policy(), cache::CachePolicy::Off);
  EXPECT_FALSE(VC.enabled()) << "off = pure pass-through for the driver";
  EXPECT_EQ(VC.demotions(), 2u);
  EXPECT_GE(VC.diskFaults(), 4u);
  EXPECT_EQ(VC.configuredPolicy(), cache::CachePolicy::ReadWrite)
      << "the ladder moves the effective policy, not the configured one";
}

TEST(ChaosCache, DegradedCacheNeverChangesAVerdict) {
  const std::vector<uint64_t> Seeds = {520, 521, 522, 523, 524};
  driver::BatchOptions BOpts;
  BOpts.Jobs = 1;

  // Baseline: no cache, no faults.
  auto Baseline = verdictsOf(seededBatch(Seeds, BOpts).Stats);

  // Every disk write fails and every disk read is corrupted; the cache
  // demotes itself while the batch runs. Verdicts must not move.
  DirGuard D(freshDir("verdicts"));
  cache::ValidationCacheOptions COpts;
  COpts.Policy = cache::CachePolicy::ReadWrite;
  COpts.Dir = D.Dir;
  COpts.DemoteAfterFaults = 2;
  cache::ValidationCache VC(COpts);

  driver::DriverOptions DOpts;
  DOpts.WriteFiles = false;
  DOpts.Cache = &VC;
  driver::BatchReport Faulty;
  {
    ScopedChaos C("disk.write:every=1;disk.corrupt:every=1");
    Faulty = driver::runBatchValidated(
        passes::BugConfig::fixed(), DOpts, Seeds.size(),
        [&](size_t I) {
          workload::GenOptions G;
          G.Seed = Seeds[I];
          return workload::generateModule(G);
        },
        BOpts);
  }
  EXPECT_EQ(verdictsOf(Faulty.Stats), Baseline)
      << "cache degradation may cost throughput, never correctness";
  EXPECT_GE(VC.demotions(), 1u) << "the sick disk must have tripped the "
                                   "ladder during the batch";
  EXPECT_EQ(Faulty.InternalErrors, 0u);
}

//===----------------------------------------------------------------------===//
// ChaosService
//===----------------------------------------------------------------------===//

server::ServiceOptions fastOptions() {
  server::ServiceOptions O;
  O.Jobs = 4;
  O.Driver.WriteFiles = false;
  return O;
}

server::Request validateSeed(uint64_t Seed, int64_t Id = 0) {
  server::Request R;
  R.Kind = server::RequestKind::Validate;
  R.Id = Id;
  R.HasSeed = true;
  R.Seed = Seed;
  return R;
}

TEST(ChaosService, EveryAcceptedRequestAnsweredUnderFaults) {
  server::ValidationService S(fastOptions());
  server::LoopbackTransport T(S);

  constexpr int N = 12;
  std::mutex M;
  std::condition_variable Cv;
  int Answered = 0;
  std::map<server::ResponseStatus, int> ByStatus;
  {
    ScopedChaos C("unit.run:every=3;queue.admit:every=5;pool.submit:every=4");
    for (int I = 0; I != N; ++I)
      T.submit(validateSeed(600 + I, I), [&](server::Response R) {
        std::lock_guard<std::mutex> L(M);
        ++ByStatus[R.Status];
        if (++Answered == N)
          Cv.notify_all();
      });
    std::unique_lock<std::mutex> L(M);
    Cv.wait(L, [&] { return Answered == N; });
  }
  // Zero verdict loss: every submit produced exactly one response, and
  // the drain equation balances — the invariant crellvm-served exits
  // nonzero on.
  EXPECT_EQ(Answered, N);
  server::ServiceCounters C = S.counters();
  EXPECT_EQ(C.Received, static_cast<uint64_t>(N));
  EXPECT_EQ(C.Accepted,
            C.Completed + C.DeadlineExpired + C.InternalErrors);
  EXPECT_EQ(C.Accepted + C.RejectedQueueFull, static_cast<uint64_t>(N))
      << "forced sheds are rejections, not losses";
  EXPECT_GT(C.InternalErrors, 0u) << "unit.run:every=3 must have fired";
  EXPECT_EQ(ByStatus[server::ResponseStatus::Ok] +
                ByStatus[server::ResponseStatus::InternalError] +
                ByStatus[server::ResponseStatus::Rejected],
            N);
}

TEST(ChaosService, CompletedVerdictsBitIdenticalToFaultFreeRun) {
  const std::vector<uint64_t> Seeds = {610, 611, 612, 613, 614, 615};

  // Fault-free baseline, one service call per seed.
  std::map<uint64_t, std::map<std::string, server::PassVerdicts>> Baseline;
  {
    server::ValidationService S(fastOptions());
    server::LoopbackTransport T(S);
    for (size_t I = 0; I != Seeds.size(); ++I) {
      server::Response R =
          T.call(validateSeed(Seeds[I], static_cast<int64_t>(I)));
      ASSERT_EQ(R.Status, server::ResponseStatus::Ok);
      Baseline[Seeds[I]] = R.Passes;
    }
  }

  // Same seeds with every fourth unit crashing: the crashed ones answer
  // internal_error, every completed one matches the baseline bit for bit.
  server::ValidationService S(fastOptions());
  server::LoopbackTransport T(S);
  int Completed = 0, Internal = 0;
  {
    ScopedChaos C("unit.run:every=4");
    for (size_t I = 0; I != Seeds.size(); ++I) {
      server::Response R =
          T.call(validateSeed(Seeds[I], static_cast<int64_t>(I)));
      if (R.Status == server::ResponseStatus::Ok) {
        ++Completed;
        EXPECT_EQ(R.Passes, Baseline[Seeds[I]])
            << "seed " << Seeds[I]
            << ": chaos may fail a unit, never skew a completed one";
      } else {
        ASSERT_EQ(R.Status, server::ResponseStatus::InternalError);
        ++Internal;
        EXPECT_FALSE(R.Reason.empty());
      }
    }
  }
  EXPECT_EQ(Internal, 1) << "6 sequential single-unit batches, every=4";
  EXPECT_EQ(Completed, static_cast<int>(Seeds.size()) - 1);
}

TEST(ChaosService, QuarantineStopsRepeatInternalErrorOffenders) {
  server::ServiceOptions O = fastOptions();
  O.QuarantineAfter = 2;
  server::ValidationService S(O);
  server::LoopbackTransport T(S);

  ScopedChaos C("unit.run:every=1"); // the unit crashes every time
  const uint64_t Seed = 620;
  server::Response R1 = T.call(validateSeed(Seed, 1));
  server::Response R2 = T.call(validateSeed(Seed, 2));
  EXPECT_EQ(R1.Status, server::ResponseStatus::InternalError);
  EXPECT_EQ(R2.Status, server::ResponseStatus::InternalError);

  // The streak reached QuarantineAfter: the same unit is now refused at
  // admission instead of burning a pool slot to crash again.
  server::Response R3 = T.call(validateSeed(Seed, 3));
  EXPECT_EQ(R3.Status, server::ResponseStatus::Rejected);
  EXPECT_EQ(R3.Reason, "quarantined");

  // A different unit is unaffected — quarantine is per identity.
  server::Response Other = T.call(validateSeed(621, 4));
  EXPECT_NE(Other.Status, server::ResponseStatus::Rejected);

  server::ServiceCounters C2 = S.counters();
  EXPECT_EQ(C2.RejectedQuarantined, 1u);
  EXPECT_EQ(C2.InternalErrors, 3u);
  EXPECT_EQ(C2.Accepted, C2.Completed + C2.DeadlineExpired + C2.InternalErrors);
}

TEST(ChaosService, ForcedShedIsClientVisibleBackpressure) {
  server::ServiceOptions O = fastOptions();
  O.StartPaused = true;
  server::ValidationService S(O);
  server::LoopbackTransport T(S);

  ScopedChaos C("queue.admit:at=1");
  std::mutex M;
  std::vector<server::Response> Rsps;
  auto Collect = [&](server::Response R) {
    std::lock_guard<std::mutex> L(M);
    Rsps.push_back(std::move(R));
  };
  T.submit(validateSeed(630, 1), Collect); // shed despite the empty queue
  {
    std::lock_guard<std::mutex> L(M);
    ASSERT_EQ(Rsps.size(), 1u);
    EXPECT_EQ(Rsps[0].Status, server::ResponseStatus::Rejected);
    EXPECT_EQ(Rsps[0].Reason, "queue_full");
    EXPECT_GE(Rsps[0].RetryAfterMs, O.RetryAfterMsFloor)
        << "a shed must carry the retry hint the client backoff honors";
  }
  EXPECT_EQ(S.counters().RejectedQueueFull, 1u);
  S.resume();
}

//===----------------------------------------------------------------------===//
// ChaosBackoff — the shared overflow-proof retry schedule
//===----------------------------------------------------------------------===//

// Every retry loop in the tree (crellvm-client --retries, the campaign
// socket backend, the cluster reattach loop) delegates its schedule to
// backoff::delayMs. The contract: monotone non-decreasing in the attempt
// number until the cap, then exactly the cap forever — even for attempt
// counts far beyond the 63 doublings that would overflow a uint64_t
// shift.
TEST(ChaosBackoff, MonotoneThenCappedNeverOverflows) {
  constexpr uint64_t Base = 25, Cap = 6400;
  uint64_t Prev = 0;
  bool SawCap = false;
  for (uint64_t Attempt = 0; Attempt != 200; ++Attempt) {
    uint64_t D = backoff::delayMs(Base, Attempt, Cap);
    EXPECT_GE(D, Prev) << "attempt " << Attempt;
    EXPECT_LE(D, Cap) << "attempt " << Attempt;
    if (SawCap)
      EXPECT_EQ(D, Cap) << "attempt " << Attempt << " left the cap";
    SawCap = SawCap || D == Cap;
    Prev = D;
  }
  EXPECT_TRUE(SawCap);
  // The attempt counts that used to shift into undefined behavior.
  EXPECT_EQ(backoff::delayMs(Base, 63, Cap), Cap);
  EXPECT_EQ(backoff::delayMs(Base, 64, Cap), Cap);
  EXPECT_EQ(backoff::delayMs(Base, 10000000000ull, Cap), Cap);
  EXPECT_EQ(backoff::delayMs(Base, UINT64_MAX, Cap), Cap);
}

TEST(ChaosBackoff, EdgesAndLegacyEquivalence) {
  // Base 0 means "no backoff configured": always 0, never the cap.
  EXPECT_EQ(backoff::delayMs(0, 0, 1000), 0u);
  EXPECT_EQ(backoff::delayMs(0, 50, 1000), 0u);
  // Base at or above the cap pins to the cap from the first attempt.
  EXPECT_EQ(backoff::delayMs(5000, 0, 1000), 1000u);
  // The client's legacy schedule (25ms << min(round, 8)) is reproduced
  // exactly inside the safe range.
  for (uint64_t Round = 0; Round != 9; ++Round)
    EXPECT_EQ(backoff::delayMs(25, Round, 25 * 256), 25ull << Round)
        << "round " << Round;
  EXPECT_EQ(backoff::delayMs(25, 9, 25 * 256), 6400u);
}

} // namespace
