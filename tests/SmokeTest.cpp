//===- tests/SmokeTest.cpp - End-to-end core pipeline smoke test -----------===//
//
// Reproduces the paper's Fig. 2 walkthrough by hand: the assoc-add
// translation, its ERHL proof, and validation — plus a corrupted variant
// that must be rejected.
//
//===----------------------------------------------------------------------===//

#include "checker/Validator.h"
#include "interp/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "proofgen/ProofBuilder.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::erhl;

namespace {

const char *AssocAddSource = R"(
declare i32 @foo(i32)

define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  %y = add i32 %x, 2
  %r = call i32 @foo(i32 %y)
  ret i32 %r
}
)";

ir::Module parse(const std::string &Text) {
  std::string Err;
  auto M = ir::parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  return *M;
}

ValT phyReg(const std::string &Name, ir::Type Ty) {
  return ValT::phy(ir::Value::reg(Name, Ty));
}

ValT c32(int64_t N) {
  return ValT::phy(ir::Value::constInt(N, ir::Type::intTy(32)));
}

/// Builds the Fig. 2 proof; NewConst = 3 is the correct translation,
/// anything else is a miscompilation the checker must reject.
std::pair<ir::Module, proofgen::Proof> translateAssocAdd(const ir::Module &M,
                                                         int64_t NewConst) {
  ir::Type I32 = ir::Type::intTy(32);
  const ir::Function &F = *M.getFunction("f");
  proofgen::ProofBuilder B(F);

  auto YSlot = B.slotOfSrc("entry", 1);
  auto XSlot = B.slotOfSrc("entry", 0);
  // [A4] Replace y := add x 2 with y := add a NewConst.
  B.replaceTgt(YSlot, ir::Instruction::binary(
                          ir::Opcode::Add, "y", I32,
                          ir::Value::reg("a", I32),
                          ir::Value::constInt(NewConst, I32)));
  // [A5] Assert x = add a 1 from its definition to the rewrite site.
  Expr XDef = Expr::bop(ir::Opcode::Add, I32, phyReg("a", I32), c32(1));
  B.assn(Pred::lessdef(Expr::val(phyReg("x", I32)), XDef), Side::Src,
         proofgen::PPoint::afterSlot(XSlot),
         proofgen::PPoint::beforeSlot(YSlot));
  // [A6] assoc_add(y, x, a, 1, 2, 3).
  Infrule R;
  R.K = InfruleKind::AddAssoc;
  R.S = Side::Src;
  R.Args = {Expr::val(phyReg("y", I32)), Expr::val(phyReg("x", I32)),
            Expr::val(phyReg("a", I32)), Expr::val(c32(1)),
            Expr::val(c32(2)), Expr::val(c32(1 + 2))};
  B.inf(R, YSlot);
  // [A9] Auto(reduce_maydiff).
  B.enableAuto("reduce_maydiff");
  B.enableAuto("transitivity");

  auto Result = B.finalize();
  ir::Module Tgt = M;
  *Tgt.getFunction("f") = Result.TgtF;
  proofgen::Proof P;
  P.Functions["f"] = Result.FProof;
  return {Tgt, P};
}

TEST(Smoke, ParserRoundTrip) {
  ir::Module M = parse(AssocAddSource);
  std::string Printed = ir::printModule(M);
  ir::Module M2 = parse(Printed);
  EXPECT_EQ(Printed, ir::printModule(M2));
}

TEST(Smoke, InterpreterRunsTheExample) {
  ir::Module M = parse(AssocAddSource);
  interp::InterpOptions Opts;
  auto R = interp::run(M, "f", {5}, Opts);
  ASSERT_EQ(R.End, interp::Outcome::Returned);
  ASSERT_EQ(R.Trace.size(), 1u);
  EXPECT_EQ(R.Trace[0].Callee, "foo");
  // foo's argument is (5 + 1) + 2 = 8.
  EXPECT_EQ(R.Trace[0].Args[0], interp::RtValue::intVal(8, 32));
}

TEST(Smoke, AssocAddValidates) {
  ir::Module Src = parse(AssocAddSource);
  auto [Tgt, P] = translateAssocAdd(Src, 3);
  auto Res = checker::validate(Src, Tgt, P);
  EXPECT_EQ(Res.countValidated(), 1u) << Res.firstFailure();
}

TEST(Smoke, AssocAddMiscompileIsRejected) {
  ir::Module Src = parse(AssocAddSource);
  auto [Tgt, P] = translateAssocAdd(Src, 4); // wrong constant
  auto Res = checker::validate(Src, Tgt, P);
  EXPECT_EQ(Res.countFailed(), 1u);
  EXPECT_NE(Res.firstFailure(), "");
}

TEST(Smoke, MiscompiledTargetBreaksRefinement) {
  ir::Module Src = parse(AssocAddSource);
  auto [Good, P1] = translateAssocAdd(Src, 3);
  auto [Bad, P2] = translateAssocAdd(Src, 4);
  interp::InterpOptions Opts;
  auto RS = interp::run(Src, "f", {5}, Opts);
  auto RG = interp::run(Good, "f", {5}, Opts);
  auto RB = interp::run(Bad, "f", {5}, Opts);
  EXPECT_TRUE(interp::refines(RS, RG));
  EXPECT_FALSE(interp::refines(RS, RB));
}

} // namespace
