//===- tests/JsonTest.cpp - JSON library unit tests ---------------------------===//

#include "json/Json.h"

#include <gtest/gtest.h>

using namespace crellvm::json;

namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Value().write(), "null");
  EXPECT_EQ(Value(true).write(), "true");
  EXPECT_EQ(Value(false).write(), "false");
  EXPECT_EQ(Value(int64_t(-42)).write(), "-42");
  EXPECT_EQ(Value("hi").write(), "\"hi\"");
}

TEST(Json, EscapesSpecialCharacters) {
  Value V(std::string("a\"b\\c\nd\te"));
  std::string W = V.write();
  std::string Err;
  auto Back = parse(W, &Err);
  ASSERT_TRUE(Back) << Err;
  EXPECT_EQ(Back->getString(), V.getString());
}

TEST(Json, ObjectKeepsInsertionOrder) {
  Value O = Value::object();
  O.set("z", 1);
  O.set("a", 2);
  O.set("z", 3); // overwrite keeps position
  EXPECT_EQ(O.write(), "{\"z\":3,\"a\":2}");
}

TEST(Json, NestedStructures) {
  Value Arr = Value::array();
  Arr.push(Value(int64_t(1)));
  Value Inner = Value::object();
  Inner.set("k", "v");
  Arr.push(std::move(Inner));
  Value Root = Value::object();
  Root.set("xs", std::move(Arr));
  std::string W = Root.write();
  EXPECT_EQ(W, "{\"xs\":[1,{\"k\":\"v\"}]}");
  std::string Err;
  auto Back = parse(W, &Err);
  ASSERT_TRUE(Back) << Err;
  EXPECT_EQ(Back->write(), W);
}

TEST(Json, ParsesWhitespaceAndFindMissing) {
  std::string Err;
  auto V = parse("  { \"a\" : [ 1 , 2 ] , \"b\" : null }  ", &Err);
  ASSERT_TRUE(V) << Err;
  EXPECT_EQ(V->get("a").size(), 2u);
  EXPECT_TRUE(V->get("b").isNull());
  EXPECT_EQ(V->find("missing"), nullptr);
}

TEST(Json, RejectsMalformed) {
  std::string Err;
  EXPECT_FALSE(parse("{", &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(parse("[1,]", &Err));
  EXPECT_FALSE(parse("{\"a\" 1}", &Err));
  EXPECT_FALSE(parse("\"unterminated", &Err));
  EXPECT_FALSE(parse("1 2", &Err)); // trailing tokens
  EXPECT_FALSE(parse("nul", &Err));
}

// The read accessors are total on untrusted input: a kind mismatch or a
// missing key yields a harmless default instead of UB (asserts fire in
// debug builds only — release builds parse hostile proof files). These
// tests run meaningfully in -DNDEBUG configurations.
#ifdef NDEBUG
TEST(Json, AccessorsFailSoftOnKindMismatch) {
  Value S("a string");
  EXPECT_FALSE(S.getBool());
  EXPECT_EQ(S.getInt(), 0);
  EXPECT_TRUE(S.elements().empty());
  EXPECT_TRUE(S.members().empty());
  EXPECT_TRUE(S.find("k") == nullptr);
  EXPECT_TRUE(S.get("k").isNull());
  Value N(int64_t(7));
  EXPECT_TRUE(N.getString().empty());
  Value Arr = Value::array();
  Arr.push(Value(int64_t(1)));
  EXPECT_TRUE(Arr.at(5).isNull()); // out of range
}

TEST(Json, MissingObjectKeyYieldsNull) {
  Value O = Value::object();
  O.set("present", Value(true));
  EXPECT_TRUE(O.get("absent").isNull());
  EXPECT_TRUE(O.find("absent") == nullptr);
}

TEST(Json, MutatorsFailSoftOnKindMismatch) {
  Value N(int64_t(1));
  N.set("k", Value(true)); // no-op, not UB
  EXPECT_EQ(N.getInt(), 1);
  Value S("x");
  S.push(Value(false)); // no-op
  EXPECT_EQ(S.getString(), "x");
}
#endif

TEST(Json, LargeIntegers) {
  std::string Err;
  auto V = parse("[9223372036854775807,-9223372036854775808]", &Err);
  ASSERT_TRUE(V) << Err;
  EXPECT_EQ(V->at(0).getInt(), INT64_MAX);
  EXPECT_EQ(V->at(1).getInt(), INT64_MIN);
}

} // namespace
