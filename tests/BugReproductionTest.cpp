//===- tests/BugReproductionTest.cpp - The paper's four bugs ---------------===//
//
// Reproduces the paper's §1.2/§7 findings with the injected historical
// bugs (DESIGN.md §4):
//
//  - PR24179 (mem2reg): validation fails; differential testing misses the
//    bug when the program never observes the promoted value, and catches
//    it only on a "realistic" program (paper Appendix B).
//  - PR33673 (mem2reg + constexpr): validation *succeeds* because the
//    unsound constexpr_no_ub rule is installed — matching the paper's
//    zero validation failures for this bug — while the miscompilation is
//    real (refinement breaks) and rule verification exposes the rule.
//  - PR28562/PR29057 (gvn inbounds): validation fails, testing misses.
//  - D38619 (gvn PRE insertion): validation fails with a "target division"
//    reason.
//
//===----------------------------------------------------------------------===//

#include "checker/Validator.h"
#include "erhl/RuleTester.h"
#include "interp/Interp.h"
#include "ir/Parser.h"
#include "passes/Pipeline.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::passes;

namespace {

ir::Module parse(const std::string &Text) {
  std::string Err;
  auto M = ir::parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  return *M;
}

struct PassRun {
  PassResult PR;
  checker::ModuleResult VR;
};

PassRun runPass(const std::string &Name, const ir::Module &Src,
            const BugConfig &Bugs) {
  auto P = makePass(Name, Bugs);
  PassRun R;
  R.PR = P->run(Src, true);
  R.VR = checker::validate(Src, R.PR.Tgt, R.PR.Proof);
  return R;
}

bool refinesOnSeeds(const ir::Module &Src, const ir::Module &Tgt,
                    const std::string &Fn) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    interp::InterpOptions Opts;
    Opts.OracleSeed = Seed;
    auto RS = interp::run(Src, Fn, {5, 9}, Opts);
    auto RT = interp::run(Tgt, Fn, {5, 9}, Opts);
    if (!interp::refines(RS, RT))
      return false;
  }
  return true;
}

// --- PR24179 ---------------------------------------------------------------

// The promoted value flows only into an unread global: the undef the buggy
// single-block path introduces is never observable (the SPEC situation of
// paper §1.2).
const char *Pr24179Hidden = R"(
declare i1 @cond()
declare i32 @get()
define void @hidden() {
entry:
  %p = alloca i32, 1
  br label %loop
loop:
  %v = load i32, ptr %p
  store i32 %v, ptr @G
  %x = call i32 @get()
  store i32 %x, ptr %p
  %c = call i1 @cond()
  br i1 %c, label %loop, label %done
done:
  ret void
}
@G = global i32, 1
)";

// The same shape, but the loaded value is passed to an external function:
// a visible miscompilation (paper Appendix B).
const char *Pr24179Visible = R"(
declare i1 @cond()
declare i32 @get()
declare void @sink(i32)
define void @visible() {
entry:
  %p = alloca i32, 1
  br label %loop
loop:
  %v = load i32, ptr %p
  call void @sink(i32 %v)
  %x = call i32 @get()
  store i32 %x, ptr %p
  %c = call i1 @cond()
  br i1 %c, label %loop, label %done
done:
  ret void
}
)";

TEST(PR24179, ValidationCatchesTheHiddenBug) {
  ir::Module Src = parse(Pr24179Hidden);
  PassRun Buggy = runPass("mem2reg", Src, BugConfig::llvm371());
  // The buggy fast path promoted the early load to undef across the back
  // edge; the proof cannot re-establish the ghost binding at the edge.
  EXPECT_EQ(Buggy.VR.countFailed(), 1u);
  // Differential testing misses it: the undef never reaches an event.
  EXPECT_TRUE(refinesOnSeeds(Src, Buggy.PR.Tgt, "hidden"));
}

TEST(PR24179, TestingOnlyCatchesTheVisibleVariant) {
  ir::Module Src = parse(Pr24179Visible);
  PassRun Buggy = runPass("mem2reg", Src, BugConfig::llvm371());
  EXPECT_EQ(Buggy.VR.countFailed(), 1u);
  // With the value observed, the second iteration exposes 42 vs undef.
  EXPECT_FALSE(refinesOnSeeds(Src, Buggy.PR.Tgt, "visible"));
}

TEST(PR24179, FixedCompilerUsesTheGeneralPathAndValidates) {
  ir::Module Src = parse(Pr24179Hidden);
  PassRun Fixed = runPass("mem2reg", Src, BugConfig::fixed());
  EXPECT_EQ(Fixed.VR.countFailed(), 0u) << Fixed.VR.firstFailure();
  EXPECT_EQ(Fixed.VR.countValidated(), 1u);
  EXPECT_TRUE(refinesOnSeeds(Src, Fixed.PR.Tgt, "hidden"));
}

// --- PR33673 -----------------------------------------------------------------

const char *Pr33673 = R"(
declare void @foo(i32)
declare void @sink(i32)
define void @ce() {
entry:
  %p = alloca i32, 1
  %r = load i32, ptr %p
  call void @foo(i32 %r)
  store i32 sdiv (i32 1, i32 sub (i32 ptrtoint (ptr @G), i32 ptrtoint (ptr @G))), ptr %p
  ret void
}
@G = global i32, 1
)";

TEST(PR33673, ValidationAcceptsViaTheUnsoundRule) {
  ir::Module Src = parse(Pr33673);
  PassRun Buggy = runPass("mem2reg", Src, BugConfig::llvm371());
  // Paper §7: "there is no failure due to the other mem2reg bug".
  EXPECT_EQ(Buggy.VR.countFailed(), 0u) << Buggy.VR.firstFailure();
  EXPECT_EQ(Buggy.VR.countValidated(), 1u);
  // Yet the miscompilation is real: the target evaluates the trapping
  // constant expression where the source passed undef.
  EXPECT_FALSE(refinesOnSeeds(Src, Buggy.PR.Tgt, "ce"));
}

TEST(PR33673, RuleVerificationExposesTheRule) {
  // Paper §1: "we found one of our two mem2reg bugs during the
  // verification of inference rules."
  auto Verdict =
      erhl::verifyRule(erhl::InfruleKind::ConstexprNoUb, /*Seed=*/7, 400);
  EXPECT_GT(Verdict.Applied, 0u);
  EXPECT_GT(Verdict.Violations, 0u);
  EXPECT_NE(Verdict.FirstCounterexample.find("constexpr_no_ub"),
            std::string::npos);
}

TEST(PR33673, FixedCompilerDoesNotSpeculate) {
  ir::Module Src = parse(Pr33673);
  PassRun Fixed = runPass("mem2reg", Src, BugConfig::fixed());
  EXPECT_EQ(Fixed.VR.countFailed(), 0u) << Fixed.VR.firstFailure();
  EXPECT_TRUE(refinesOnSeeds(Src, Fixed.PR.Tgt, "ce"));
}

// --- PR28562 / PR29057 --------------------------------------------------------

const char *GvnInbounds = R"(
declare void @bar(ptr, ptr)
define void @gb(ptr %p) {
entry:
  %q1 = gep inbounds ptr %p, i64 2
  %q2 = gep ptr %p, i64 2
  call void @bar(ptr %q1, ptr %q2)
  ret void
}
)";

TEST(PR28562, ValidationCatchesWhatTestingMisses) {
  ir::Module Src = parse(GvnInbounds);
  PassRun Buggy = runPass("gvn", Src, BugConfig::llvm371());
  EXPECT_GE(Buggy.PR.Rewrites, 1u);
  EXPECT_EQ(Buggy.VR.countFailed(), 1u);
  // The in-bounds index keeps both pointers defined at run time, so the
  // poison never materializes in a trace (paper §1.2).
  EXPECT_TRUE(refinesOnSeeds(Src, Buggy.PR.Tgt, "gb"));
}

// --- D38619 -------------------------------------------------------------------

const char *PreInsertDiv = R"(
declare void @sink(i32)
define i32 @pi(i32 %n, i32 %d, i1 %c) {
entry:
  br i1 %c, label %left, label %right
left:
  %y1 = sdiv i32 %n, %d
  call void @sink(i32 %y1)
  br label %exit
right:
  br label %exit
exit:
  %y3 = sdiv i32 %n, %d
  call void @sink(i32 %y3)
  ret i32 %y3
}
)";

TEST(D38619, PREInsertionOfDivisionIsCaught) {
  ir::Module Src = parse(PreInsertDiv);
  PassRun Buggy = runPass("gvn", Src, BugConfig::llvm371());
  EXPECT_GE(Buggy.PR.Rewrites, 1u);
  EXPECT_EQ(Buggy.VR.countFailed(), 1u);
  EXPECT_NE(Buggy.VR.firstFailure().find("division"), std::string::npos)
      << Buggy.VR.firstFailure();
  // The fixed compiler refuses to insert a trapping expression.
  PassRun Fixed = runPass("gvn", Src, BugConfig::fixed());
  EXPECT_EQ(Fixed.VR.countFailed(), 0u) << Fixed.VR.firstFailure();
}

} // namespace
