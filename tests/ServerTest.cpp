//===- tests/ServerTest.cpp - Validation service tests --------------------===//
//
// The crellvm-served subsystem, tested at three levels:
//
//   ServerProtocol  frame + JSON codec round trips;
//   ServerLoopback  ValidationService through the in-process transport
//                   (same codec as the wire, no fds): batching, deadline
//                   expiry, backpressure rejection, drain-on-shutdown,
//                   and bit-identical verdicts vs. runBatchValidated;
//   ServerSocket    the real Unix-domain socket front end under 8
//                   concurrent clients, cross-checked against a direct
//                   batch run on the same seeds.
//
// Suite names all contain "Server" so the TSan sweep in ci.yml picks the
// whole file up (-R '...|Server').
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "server/Service.h"
#include "server/SocketServer.h"
#include "workload/RandomProgram.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace crellvm;
using namespace crellvm::server;

namespace {

ServiceOptions fastOptions() {
  ServiceOptions O;
  O.Jobs = 4;
  O.Driver.WriteFiles = false; // keep the suite I/O-free and fast
  return O;
}

Request validateSeed(uint64_t Seed, int64_t Id = 0) {
  Request R;
  R.Kind = RequestKind::Validate;
  R.Id = Id;
  R.HasSeed = true;
  R.Seed = Seed;
  return R;
}

/// What crellvm-validate would report for the same seeds: a direct
/// runBatchValidated over identically generated modules.
driver::StatsMap directRun(const std::vector<uint64_t> &Seeds) {
  driver::DriverOptions DOpts;
  DOpts.WriteFiles = false;
  driver::BatchOptions BOpts;
  BOpts.Jobs = 1;
  return driver::runBatchValidated(
             passes::BugConfig::fixed(), DOpts, Seeds.size(),
             [&](size_t I) {
               workload::GenOptions G;
               G.Seed = Seeds[I];
               return workload::generateModule(G);
             },
             BOpts)
      .Stats;
}

/// Sums per-response verdict maps into one map comparable with
/// passVerdictsOf(directRun(...)).
void accumulate(std::map<std::string, PassVerdicts> &Into,
                const std::map<std::string, PassVerdicts> &From) {
  for (const auto &KV : From) {
    PassVerdicts &P = Into[KV.first];
    P.V += KV.second.V;
    P.F += KV.second.F;
    P.NS += KV.second.NS;
    P.Diff += KV.second.Diff;
  }
}

//===----------------------------------------------------------------------===//
// ServerProtocol
//===----------------------------------------------------------------------===//

TEST(ServerProtocol, FrameHeaderIsBigEndianLength) {
  std::string F = encodeFrame("abc");
  ASSERT_EQ(F.size(), 7u);
  EXPECT_EQ(F[0], 0);
  EXPECT_EQ(F[1], 0);
  EXPECT_EQ(F[2], 0);
  EXPECT_EQ(F[3], 3);
  EXPECT_EQ(F.substr(4), "abc");
}

TEST(ServerProtocol, FrameRoundTripThroughPipe) {
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);
  const std::string Payload = "{\"type\":\"ping\",\"id\":42}";
  ASSERT_TRUE(writeFrame(Fds[1], Payload));
  std::string Out, Err;
  ASSERT_TRUE(readFrame(Fds[0], Out, &Err)) << Err;
  EXPECT_EQ(Out, Payload);
  // Closing the write end makes the next read report clean EOF: false
  // with an empty error.
  ::close(Fds[1]);
  EXPECT_FALSE(readFrame(Fds[0], Out, &Err));
  EXPECT_TRUE(Err.empty());
  ::close(Fds[0]);
}

TEST(ServerProtocol, OversizeHeaderRejectedBeforeAllocation) {
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);
  unsigned char Header[4] = {0xff, 0xff, 0xff, 0xff}; // 4 GiB claim
  ASSERT_EQ(::write(Fds[1], Header, 4), 4);
  std::string Out, Err;
  EXPECT_FALSE(readFrame(Fds[0], Out, &Err));
  EXPECT_FALSE(Err.empty());
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(ServerProtocol, RequestCodecRoundTrip) {
  Request R;
  R.Kind = RequestKind::Validate;
  R.Id = 77;
  R.HasSeed = true;
  R.Seed = 12345;
  R.Bugs = "501pre";
  R.DeadlineMs = 250;
  std::string Err;
  auto Back = requestFromJson(requestToJson(R), &Err);
  ASSERT_TRUE(Back) << Err;
  EXPECT_EQ(Back->Kind, RequestKind::Validate);
  EXPECT_EQ(Back->Id, 77);
  EXPECT_TRUE(Back->HasSeed);
  EXPECT_EQ(Back->Seed, 12345u);
  EXPECT_EQ(Back->Bugs, "501pre");
  EXPECT_EQ(Back->DeadlineMs, 250u);

  Request M;
  M.Kind = RequestKind::Validate;
  M.Id = 5;
  M.ModuleText = "define i32 @f() {\nentry:\n  ret i32 0\n}\n";
  Back = requestFromJson(requestToJson(M), &Err);
  ASSERT_TRUE(Back) << Err;
  EXPECT_EQ(Back->ModuleText, M.ModuleText);
  EXPECT_FALSE(Back->HasSeed);
}

TEST(ServerProtocol, ResponseCodecRoundTrip) {
  Response R;
  R.Id = 9;
  R.Status = ResponseStatus::Ok;
  R.Passes["gvn"] = {4, 1, 0, 0};
  R.Passes["mem2reg"] = {2, 0, 1, 0};
  R.Failures = {"[gvn] sample failure"};
  R.CacheHits = 3;
  R.CacheMisses = 5;
  R.QueueUs = 10;
  R.TotalUs = 20;
  std::string Err;
  auto Back = responseFromJson(responseToJson(R), &Err);
  ASSERT_TRUE(Back) << Err;
  EXPECT_EQ(Back->Id, 9);
  EXPECT_EQ(Back->Status, ResponseStatus::Ok);
  EXPECT_EQ(Back->Passes, R.Passes);
  EXPECT_EQ(Back->Failures, R.Failures);
  EXPECT_EQ(Back->CacheHits, 3u);
  EXPECT_EQ(Back->CacheMisses, 5u);
  EXPECT_EQ(Back->totalV(), 6u);
  EXPECT_EQ(Back->totalF(), 1u);
  EXPECT_EQ(Back->totalNS(), 1u);

  Response Rej;
  Rej.Id = 10;
  Rej.Status = ResponseStatus::Rejected;
  Rej.Reason = "queue_full";
  Rej.RetryAfterMs = 40;
  Back = responseFromJson(responseToJson(Rej), &Err);
  ASSERT_TRUE(Back) << Err;
  EXPECT_EQ(Back->Status, ResponseStatus::Rejected);
  EXPECT_EQ(Back->Reason, "queue_full");
  EXPECT_EQ(Back->RetryAfterMs, 40u);
}

TEST(ServerProtocol, MalformedRequestsAreNamedErrors) {
  std::string Err;
  EXPECT_FALSE(requestFromJson("not json", &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(requestFromJson("{\"type\":\"frobnicate\"}", &Err));
  EXPECT_FALSE(Err.empty());
  // validate needs a module or a seed
  EXPECT_FALSE(requestFromJson("{\"type\":\"validate\",\"id\":1}", &Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// ServerLoopback
//===----------------------------------------------------------------------===//

TEST(ServerLoopback, PingAndStats) {
  ValidationService S(fastOptions());
  LoopbackTransport T(S);
  Request Ping;
  Ping.Kind = RequestKind::Ping;
  Ping.Id = 3;
  Response R = T.call(Ping);
  EXPECT_EQ(R.Id, 3);
  EXPECT_EQ(R.Status, ResponseStatus::Ok);

  Request Stats;
  Stats.Kind = RequestKind::Stats;
  R = T.call(Stats);
  ASSERT_EQ(R.Status, ResponseStatus::Ok);
  ASSERT_EQ(R.Stats.kind(), json::Value::Kind::Object);
  for (const char *Key :
       {"server", "requests", "verdicts", "cache", "latency_us"})
    EXPECT_NE(R.Stats.find(Key), nullptr) << "stats must carry " << Key;
}

TEST(ServerLoopback, PingWhileDrainingIsAliveButNotReady) {
  // Liveness vs. readiness (Protocol.h): a draining daemon still answers
  // its ping Ok — it is alive, and old health checks must keep passing —
  // but carries reason "draining", which is what the member supervisor's
  // readiness gate keys on (ready = Ok with an EMPTY reason).
  ValidationService S(fastOptions());
  LoopbackTransport T(S);
  Request Ping;
  Ping.Kind = RequestKind::Ping;
  Ping.Id = 4;
  Response R = T.call(Ping);
  EXPECT_EQ(R.Status, ResponseStatus::Ok);
  EXPECT_TRUE(R.Reason.empty()) << R.Reason;

  S.beginShutdown();
  R = T.call(Ping);
  EXPECT_EQ(R.Status, ResponseStatus::Ok) << "liveness must survive a drain";
  EXPECT_EQ(R.Reason, "draining");
}

TEST(ServerLoopback, QueuedRequestsCoalesceIntoOneBatch) {
  ServiceOptions O = fastOptions();
  O.StartPaused = true;
  ValidationService S(O);
  LoopbackTransport T(S);

  constexpr int N = 6;
  std::mutex M;
  std::condition_variable Cv;
  int Done = 0;
  std::vector<Response> Rsps(N);
  for (int I = 0; I != N; ++I)
    T.submit(validateSeed(40 + I, I), [&, I](Response R) {
      std::lock_guard<std::mutex> L(M);
      Rsps[I] = std::move(R);
      if (++Done == N)
        Cv.notify_all();
    });
  EXPECT_EQ(S.queueDepth(), static_cast<size_t>(N));
  EXPECT_EQ(S.counters().Batches, 0u) << "paused service must not dispatch";

  S.resume();
  {
    std::unique_lock<std::mutex> L(M);
    Cv.wait(L, [&] { return Done == N; });
  }
  EXPECT_EQ(S.counters().Batches, 1u)
      << "all queued requests share a bug config: one coalesced batch";
  for (int I = 0; I != N; ++I) {
    EXPECT_EQ(Rsps[I].Id, I);
    EXPECT_EQ(Rsps[I].Status, ResponseStatus::Ok);
    EXPECT_GT(Rsps[I].totalV(), 0u);
  }
}

TEST(ServerLoopback, ExpiredDeadlineSkipsValidation) {
  ServiceOptions O = fastOptions();
  O.StartPaused = true;
  ValidationService S(O);
  LoopbackTransport T(S);

  Request Doomed = validateSeed(7, 1);
  Doomed.DeadlineMs = 1;
  Request Fine = validateSeed(8, 2);

  std::mutex M;
  std::condition_variable Cv;
  std::vector<Response> Rsps;
  auto Collect = [&](Response R) {
    std::lock_guard<std::mutex> L(M);
    Rsps.push_back(std::move(R));
    Cv.notify_all();
  };
  T.submit(Doomed, Collect);
  T.submit(Fine, Collect);
  std::this_thread::sleep_for(std::chrono::milliseconds(10)); // expire it
  S.resume();
  {
    std::unique_lock<std::mutex> L(M);
    Cv.wait(L, [&] { return Rsps.size() == 2; });
  }
  for (const Response &R : Rsps) {
    if (R.Id == 1) {
      EXPECT_EQ(R.Status, ResponseStatus::DeadlineExceeded);
      EXPECT_EQ(R.totalV(), 0u) << "an expired unit must not be validated";
    } else {
      EXPECT_EQ(R.Status, ResponseStatus::Ok);
      EXPECT_GT(R.totalV(), 0u);
    }
  }
  EXPECT_EQ(S.counters().DeadlineExpired, 1u);
  EXPECT_EQ(S.counters().Completed, 1u);
}

TEST(ServerLoopback, FullQueueRejectsWithRetryHint) {
  ServiceOptions O = fastOptions();
  O.StartPaused = true;
  O.QueueMax = 2;
  ValidationService S(O);
  LoopbackTransport T(S);

  std::mutex M;
  std::condition_variable Cv;
  std::vector<Response> Rsps;
  auto Collect = [&](Response R) {
    std::lock_guard<std::mutex> L(M);
    Rsps.push_back(std::move(R));
    Cv.notify_all();
  };
  T.submit(validateSeed(1, 1), Collect);
  T.submit(validateSeed(2, 2), Collect);
  // Third exceeds QueueMax: rejected immediately, synchronously.
  T.submit(validateSeed(3, 3), Collect);
  {
    std::lock_guard<std::mutex> L(M);
    ASSERT_EQ(Rsps.size(), 1u);
    EXPECT_EQ(Rsps[0].Id, 3);
    EXPECT_EQ(Rsps[0].Status, ResponseStatus::Rejected);
    EXPECT_EQ(Rsps[0].Reason, "queue_full");
    EXPECT_GE(Rsps[0].RetryAfterMs, O.RetryAfterMsFloor)
        << "backpressure must tell the client when to come back";
  }
  EXPECT_EQ(S.counters().RejectedQueueFull, 1u);

  // The admitted two still complete normally once dispatch starts.
  S.resume();
  {
    std::unique_lock<std::mutex> L(M);
    Cv.wait(L, [&] { return Rsps.size() == 3; });
  }
  EXPECT_EQ(S.counters().Completed, 2u);
}

TEST(ServerLoopback, ShutdownDrainsEveryAcceptedRequest) {
  ServiceOptions O = fastOptions();
  O.StartPaused = true;
  ValidationService S(O);
  LoopbackTransport T(S);

  constexpr int N = 5;
  std::mutex M;
  std::atomic<int> OkCount{0};
  for (int I = 0; I != N; ++I)
    T.submit(validateSeed(60 + I, I), [&](Response R) {
      if (R.Status == ResponseStatus::Ok)
        ++OkCount;
    });
  ASSERT_EQ(S.queueDepth(), static_cast<size_t>(N));

  // Begin the drain while all five are still queued (the paused
  // dispatcher has not touched them — the worst case for loss).
  S.beginShutdown();
  EXPECT_TRUE(S.draining());

  // New work is rejected, synchronously, with the drain reason.
  Response Late;
  bool LateSeen = false;
  T.submit(validateSeed(99, 99), [&](Response R) {
    std::lock_guard<std::mutex> L(M);
    Late = std::move(R);
    LateSeen = true;
  });
  {
    std::lock_guard<std::mutex> L(M);
    ASSERT_TRUE(LateSeen);
    EXPECT_EQ(Late.Status, ResponseStatus::Rejected);
    EXPECT_EQ(Late.Reason, "shutting_down");
  }

  S.drain();
  EXPECT_EQ(OkCount.load(), N)
      << "SIGTERM-style drain must answer every accepted request";
  ServiceCounters C = S.counters();
  EXPECT_EQ(C.Accepted, static_cast<uint64_t>(N));
  EXPECT_EQ(C.Completed, static_cast<uint64_t>(N));
  EXPECT_EQ(C.RejectedShutdown, 1u);
}

TEST(ServerLoopback, VerdictsBitIdenticalToStandaloneValidator) {
  const std::vector<uint64_t> Seeds = {11, 12, 13, 14, 15, 16};
  ValidationService S(fastOptions());
  LoopbackTransport T(S);

  std::map<std::string, PassVerdicts> Served;
  for (size_t I = 0; I != Seeds.size(); ++I) {
    Response R = T.call(validateSeed(Seeds[I], static_cast<int64_t>(I)));
    ASSERT_EQ(R.Status, ResponseStatus::Ok) << "seed " << Seeds[I];
    accumulate(Served, R.Passes);
  }

  std::map<std::string, PassVerdicts> Direct =
      passVerdictsOf(directRun(Seeds));
  EXPECT_EQ(Served, Direct)
      << "the service must add scheduling, never semantics";
}

TEST(ServerLoopback, ExplicitModuleTextMatchesSeedRequest) {
  ValidationService S(fastOptions());
  LoopbackTransport T(S);

  workload::GenOptions G;
  G.Seed = 21;
  Request ByText;
  ByText.Kind = RequestKind::Validate;
  ByText.Id = 1;
  ByText.ModuleText = ir::printModule(workload::generateModule(G));
  Response A = T.call(ByText);
  Response B = T.call(validateSeed(21, 2));
  ASSERT_EQ(A.Status, ResponseStatus::Ok);
  ASSERT_EQ(B.Status, ResponseStatus::Ok);
  EXPECT_EQ(A.Passes, B.Passes)
      << "module-by-text and module-by-seed must validate identically";
}

TEST(ServerLoopback, BadRequestsAnsweredWithErrors) {
  ValidationService S(fastOptions());
  LoopbackTransport T(S);

  Request Garbage;
  Garbage.Kind = RequestKind::Validate;
  Garbage.Id = 1;
  Garbage.ModuleText = "this is not LLVM IR";
  Response R = T.call(Garbage);
  EXPECT_EQ(R.Status, ResponseStatus::Error);
  EXPECT_FALSE(R.Reason.empty());

  Request BadBugs = validateSeed(1, 2);
  BadBugs.Bugs = "llvm9000";
  R = T.call(BadBugs);
  EXPECT_EQ(R.Status, ResponseStatus::Error);
  EXPECT_EQ(S.counters().BadRequests, 2u);
}

TEST(ServerLoopback, StatsReflectServedWork) {
  ValidationService S(fastOptions());
  LoopbackTransport T(S);
  for (uint64_t Seed : {31, 32, 33})
    ASSERT_EQ(T.call(validateSeed(Seed)).Status, ResponseStatus::Ok);

  Request StatsReq;
  StatsReq.Kind = RequestKind::Stats;
  Response R = T.call(StatsReq);
  ASSERT_EQ(R.Status, ResponseStatus::Ok);
  const json::Value &J = R.Stats;
  EXPECT_EQ(J.get("requests").get("accepted").getInt(), 3);
  EXPECT_EQ(J.get("requests").get("completed").getInt(), 3);
  EXPECT_GT(J.get("verdicts").get("V").getInt(), 0);
  const json::Value &Lat = J.get("latency_us").get("total");
  EXPECT_EQ(Lat.get("count").getInt(), 3);
  EXPECT_GT(Lat.get("p50").getInt(), 0);
  EXPECT_GE(Lat.get("p99").getInt(), Lat.get("p50").getInt());
  EXPECT_GT(Lat.get("max").getInt(), 0);
}

// Scraped under load, every counter under "requests" and "verdicts" is
// monotone between observations and the drain inequality
// accepted >= completed + deadline_exceeded + internal_errors holds at
// EVERY observation point (the slack is work still queued or running);
// once all responses are in, the inequality tightens to the drain
// equation. This is exactly the gate crellvm-campaign's soak mode applies
// to a live daemon.
TEST(ServerLoopback, StatsMonotoneUnderLoadAndDrainEquation) {
  ServiceOptions O = fastOptions();
  O.Jobs = 2;
  O.BatchMax = 2; // several small batches, so mid-run scrapes see motion
  ValidationService S(O);
  LoopbackTransport T(S);

  constexpr int N = 10;
  std::mutex M;
  std::condition_variable Cv;
  int Done = 0;
  for (int I = 0; I != N; ++I)
    T.submit(validateSeed(70 + I, I), [&](Response) {
      std::lock_guard<std::mutex> L(M);
      ++Done;
      Cv.notify_all();
    });

  Request StatsReq;
  StatsReq.Kind = RequestKind::Stats;

  // One scrape, flattened to the monotone "requests"/"verdicts" counters.
  auto Scrape = [&]() {
    Response R = T.call(StatsReq);
    EXPECT_EQ(R.Status, ResponseStatus::Ok);
    std::map<std::string, int64_t> Out;
    for (const char *Section : {"requests", "verdicts"}) {
      const json::Value *Obj = R.Stats.find(Section);
      EXPECT_NE(Obj, nullptr) << Section;
      if (Obj)
        for (const auto &KV : Obj->members())
          if (KV.second.kind() == json::Value::Kind::Int)
            Out[std::string(Section) + "." + KV.first] = KV.second.getInt();
    }
    return Out;
  };

  std::map<std::string, int64_t> Prev = Scrape();
  bool AllDone = false;
  do {
    {
      std::unique_lock<std::mutex> L(M);
      Cv.wait_for(L, std::chrono::milliseconds(2));
      AllDone = Done == N;
    }
    std::map<std::string, int64_t> Cur = Scrape();
    for (const auto &KV : Cur) {
      auto It = Prev.find(KV.first);
      if (It != Prev.end()) {
        EXPECT_GE(KV.second, It->second)
            << KV.first << " decreased between scrapes";
      }
    }
    EXPECT_GE(Cur["requests.accepted"],
              Cur["requests.completed"] + Cur["requests.deadline_exceeded"] +
                  Cur["requests.internal_errors"])
        << "drain inequality violated mid-load";
    Prev = std::move(Cur);
  } while (!AllDone);

  // Quiesced: the inequality tightens to the drain equation.
  std::map<std::string, int64_t> Final = Scrape();
  EXPECT_EQ(Final["requests.accepted"], N);
  EXPECT_EQ(Final["requests.accepted"],
            Final["requests.completed"] +
                Final["requests.deadline_exceeded"] +
                Final["requests.internal_errors"])
      << "drain equation must hold once every response is in";
}

//===----------------------------------------------------------------------===//
// ServerSocket
//===----------------------------------------------------------------------===//

std::string testSocketPath(const char *Tag) {
  return "/tmp/crellvm-test-" + std::to_string(::getpid()) + "-" + Tag +
         ".sock";
}

int connectTo(const std::string &Path) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  // The server thread may not have reached listen() yet: retry briefly.
  for (int Tries = 0; Tries != 100; ++Tries) {
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      return Fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::close(Fd);
  return -1;
}

// Eight concurrent clients pipelining seeded requests over real sockets;
// the summed verdicts must be bit-identical to one standalone batch run
// over the union of the seeds. This is the test the TSan target leans on.
TEST(ServerSocket, EightConcurrentClientsBitIdenticalVerdicts) {
  constexpr int Clients = 8;
  constexpr int PerClient = 3;

  ValidationService S(fastOptions());
  SocketServer Server(S, {testSocketPath("stress"), /*Backlog=*/64});
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  std::thread ServerThread([&] { Server.run(); });

  std::mutex M;
  std::map<std::string, PassVerdicts> Served;
  int Failures = 0;
  std::vector<std::thread> ClientThreads;
  for (int C = 0; C != Clients; ++C)
    ClientThreads.emplace_back([&, C] {
      int Fd = connectTo(Server.path());
      if (Fd < 0) {
        std::lock_guard<std::mutex> L(M);
        ++Failures;
        return;
      }
      for (int I = 0; I != PerClient; ++I) {
        Request R = validateSeed(100 + C * PerClient + I, I);
        if (!writeFrame(Fd, requestToJson(R))) {
          std::lock_guard<std::mutex> L(M);
          ++Failures;
          ::close(Fd);
          return;
        }
      }
      for (int I = 0; I != PerClient; ++I) {
        std::string Frame;
        if (!readFrame(Fd, Frame)) {
          std::lock_guard<std::mutex> L(M);
          ++Failures;
          ::close(Fd);
          return;
        }
        auto Rsp = responseFromJson(Frame);
        std::lock_guard<std::mutex> L(M);
        if (!Rsp || Rsp->Status != ResponseStatus::Ok)
          ++Failures;
        else
          accumulate(Served, Rsp->Passes);
      }
      ::close(Fd);
    });
  for (std::thread &T : ClientThreads)
    T.join();
  Server.requestStop();
  ServerThread.join();

  EXPECT_EQ(Failures, 0);
  std::vector<uint64_t> Seeds;
  for (int I = 0; I != Clients * PerClient; ++I)
    Seeds.push_back(100 + I);
  EXPECT_EQ(Served, passVerdictsOf(directRun(Seeds)));
  ServiceCounters Counters = S.counters();
  EXPECT_EQ(Counters.Accepted, static_cast<uint64_t>(Clients * PerClient));
  EXPECT_EQ(Counters.Completed, static_cast<uint64_t>(Clients * PerClient));
}

TEST(ServerSocket, StopUnderLoadAnswersEverythingAccepted) {
  ValidationService S(fastOptions());
  SocketServer Server(S, {testSocketPath("drain"), /*Backlog=*/16});
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  std::thread ServerThread([&] { Server.run(); });

  int Fd = connectTo(Server.path());
  ASSERT_GE(Fd, 0);
  constexpr int N = 8;
  for (int I = 0; I != N; ++I)
    ASSERT_TRUE(writeFrame(Fd, requestToJson(validateSeed(200 + I, I))));
  // Wait until all eight crossed admission (frames still sitting in the
  // kernel buffer are not "accepted" — the drain guarantee is about what
  // the service admitted), then stop while they are queued or running.
  for (int Spin = 0; S.counters().Received < N && Spin != 1000; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GE(S.counters().Received, static_cast<uint64_t>(N));
  Server.requestStop();
  int Answered = 0;
  std::string Frame;
  while (Answered != N && readFrame(Fd, Frame)) {
    auto Rsp = responseFromJson(Frame);
    ASSERT_TRUE(Rsp);
    // Accepted before the stop: verdict. Raced with the drain: explicit
    // shutting_down rejection. Either way the client hears back.
    EXPECT_TRUE(Rsp->Status == ResponseStatus::Ok ||
                (Rsp->Status == ResponseStatus::Rejected &&
                 Rsp->Reason == "shutting_down"))
        << statusName(Rsp->Status);
    ++Answered;
  }
  ::close(Fd);
  ServerThread.join();
  EXPECT_EQ(Answered, N) << "no accepted request may vanish on SIGTERM";
  ServiceCounters C = S.counters();
  EXPECT_EQ(C.Accepted, C.Completed + C.DeadlineExpired);
}

// A cold daemon has an empty latency histogram; its retry_after_ms hint
// must still be a real wait, even with the configured floor at zero —
// otherwise retrying clients hot-spin against a daemon that has not
// finished a single unit yet.
TEST(ServerLoopbackRetryHint, EmptyHistogramHintStillFloored) {
  ServiceOptions O = fastOptions();
  O.StartPaused = true; // nothing completes: histogram stays empty
  O.QueueMax = 1;
  O.RetryAfterMsFloor = 0; // the misconfiguration that exposed the bug
  ValidationService S(O);
  LoopbackTransport T(S);

  std::vector<Response> Rsps;
  auto Collect = [&](Response R) { Rsps.push_back(std::move(R)); };
  T.submit(validateSeed(1, 1), Collect);
  T.submit(validateSeed(2, 2), Collect); // exceeds QueueMax, synchronous
  ASSERT_EQ(Rsps.size(), 1u);
  EXPECT_EQ(Rsps[0].Status, ResponseStatus::Rejected);
  EXPECT_EQ(Rsps[0].Reason, "queue_full");
  EXPECT_GE(Rsps[0].RetryAfterMs, MinRetryAfterMs)
      << "a cold daemon's hint must never tell clients to hot-spin";
  S.resume();
  S.beginShutdown();
  S.drain();
}

//===----------------------------------------------------------------------===//
// ServerCodec — the negotiated binary wire protocol
//===----------------------------------------------------------------------===//

/// Client-side hello exchange on a fresh test connection: returns the
/// session codec the server picked (json when negotiation was refused).
WireCodec negotiateOn(int Fd, WireCodec Want) {
  EXPECT_TRUE(writeFrame(Fd, requestToJson(helloRequest(Want))));
  std::string Frame;
  EXPECT_TRUE(readFrame(Fd, Frame));
  auto Rsp = responseFromJson(Frame);
  EXPECT_TRUE(Rsp);
  if (!Rsp || Rsp->Status != ResponseStatus::Ok)
    return WireCodec::Json;
  auto C = codecByName(Rsp->Codec);
  return C ? *C : WireCodec::Json;
}

TEST(ServerCodec, HelloNegotiatesCbj1AndServesBinaryFrames) {
  ValidationService S(fastOptions());
  SocketServer Server(S, {testSocketPath("hello"), /*Backlog=*/4});
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  std::thread ServerThread([&] { Server.run(); });
  int Fd = connectTo(Server.path());
  ASSERT_GE(Fd, 0);

  ASSERT_EQ(negotiateOn(Fd, WireCodec::Cbj1), WireCodec::Cbj1);
  WireEncoder Enc(WireCodec::Cbj1);
  WireDecoder Dec(WireCodec::Cbj1);

  // Two requests over the binary session; verdicts must be exactly what
  // a json client (or a direct run) gets for the same seeds.
  std::map<std::string, PassVerdicts> Served;
  for (int I = 0; I != 2; ++I) {
    auto Payload = Enc.encode(requestToValue(validateSeed(300 + I, I)));
    ASSERT_TRUE(Payload);
    ASSERT_TRUE(writeFrame(Fd, *Payload));
  }
  for (int I = 0; I != 2; ++I) {
    std::string Frame;
    ASSERT_TRUE(readFrame(Fd, Frame));
    auto V = Dec.decode(Frame, &Err);
    ASSERT_TRUE(V) << Err;
    auto Rsp = responseFromValue(*V, &Err);
    ASSERT_TRUE(Rsp) << Err;
    EXPECT_EQ(Rsp->Status, ResponseStatus::Ok);
    accumulate(Served, Rsp->Passes);
  }
  ::close(Fd);
  Server.requestStop();
  ServerThread.join();
  EXPECT_EQ(Served, passVerdictsOf(directRun({300, 301})));
  EXPECT_EQ(Server.wireStats().Hellos.load(), 1u);
  EXPECT_GT(Server.wireStats()
                .FramesIn[static_cast<size_t>(WireCodec::Cbj1)]
                .load(),
            0u);
}

TEST(ServerCodec, HelloWithNoCommonCodecAnswersErrorAndStaysOnJson) {
  ValidationService S(fastOptions());
  SocketServer Server(S, {testSocketPath("nocodec"), /*Backlog=*/4});
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  std::thread ServerThread([&] { Server.run(); });
  int Fd = connectTo(Server.path());
  ASSERT_GE(Fd, 0);

  Request Hello;
  Hello.Kind = RequestKind::Hello;
  Hello.Id = 7;
  Hello.Codecs = {"zstd-frames", "xml"}; // a client from the future
  ASSERT_TRUE(writeFrame(Fd, requestToJson(Hello)));
  std::string Frame;
  ASSERT_TRUE(readFrame(Fd, Frame));
  auto Rsp = responseFromJson(Frame);
  ASSERT_TRUE(Rsp);
  EXPECT_EQ(Rsp->Status, ResponseStatus::Error);

  // The connection survives, still speaking json.
  ASSERT_TRUE(writeFrame(Fd, requestToJson(validateSeed(310, 1))));
  ASSERT_TRUE(readFrame(Fd, Frame));
  auto Ok = responseFromJson(Frame);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(Ok->Status, ResponseStatus::Ok);
  ::close(Fd);
  Server.requestStop();
  ServerThread.join();
}

// Four json clients and four cbj1 clients, concurrently, over one
// daemon: the codec is transport dressing, so the summed verdicts must
// be bit-identical to one standalone batch run over the union of seeds.
TEST(ServerCodec, MixedCodecClientsBitIdenticalVerdicts) {
  constexpr int Clients = 8;
  constexpr int PerClient = 2;

  ValidationService S(fastOptions());
  SocketServer Server(S, {testSocketPath("mixed"), /*Backlog=*/64});
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  std::thread ServerThread([&] { Server.run(); });

  std::mutex M;
  std::map<std::string, PassVerdicts> Served;
  int Failures = 0;
  std::vector<std::thread> ClientThreads;
  for (int C = 0; C != Clients; ++C)
    ClientThreads.emplace_back([&, C] {
      const WireCodec Want = C % 2 ? WireCodec::Cbj1 : WireCodec::Json;
      int Fd = connectTo(Server.path());
      if (Fd < 0) {
        std::lock_guard<std::mutex> L(M);
        ++Failures;
        return;
      }
      WireCodec Session = WireCodec::Json;
      if (Want == WireCodec::Cbj1)
        Session = negotiateOn(Fd, Want);
      WireEncoder Enc(Session);
      WireDecoder Dec(Session);
      for (int I = 0; I != PerClient; ++I) {
        auto Payload =
            Enc.encode(requestToValue(validateSeed(400 + C * PerClient + I, I)));
        if (!Payload || !writeFrame(Fd, *Payload)) {
          std::lock_guard<std::mutex> L(M);
          ++Failures;
          ::close(Fd);
          return;
        }
      }
      for (int I = 0; I != PerClient; ++I) {
        std::string Frame;
        if (!readFrame(Fd, Frame)) {
          std::lock_guard<std::mutex> L(M);
          ++Failures;
          ::close(Fd);
          return;
        }
        auto V = Dec.decode(Frame);
        std::optional<Response> Rsp;
        if (V)
          Rsp = responseFromValue(*V);
        std::lock_guard<std::mutex> L(M);
        if (!Rsp || Rsp->Status != ResponseStatus::Ok)
          ++Failures;
        else
          accumulate(Served, Rsp->Passes);
      }
      ::close(Fd);
    });
  for (std::thread &T : ClientThreads)
    T.join();
  Server.requestStop();
  ServerThread.join();

  EXPECT_EQ(Failures, 0);
  std::vector<uint64_t> Seeds;
  for (int I = 0; I != Clients * PerClient; ++I)
    Seeds.push_back(400 + I);
  EXPECT_EQ(Served, passVerdictsOf(directRun(Seeds)));
  // Both codecs actually carried traffic.
  const auto &W = Server.wireStats();
  EXPECT_GT(W.FramesIn[static_cast<size_t>(WireCodec::Json)].load(), 0u);
  EXPECT_GT(W.FramesIn[static_cast<size_t>(WireCodec::Cbj1)].load(), 0u);
}

// Hostile bytes through the negotiated binary decode path: the daemon
// answers bad frames with error responses and keeps serving — a
// malicious client must not be able to kill anyone else's connection.
TEST(ServerCodec, HostileCbj1FramesAnsweredWithoutDying) {
  ValidationService S(fastOptions());
  SocketServer Server(S, {testSocketPath("hostile"), /*Backlog=*/4});
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  std::thread ServerThread([&] { Server.run(); });
  int Fd = connectTo(Server.path());
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(negotiateOn(Fd, WireCodec::Cbj1), WireCodec::Cbj1);
  WireEncoder Enc(WireCodec::Cbj1);
  WireDecoder Dec(WireCodec::Cbj1);

  // Encoded with a throwaway session: the truncation below is hostile
  // material, not part of Enc's delivered-frame sequence (a session
  // encoder's table only stays in lockstep if every frame it encodes is
  // actually delivered).
  WireEncoder Throwaway(WireCodec::Cbj1);
  auto GoodBytes = Throwaway.encode(requestToValue(validateSeed(500, 1)));
  ASSERT_TRUE(GoodBytes);

  std::vector<std::string> Hostile;
  // Truncated frame (valid prefix, cut mid-value).
  Hostile.push_back(GoodBytes->substr(0, GoodBytes->size() / 2));
  // Bogus intern reference into a table slot that never existed.
  {
    std::string B = "CBJ1";
    B.push_back(0x05); // string ref
    B.push_back(0x7f); // id 127: out of range
    Hostile.push_back(std::move(B));
  }
  // Depth bomb: 100k nested single-element arrays.
  {
    std::string B = "CBJ1";
    for (int I = 0; I != 100000; ++I) {
      B.push_back(0x06);
      B.push_back(0x01);
    }
    B.push_back(0x00);
    Hostile.push_back(std::move(B));
  }
  // Wrong magic entirely.
  Hostile.push_back("JSON{\"type\":\"ping\"}");

  for (const std::string &Bytes : Hostile) {
    ASSERT_TRUE(writeFrame(Fd, Bytes));
    std::string Frame;
    ASSERT_TRUE(readFrame(Fd, Frame)) << "daemon died on hostile bytes";
    auto V = Dec.decode(Frame, &Err);
    ASSERT_TRUE(V) << Err;
    auto Rsp = responseFromValue(*V, &Err);
    ASSERT_TRUE(Rsp) << Err;
    EXPECT_EQ(Rsp->Status, ResponseStatus::Error);
  }

  // The server rolled its intern table back on every hostile frame, so
  // the session encoder (whose first delivered frame this is) is still
  // in lockstep: a well-formed request gets a real verdict.
  auto Again = Enc.encode(requestToValue(validateSeed(500, 2)));
  ASSERT_TRUE(Again);
  ASSERT_TRUE(writeFrame(Fd, *Again));
  std::string Frame;
  ASSERT_TRUE(readFrame(Fd, Frame));
  auto V = Dec.decode(Frame, &Err);
  ASSERT_TRUE(V) << Err;
  auto Rsp = responseFromValue(*V, &Err);
  ASSERT_TRUE(Rsp) << Err;
  EXPECT_EQ(Rsp->Status, ResponseStatus::Ok);
  ::close(Fd);
  Server.requestStop();
  ServerThread.join();
}

TEST(ServerSocket, SecondServerOnLivePathRefused) {
  ValidationService S(fastOptions());
  SocketServer Server(S, {testSocketPath("dup"), /*Backlog=*/4});
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  std::thread ServerThread([&] { Server.run(); });
  // Make sure it is accepting before probing.
  int Probe = connectTo(Server.path());
  ASSERT_GE(Probe, 0);

  ValidationService S2(fastOptions());
  SocketServer Dup(S2, {Server.path(), /*Backlog=*/4});
  std::string DupErr;
  EXPECT_FALSE(Dup.start(&DupErr))
      << "two daemons on one socket would split the client stream";
  EXPECT_NE(DupErr.find("listening"), std::string::npos);

  ::close(Probe);
  Server.requestStop();
  ServerThread.join();
}

} // namespace
