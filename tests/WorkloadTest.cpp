//===- tests/WorkloadTest.cpp - Random-program property tests --------------===//
//
// The central property suite: every generated module is well-formed, the
// fixed-compiler pipeline validates every supported translation (no false
// positives), the original and proof-generating compilers agree
// (llvm-diff), and the optimized module refines the source under the
// interpreter.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "driver/Driver.h"
#include "interp/Interp.h"
#include "ir/Printer.h"
#include "workload/Corpus.h"

#include <gtest/gtest.h>

using namespace crellvm;

namespace {

class WorkloadProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorkloadProperty, GeneratedModuleIsWellFormed) {
  workload::GenOptions Opts;
  Opts.Seed = GetParam();
  ir::Module M = workload::generateModule(Opts);
  std::vector<std::string> Errs;
  EXPECT_TRUE(analysis::verifyModule(M, Errs))
      << (Errs.empty() ? "" : Errs[0]) << "\n" << ir::printModule(M);
}

TEST_P(WorkloadProperty, FixedPipelineHasNoFalsePositives) {
  workload::GenOptions Opts;
  Opts.Seed = GetParam();
  ir::Module Src = workload::generateModule(Opts);

  driver::DriverOptions DOpts;
  DOpts.WriteFiles = false; // keep the property suite fast
  driver::ValidationDriver D(passes::BugConfig::fixed(), DOpts);
  driver::StatsMap Stats;
  ir::Module Opt = D.runPipelineValidated(Src, Stats);

  std::vector<std::string> Errs;
  EXPECT_TRUE(analysis::verifyModule(Opt, Errs))
      << (Errs.empty() ? "" : Errs[0]);
  for (const auto &KV : Stats) {
    EXPECT_EQ(KV.second.F, 0u)
        << KV.first << " false positive: "
        << (KV.second.FailureSamples.empty()
                ? ""
                : KV.second.FailureSamples[0])
        << "\nmodule:\n"
        << ir::printModule(Src);
    EXPECT_EQ(KV.second.DiffMismatches, 0u) << KV.first;
  }

  // The optimized program must refine the source observationally.
  for (const ir::Function &F : Src.Funcs) {
    std::vector<int64_t> Args{3, -1, 7};
    for (uint64_t OSeed = 1; OSeed <= 3; ++OSeed) {
      interp::InterpOptions IOpts;
      IOpts.OracleSeed = OSeed;
      auto RS = interp::run(Src, F.Name, Args, IOpts);
      auto RT = interp::run(Opt, F.Name, Args, IOpts);
      EXPECT_TRUE(interp::refines(RS, RT))
          << "@" << F.Name << " seed " << OSeed << "\nsrc module:\n"
          << ir::printModule(Src) << "\nopt module:\n"
          << ir::printModule(Opt);
    }
  }
}

TEST_P(WorkloadProperty, BuggyConfigFailsOnlyInTheBuggyPasses) {
  // With the historical bugs injected, validation failures may appear
  // only in mem2reg and gvn; licm and instcombine stay clean (as in
  // Fig. 6), and the plain and proof-generating compilers still agree.
  workload::GenOptions Opts;
  Opts.Seed = GetParam();
  ir::Module Src = workload::generateModule(Opts);
  driver::DriverOptions DOpts;
  DOpts.WriteFiles = false;
  driver::ValidationDriver D(passes::BugConfig::llvm371(), DOpts);
  driver::StatsMap Stats;
  D.runPipelineValidated(Src, Stats);
  EXPECT_EQ(Stats["licm"].F, 0u)
      << (Stats["licm"].FailureSamples.empty()
              ? ""
              : Stats["licm"].FailureSamples[0]);
  EXPECT_EQ(Stats["instcombine"].F, 0u)
      << (Stats["instcombine"].FailureSamples.empty()
              ? ""
              : Stats["instcombine"].FailureSamples[0]);
  for (const auto &KV : Stats)
    EXPECT_EQ(KV.second.DiffMismatches, 0u) << KV.first;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadProperty,
                         ::testing::Range<uint64_t>(1, 81));

// Golden seed-stability table: FNV-1a-64 of the printed module for a
// spread of seeds (including two recorded campaign reproducer seeds).
// The generator's seed->program mapping is load-bearing far beyond this
// suite: campaign findings are published as (campaign seed, unit index)
// pairs, the validation cache keys fingerprints of generated text, and
// crellvm-served answers seed-named requests — an innocent-looking
// generator tweak silently invalidates every recorded reproducer and
// cache entry. If a deliberate generator change trips this test, re-pin
// the table AND note in CHANGES.md that old reproducer seeds are void.
TEST(Workload, GoldenSeedFingerprintsArePinned) {
  auto Fnv1a64 = [](const std::string &S) {
    uint64_t H = 1469598103934665603ull;
    for (unsigned char C : S) {
      H ^= C;
      H *= 1099511628211ull;
    }
    return H;
  };
  const struct {
    uint64_t Seed;
    uint64_t Fingerprint;
  } Golden[] = {
      {1ull, 0xe0035bc36453d302ull},
      {2ull, 0xbe6c5acfc5eba775ull},
      {3ull, 0xc6d66b7879278224ull},
      {7ull, 0x48ed68828d2651fcull},
      {17ull, 0xc13253b70f95e678ull},
      {42ull, 0xc9f671b6cf1abed7ull},
      {1000ull, 0x33e0c07d982f6aedull},
      {99991ull, 0xbea22ccea4bdaa7dull},
      // unitSeed(campaign 1, unit 0): the pr24179/pr28562/pr33673
      // minimal reproducer module of the seed-1 bug-hunt campaign.
      {379230517066847373ull, 0x81531d8389460722ull},
      // unitSeed(campaign 1, unit 45): the pr29057 minimal reproducer.
      {5299775384170261709ull, 0xf6fb6a19eaa681ddull},
  };
  for (const auto &Row : Golden) {
    workload::GenOptions Opts;
    Opts.Seed = Row.Seed;
    EXPECT_EQ(Fnv1a64(ir::printModule(workload::generateModule(Opts))),
              Row.Fingerprint)
        << "seed " << Row.Seed
        << ": generated program changed — recorded reproducer seeds and "
           "cache fingerprints are no longer comparable";
  }
}

TEST(Corpus, RowsAreGeneratedDeterministically) {
  auto Rows = workload::paperCorpus();
  ASSERT_EQ(Rows.size(), 18u);
  const workload::Project &P = Rows[0];
  ir::Module A = workload::generateProjectModule(P, 0);
  ir::Module B = workload::generateProjectModule(P, 0);
  EXPECT_EQ(ir::printModule(A), ir::printModule(B));
  std::vector<std::string> Errs;
  EXPECT_TRUE(analysis::verifyModule(A, Errs))
      << (Errs.empty() ? "" : Errs[0]);
}

} // namespace
