//===- tests/AnalysisTest.cpp - CFG / dominators / loops / verifier ----------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/PointsBetween.h"
#include "analysis/Verifier.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace crellvm;
using namespace crellvm::analysis;

namespace {

ir::Module parse(const std::string &Text) {
  std::string Err;
  auto M = ir::parseModule(Text, &Err);
  EXPECT_TRUE(M) << Err;
  return *M;
}

const char *DiamondText = R"(
define void @d(i1 %c) {
entry:
  br i1 %c, label %left, label %right
left:
  br label %join
right:
  br label %join
join:
  ret void
}
)";

const char *LoopText = R"(
declare i1 @cond()
define void @l() {
entry:
  br label %header
header:
  %c = call i1 @cond()
  br i1 %c, label %body, label %done
body:
  br label %latch
latch:
  br label %header
done:
  ret void
}
)";

TEST(Cfg, DiamondEdges) {
  ir::Module M = parse(DiamondText);
  CFG G(M.Funcs[0]);
  ASSERT_EQ(G.numBlocks(), 4u);
  EXPECT_EQ(G.succs(G.index("entry")).size(), 2u);
  EXPECT_EQ(G.preds(G.index("join")).size(), 2u);
  EXPECT_EQ(G.preds(G.index("entry")).size(), 0u);
  for (size_t I = 0; I != G.numBlocks(); ++I)
    EXPECT_TRUE(G.isReachable(I));
  // RPO starts at the entry.
  ASSERT_FALSE(G.rpo().empty());
  EXPECT_EQ(G.rpo().front(), G.index("entry"));
}

TEST(Cfg, DeduplicatesParallelEdges) {
  ir::Module M = parse(R"(
define void @p(i1 %c) {
entry:
  br i1 %c, label %next, label %next
next:
  ret void
}
)");
  CFG G(M.Funcs[0]);
  EXPECT_EQ(G.succs(G.index("entry")).size(), 1u);
  EXPECT_EQ(G.preds(G.index("next")).size(), 1u);
}

TEST(Cfg, UnreachableBlockDetected) {
  ir::Module M = parse(R"(
define void @u() {
entry:
  ret void
dead:
  ret void
}
)");
  CFG G(M.Funcs[0]);
  EXPECT_TRUE(G.isReachable(G.index("entry")));
  EXPECT_FALSE(G.isReachable(G.index("dead")));
}

TEST(DomTreeTest, Diamond) {
  ir::Module M = parse(DiamondText);
  CFG G(M.Funcs[0]);
  DomTree DT(G);
  size_t E = G.index("entry"), L = G.index("left"), R = G.index("right"),
         J = G.index("join");
  EXPECT_TRUE(DT.dominates(E, J));
  EXPECT_TRUE(DT.dominates(E, L));
  EXPECT_FALSE(DT.dominates(L, J));
  EXPECT_FALSE(DT.dominates(L, R));
  EXPECT_TRUE(DT.dominates(J, J)); // reflexive
  EXPECT_EQ(DT.idom(J), E);
  EXPECT_EQ(DT.idom(L), E);
}

TEST(DomTreeTest, Loop) {
  ir::Module M = parse(LoopText);
  CFG G(M.Funcs[0]);
  DomTree DT(G);
  size_t H = G.index("header"), B = G.index("body"), L = G.index("latch");
  EXPECT_TRUE(DT.dominates(H, B));
  EXPECT_TRUE(DT.dominates(H, L));
  EXPECT_TRUE(DT.dominates(B, L));
  EXPECT_FALSE(DT.dominates(L, H));
  EXPECT_TRUE(DT.dominates(H, G.index("done")));
}

TEST(DominanceFrontierTest, DiamondFrontierIsJoin) {
  ir::Module M = parse(DiamondText);
  CFG G(M.Funcs[0]);
  DomTree DT(G);
  DominanceFrontier DF(G, DT);
  size_t L = G.index("left"), J = G.index("join");
  ASSERT_EQ(DF.frontier(L).size(), 1u);
  EXPECT_EQ(DF.frontier(L)[0], J);
  EXPECT_TRUE(DF.frontier(G.index("entry")).empty());
}

TEST(LoopInfoTest, FindsLoopAndPreheader) {
  ir::Module M = parse(LoopText);
  CFG G(M.Funcs[0]);
  DomTree DT(G);
  LoopInfo LI(M.Funcs[0], G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  EXPECT_EQ(L.Header, G.index("header"));
  EXPECT_TRUE(L.contains(G.index("body")));
  EXPECT_TRUE(L.contains(G.index("latch")));
  EXPECT_FALSE(L.contains(G.index("done")));
  ASSERT_TRUE(L.hasPreheader());
  EXPECT_EQ(L.Preheader, G.index("entry"));
}

TEST(LoopInfoTest, NoPreheaderWhenEntryEdgeConditional) {
  ir::Module M = parse(R"(
declare i1 @cond()
define void @l(i1 %c) {
entry:
  br i1 %c, label %header, label %out
header:
  %k = call i1 @cond()
  br i1 %k, label %header, label %out
out:
  ret void
}
)");
  CFG G(M.Funcs[0]);
  DomTree DT(G);
  LoopInfo LI(M.Funcs[0], G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  // The outside predecessor ends in a conditional branch: no preheader.
  EXPECT_FALSE(LI.loops()[0].hasPreheader());
}

TEST(BlocksBetween, StraightLine) {
  ir::Module M = parse(R"(
define void @s() {
entry:
  br label %mid
mid:
  br label %out
out:
  ret void
}
)");
  CFG G(M.Funcs[0]);
  DomTree DT(G);
  auto Set = blocksBetween(G, DT, G.index("entry"), G.index("out"));
  EXPECT_EQ(Set.size(), 3u);
}

TEST(BlocksBetween, ExcludesOffPathBlocks) {
  // From Appendix E: blocks that cannot reach the use without revisiting
  // the def, or that the def does not dominate, are excluded.
  ir::Module M = parse(R"(
define void @e(i1 %c) {
entry:
  br i1 %c, label %l1, label %other
other:
  br label %exit
l1:
  br i1 %c, label %use, label %dead_end
dead_end:
  br label %exit
use:
  br label %exit
exit:
  ret void
}
)");
  CFG G(M.Funcs[0]);
  DomTree DT(G);
  auto Set = blocksBetween(G, DT, G.index("l1"), G.index("use"));
  EXPECT_TRUE(Set.count(G.index("l1")));
  EXPECT_TRUE(Set.count(G.index("use")));
  EXPECT_FALSE(Set.count(G.index("other")));    // not dominated
  EXPECT_FALSE(Set.count(G.index("dead_end"))); // cannot reach use
  EXPECT_FALSE(Set.count(G.index("exit")));     // cannot reach use
}

TEST(BlocksBetween, LoopPathsThroughTheDefAreExcluded) {
  ir::Module M = parse(LoopText);
  CFG G(M.Funcs[0]);
  DomTree DT(G);
  // From the header to the body: the latch is NOT on a qualifying path,
  // because going around the loop re-executes the definition in the
  // header (Appendix E: paths must not revisit l1).
  auto Set = blocksBetween(G, DT, G.index("header"), G.index("body"));
  EXPECT_FALSE(Set.count(G.index("latch")));
  EXPECT_TRUE(Set.count(G.index("body")));
  EXPECT_FALSE(Set.count(G.index("done")));
}

TEST(BlocksBetween, DefOutsideLoopCoversTheWholeLoop) {
  ir::Module M = parse(LoopText);
  CFG G(M.Funcs[0]);
  DomTree DT(G);
  // From the entry (outside the loop) to the body: loop-around paths do
  // not revisit the entry, so the latch and header are fully covered.
  auto Set = blocksBetween(G, DT, G.index("entry"), G.index("body"));
  EXPECT_TRUE(Set.count(G.index("latch")));
  EXPECT_TRUE(Set.count(G.index("header")));
  EXPECT_TRUE(Set.count(G.index("body")));
  EXPECT_FALSE(Set.count(G.index("done")));
}

// --- Verifier ---------------------------------------------------------------

TEST(VerifierTest, AcceptsWellFormed) {
  ir::Module M = parse(LoopText);
  std::vector<std::string> Errs;
  EXPECT_TRUE(verifyModule(M, Errs)) << Errs[0];
}

struct BadCase {
  const char *Name;
  const char *Text;
  const char *ExpectSubstring;
};

class VerifierRejects : public ::testing::TestWithParam<BadCase> {};

TEST_P(VerifierRejects, Case) {
  std::string Err;
  auto M = ir::parseModule(GetParam().Text, &Err);
  ASSERT_TRUE(M) << Err;
  std::vector<std::string> Errs;
  EXPECT_FALSE(verifyModule(*M, Errs));
  ASSERT_FALSE(Errs.empty());
  bool Found = false;
  for (const std::string &E : Errs)
    if (E.find(GetParam().ExpectSubstring) != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found) << "expected '" << GetParam().ExpectSubstring
                     << "', got: " << Errs[0];
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VerifierRejects,
    ::testing::Values(
        BadCase{"NoTerminator",
                "define void @f() {\nentry:\n  %x = add i32 1, 2\n}",
                "lacks a terminator"},
        BadCase{"UseBeforeDef",
                "define void @f() {\nentry:\n  %y = add i32 %x, 1\n  %x = "
                "add i32 1, 2\n  ret void\n}",
                "not dominated"},
        BadCase{"UndefinedUse",
                "define void @f() {\nentry:\n  %y = add i32 %nope, 1\n  "
                "ret void\n}",
                "undefined register"},
        BadCase{"DoubleDef",
                "define void @f() {\nentry:\n  %x = add i32 1, 2\n  %x = "
                "add i32 3, 4\n  ret void\n}",
                "defined more than once"},
        BadCase{"BranchToEntry",
                "define void @f() {\nentry:\n  br label %entry\n}",
                "branches to the entry"},
        BadCase{"UnknownTarget",
                "define void @f() {\nentry:\n  br label %nope\n}",
                "unknown block"},
        BadCase{"PhiMissingPred",
                "define void @f(i1 %c) {\nentry:\n  br i1 %c, label %a, "
                "label %b\na:\n  br label %j\nb:\n  br label %j\nj:\n  %p "
                "= phi i32 [ 1, %a ]\n  ret void\n}",
                "misses predecessor"},
        BadCase{"PhiBogusPred",
                "define void @f() {\nentry:\n  br label %j\nj:\n  %p = "
                "phi i32 [ 1, %entry ], [ 2, %nowhere ]\n  ret void\n}",
                "non-predecessor"},
        BadCase{"IllTypedBinary",
                "define void @f(i32 %a, i64 %b) {\nentry:\n  %x = add i32 "
                "%a, %b\n  ret void\n}",
                "defined at type"},
        BadCase{"CrossFunctionUse",
                "define void @f(i32 %a) {\nentry:\n  ret void\n}\ndefine "
                "void @g() {\nentry:\n  %x = add i32 %a, 1\n  ret "
                "void\n}",
                "undefined register"}),
    [](const ::testing::TestParamInfo<BadCase> &I) {
      return I.param.Name;
    });

} // namespace
