//===- examples/catch_miscompilation.cpp - Finding a compiler bug ------------===//
//
// The paper's headline workflow (§1.2): run the buggy compiler on a
// program, see differential testing pass, and watch validation reject the
// translation with a logical reason — here on the PR28562 gep-inbounds
// value-numbering bug.
//
// Build and run:  ./build/examples/catch_miscompilation
//
//===----------------------------------------------------------------------===//

#include "checker/Validator.h"
#include "interp/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "passes/Pipeline.h"

#include <iostream>

using namespace crellvm;

int main() {
  const char *Source = R"(
declare void @bar(ptr, ptr)

define void @g(ptr %p) {
entry:
  %q1 = gep inbounds ptr %p, i64 2
  %q2 = gep ptr %p, i64 2
  call void @bar(ptr %q1, ptr %q2)
  ret void
}
)";
  std::string Err;
  auto Src = ir::parseModule(Source, &Err);
  if (!Src) {
    std::cerr << "parse error: " << Err << "\n";
    return 1;
  }

  // The LLVM 3.7.1-era gvn equates `gep inbounds p 2` with `gep p 2` and
  // replaces q2 by q1, introducing poison (paper §1.2).
  auto Pass = passes::makePass("gvn", passes::BugConfig::llvm371());
  passes::PassResult PR = Pass->run(*Src, /*GenProof=*/true);
  std::cout << "=== buggy target ===\n" << ir::printModule(PR.Tgt) << "\n";

  // Differential testing: run both programs on many environments. The
  // index is in bounds at run time, so every trace matches.
  unsigned Mismatches = 0;
  for (uint64_t Seed = 1; Seed <= 100; ++Seed) {
    interp::InterpOptions Opts;
    Opts.OracleSeed = Seed;
    auto RS = interp::run(*Src, "g", {}, Opts);
    auto RT = interp::run(PR.Tgt, "g", {}, Opts);
    if (!interp::refines(RS, RT))
      ++Mismatches;
  }
  std::cout << "differential testing over 100 environments: " << Mismatches
            << " mismatches (the bug is invisible to testing)\n";

  // Validation checks the *reasoning* and rejects it immediately.
  auto VR = checker::validate(*Src, PR.Tgt, PR.Proof);
  std::cout << "validation: "
            << (VR.countFailed() ? "REJECTED" : "accepted") << "\n";
  if (VR.countFailed())
    std::cout << "logical reason: " << VR.firstFailure() << "\n";

  // The fixed compiler distinguishes the two geps and validates.
  auto Fixed = passes::makePass("gvn", passes::BugConfig::fixed());
  passes::PassResult FR = Fixed->run(*Src, /*GenProof=*/true);
  auto FV = checker::validate(*Src, FR.Tgt, FR.Proof);
  std::cout << "fixed compiler: " << FR.Rewrites << " rewrites, "
            << (FV.countFailed() == 0 ? "validated" : "rejected") << "\n";

  return (Mismatches == 0 && VR.countFailed() == 1 && FV.countFailed() == 0)
             ? 0
             : 1;
}
