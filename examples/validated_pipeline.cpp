//===- examples/validated_pipeline.cpp - Driver API tour ---------------------===//
//
// Shows the validation driver on generated workloads: the full -O2
// pipeline over random modules, with proofs exchanged through JSON files
// (the paper's Fig. 1 file-based split), statistics in the paper's
// #V/#F/#NS + Orig/PCal/I-O/PCheck format, and a final differential
// check that the optimized module refines the source.
//
// Usage:  ./build/examples/validated_pipeline [num-modules] [seed]
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "interp/Interp.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workload/RandomProgram.h"

#include <iostream>

using namespace crellvm;

int main(int Argc, char **Argv) {
  unsigned NumModules = Argc > 1 ? std::strtoul(Argv[1], nullptr, 10) : 25;
  uint64_t Seed = Argc > 2 ? std::strtoull(Argv[2], nullptr, 10) : 42;

  driver::ValidationDriver Driver(passes::BugConfig::fixed(), {});
  driver::StatsMap Stats;
  unsigned RefinementChecks = 0, RefinementFailures = 0;

  for (unsigned I = 0; I != NumModules; ++I) {
    workload::GenOptions Opts;
    Opts.Seed = Seed + I;
    ir::Module Src = workload::generateModule(Opts);
    ir::Module Opt = Driver.runPipelineValidated(Src, Stats);

    // Differential sanity: the optimized module refines the source.
    for (const ir::Function &F : Src.Funcs) {
      interp::InterpOptions IOpts;
      IOpts.OracleSeed = Seed + I;
      auto RS = interp::run(Src, F.Name, {1, 2, 3}, IOpts);
      auto RT = interp::run(Opt, F.Name, {1, 2, 3}, IOpts);
      ++RefinementChecks;
      if (!interp::refines(RS, RT))
        ++RefinementFailures;
    }
  }

  Table T({"pass", "#V", "#F", "#NS", "Orig", "PCal", "I/O", "PCheck"});
  for (const auto &KV : Stats)
    T.addRow({KV.first, formatCountK(KV.second.V),
              formatCountK(KV.second.F), formatCountK(KV.second.NS),
              formatSeconds(KV.second.Orig), formatSeconds(KV.second.PCal),
              formatSeconds(KV.second.IO),
              formatSeconds(KV.second.PCheck)});
  T.print(std::cout);
  std::cout << "\nrefinement: " << (RefinementChecks - RefinementFailures)
            << "/" << RefinementChecks << " function runs refined\n";

  bool Clean = RefinementFailures == 0;
  for (const auto &KV : Stats)
    Clean = Clean && KV.second.F == 0 && KV.second.DiffMismatches == 0;
  std::cout << (Clean ? "all translations validated"
                      : "unexpected failures!")
            << "\n";
  return Clean ? 0 : 1;
}
