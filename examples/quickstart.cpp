//===- examples/quickstart.cpp - Five-minute tour ----------------------------===//
//
// The smallest end-to-end use of the framework (paper Fig. 1):
//
//   1. parse a source module,
//   2. run a proof-generating optimization pass,
//   3. validate the translation proof with the checker,
//   4. compare against the plain compiler's output (llvm-diff).
//
// Build and run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "checker/Validator.h"
#include "difftool/Diff.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "passes/Pipeline.h"

#include <iostream>

using namespace crellvm;

int main() {
  // 1. The source program: the paper's §2 running example (assoc-add).
  const char *Source = R"(
declare void @foo(i32)

define void @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  %y = add i32 %x, 2
  call void @foo(i32 %y)
  ret void
}
)";
  std::string Err;
  auto Src = ir::parseModule(Source, &Err);
  if (!Src) {
    std::cerr << "parse error: " << Err << "\n";
    return 1;
  }
  std::cout << "=== source ===\n" << ir::printModule(*Src);

  // 2. Run instcombine twice: once as the original compiler, once with
  //    proof generation (they must agree).
  auto Pass = passes::makePass("instcombine", passes::BugConfig::fixed());
  passes::PassResult Plain = Pass->run(*Src, /*GenProof=*/false);
  passes::PassResult WithProof = Pass->run(*Src, /*GenProof=*/true);
  std::cout << "\n=== target (" << WithProof.Rewrites
            << " rewrites) ===\n"
            << ir::printModule(WithProof.Tgt);

  // 3. Check the proof.
  checker::ModuleResult VR =
      checker::validate(*Src, WithProof.Tgt, WithProof.Proof);
  std::cout << "\nvalidation: " << VR.countValidated() << " validated, "
            << VR.countFailed() << " failed, " << VR.countNotSupported()
            << " not supported\n";
  if (VR.countFailed()) {
    std::cerr << "unexpected failure: " << VR.firstFailure() << "\n";
    return 1;
  }

  // 4. llvm-diff: the proof-generating compiler produced the same code.
  auto Diff = difftool::diffModules(Plain.Tgt, WithProof.Tgt);
  std::cout << "llvm-diff: "
            << (Diff ? "alpha-equivalent" : Diff.FirstDifference) << "\n";
  return Diff ? 0 : 1;
}
