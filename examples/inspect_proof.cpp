//===- examples/inspect_proof.cpp - Looking inside a translation proof --------===//
//
// What does an ERHL proof actually contain? This walkthrough runs a
// proof-generating pass on the paper's §4 fold-phi example — the one
// translation whose proof needs the old-register machinery across a loop
// back edge — then:
//
//   1. prints the aligned line table (source command | target command),
//   2. prints the inference rules applied per line and per phi edge,
//   3. prints the assertion at the interesting program point (the ghost
//      register ẑ, the maydiff set, the enabled automation),
//   4. serializes the proof as JSON text and as the compact binary format
//      and round-trips it through the binary decoder before validating.
//
// Build and run:  ./build/examples/inspect_proof
//
//===----------------------------------------------------------------------===//

#include "checker/Validator.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "passes/InstCombine.h"
#include "proofgen/ProofBinary.h"
#include "proofgen/ProofJson.h"

#include <iostream>

using namespace crellvm;

int main() {
  const char *Source = R"(
declare i1 @cond()
declare void @sink(i32)

define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  br label %header
header:
  %z = phi i32 [ %x, %entry ], [ %y, %latch ]
  %c = call i1 @cond()
  br i1 %c, label %latch, label %done
latch:
  %y = add i32 %z, 1
  br label %header
done:
  call void @sink(i32 %z)
  ret i32 %z
}
)";
  std::string Err;
  auto Src = ir::parseModule(Source, &Err);
  if (!Src) {
    std::cerr << "parse error: " << Err << "\n";
    return 1;
  }

  // Run the pass in proof mode. fold-phi-bin-const replaces z's phi with
  // t := phi(a, z) and sinks the addition below it.
  passes::InstCombine IC(passes::BugConfig::fixed());
  passes::PassResult PR = IC.run(*Src, /*GenProof=*/true);
  std::cout << "=== target after instcombine ===\n"
            << ir::printModule(PR.Tgt) << "\n";

  const proofgen::FunctionProof &FP = PR.Proof.Functions.at("f");
  std::cout << "=== the proof, block by block ===\n";
  for (const auto &BKV : FP.Blocks) {
    const proofgen::BlockProof &BP = BKV.second;
    std::cout << BKV.first << ":\n";
    // Phi-edge rules come first: they bind the ghost per predecessor.
    for (const auto &PhiKV : BP.PhiRules)
      for (const erhl::Infrule &R : PhiKV.second)
        std::cout << "    [edge from %" << PhiKV.first << "]  " << R.str()
                  << "\n";
    // The aligned lines. A missing side is the paper's lnop.
    for (const proofgen::LineEntry &L : BP.Lines) {
      std::cout << "    " << (L.SrcCmd ? L.SrcCmd->str() : "lnop")
                << "  |  " << (L.TgtCmd ? L.TgtCmd->str() : "lnop")
                << "\n";
      for (const erhl::Infrule &R : L.Rules)
        std::cout << "        rule: " << R.str() << "\n";
    }
  }
  std::cout << "automation enabled:";
  for (const std::string &A : FP.AutoFuncs)
    std::cout << " " << A;
  std::cout << "\n\n";

  // The assertion at the entry of the loop header: z is in maydiff (the
  // target has not computed it yet) and the ghost links both sides.
  const proofgen::BlockProof &Header = FP.Blocks.at("header");
  std::cout << "=== assertion at the header entry ===\n";
  for (const erhl::Pred &P : Header.AtEntry.Src)
    std::cout << "  src:  " << P.str() << "\n";
  for (const erhl::Pred &P : Header.AtEntry.Tgt)
    std::cout << "  tgt:  " << P.str() << "\n";
  std::cout << "  maydiff: {";
  bool First = true;
  for (const erhl::RegT &R : Header.AtEntry.Maydiff) {
    std::cout << (First ? "" : ", ") << R.str();
    First = false;
  }
  std::cout << "}\n\n";

  // Both exchange formats carry the same proof.
  std::string Text = proofgen::proofToText(PR.Proof);
  std::string Bin = proofgen::proofToBinary(PR.Proof);
  std::cout << "=== serialization ===\n";
  std::cout << "json text: " << Text.size() << " bytes\n";
  std::cout << "binary:    " << Bin.size() << " bytes ("
            << (Text.size() * 10 / Bin.size()) / 10.0
            << "x smaller)\n\n";

  auto Back = proofgen::proofFromBinary(Bin, &Err);
  if (!Back) {
    std::cerr << "binary round-trip failed: " << Err << "\n";
    return 1;
  }
  auto VR = checker::validate(*Src, PR.Tgt, *Back);
  std::cout << "checker verdict on the round-tripped proof: "
            << (VR.countFailed() == 0 ? "validated" : VR.firstFailure())
            << "\n";
  return VR.countFailed() == 0 ? 0 : 1;
}
