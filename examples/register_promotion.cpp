//===- examples/register_promotion.cpp - Paper §3 walkthrough ----------------===//
//
// Reproduces the paper's Fig. 3 register-promotion example and prints the
// generated ERHL proof line by line: the lnop alignment, the assertions
// (Uniq, the ghost-register bindings *p >= p-hat and p-hat >= v, the
// maydiff set), and the intro_ghost inference rules — then validates it.
//
// Build and run:  ./build/examples/register_promotion
//
//===----------------------------------------------------------------------===//

#include "checker/Validator.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "passes/Pipeline.h"

#include <iostream>

using namespace crellvm;

int main() {
  // Fig. 3: c, x, q are parameters; all accesses via p are promotable.
  const char *Source = R"(
declare void @foo(i32)

define void @fig3(i1 %c, i32 %x, ptr %q) {
entry:
  %p = alloca i32, 1
  store i32 42, ptr %p
  br i1 %c, label %left, label %right
left:
  %a = load i32, ptr %p
  call void @foo(i32 %a)
  br label %exit
right:
  store i32 %x, ptr %p
  store i32 %x, ptr %q
  br label %exit
exit:
  %b = load i32, ptr %p
  store i32 %b, ptr %q
  ret void
}
)";
  std::string Err;
  auto Src = ir::parseModule(Source, &Err);
  if (!Src) {
    std::cerr << "parse error: " << Err << "\n";
    return 1;
  }

  auto Pass = passes::makePass("mem2reg", passes::BugConfig::fixed());
  passes::PassResult PR = Pass->run(*Src, /*GenProof=*/true);

  std::cout << "=== target (promoted) ===\n" << ir::printModule(PR.Tgt)
            << "\n=== the ERHL proof, line by line (paper Fig. 3) ===\n";
  const proofgen::FunctionProof &FP = PR.Proof.Functions.at("fig3");
  for (const ir::BasicBlock &B : Src->Funcs[0].Blocks) {
    const proofgen::BlockProof &BP = FP.Blocks.at(B.Name);
    std::cout << B.Name << ":\n  at entry   " << BP.AtEntry.str() << "\n";
    for (const proofgen::LineEntry &L : BP.Lines) {
      std::cout << "  src: "
                << (L.SrcCmd ? L.SrcCmd->str() : std::string("lnop"))
                << "\n  tgt: "
                << (L.TgtCmd ? L.TgtCmd->str() : std::string("lnop"))
                << "\n";
      for (const erhl::Infrule &R : L.Rules)
        std::cout << "    rule: " << R.str() << "\n";
      std::cout << "    after: " << L.After.str() << "\n";
    }
  }
  std::cout << "automation: ";
  for (const std::string &A : FP.AutoFuncs)
    std::cout << A << " ";
  std::cout << "\n";

  auto VR = checker::validate(*Src, PR.Tgt, PR.Proof);
  std::cout << "\nvalidation verdict: "
            << (VR.countFailed() == 0 ? "VALIDATED" : VR.firstFailure())
            << "\n";
  return VR.countFailed() == 0 ? 0 : 1;
}
